//! Word Count at paper scale: RLAS vs the heuristic schedulers on the
//! virtual Server A, plus a real threaded run on this host.
//!
//! ```sh
//! cargo run --release --example word_count
//! ```

use briskstream::apps::word_count;
use briskstream::core::BriskStream;
use briskstream::dag::ExecutionGraph;
use briskstream::model::Evaluator;
use briskstream::numa::Machine;
use briskstream::rlas::{place_with_strategy, PlacementStrategy, ScalingOptions};
use briskstream::runtime::EngineConfig;
use briskstream::sim::SimConfig;
use std::time::Duration;

fn main() {
    let machine = Machine::server_a();
    let topology = word_count::topology();
    println!("== Word Count on {} ==", machine.name());

    // RLAS plan.
    let mut system = BriskStream::new(machine.clone());
    let report = system.submit(&topology).expect("feasible plan");
    println!(
        "RLAS: {:.1}k events/s predicted, {} replicas",
        report.predicted_throughput / 1e3,
        report.plan.total_replicas()
    );
    let sim = system
        .simulate(&topology, &report.plan, SimConfig::default())
        .expect("simulates");
    println!(
        "RLAS measured (simulator): {:.1}k events/s",
        sim.k_events_per_sec()
    );

    // Same replication, heuristic placements (the Figure 13 comparison).
    let graph = ExecutionGraph::new(
        &topology,
        &report.plan.replication,
        report.plan.compress_ratio,
    );
    let evaluator = Evaluator::saturated(&machine);
    for strategy in [
        PlacementStrategy::Os { seed: 1 },
        PlacementStrategy::FirstFit,
        PlacementStrategy::RoundRobin,
    ] {
        let placement = place_with_strategy(&graph, &machine, strategy);
        let eval = evaluator.evaluate(&graph, &placement);
        println!(
            "{strategy}: {:.1}k events/s predicted ({:.0}% of RLAS)",
            eval.throughput / 1e3,
            eval.throughput / report.predicted_throughput * 100.0
        );
    }

    // Threaded run of the real operators on this host (small plan).
    let mut host = BriskStream::with_options(
        Machine::server_a().restrict_sockets(1),
        ScalingOptions {
            compress_ratio: 1,
            max_total_replicas: Some(8),
            ..Default::default()
        },
    );
    let host_plan = host.submit(&topology).expect("feasible host plan");
    let run = host
        .execute(
            word_count::app(),
            &host_plan.plan,
            EngineConfig::default(),
            Duration::from_millis(500),
        )
        .expect("engine runs");
    println!(
        "threaded on this host: {:.1}k words counted/s ({} sink events)",
        run.k_events_per_sec(),
        run.sink_events
    );
}
