//! Quickstart: define a topology, let RLAS plan it, then run it both ways —
//! simulated on the paper's Server A and threaded for real on this host.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use briskstream::core::BriskStream;
use briskstream::dag::{CostProfile, TopologyBuilder};
use briskstream::numa::Machine;
use briskstream::runtime::{
    AppRuntime, Collector, DynBolt, DynSpout, EngineConfig, QueueKind, SpoutStatus, TupleView,
};
use briskstream::sim::SimConfig;
use std::time::Duration;

struct NumberSpout {
    next: u64,
}

impl DynSpout for NumberSpout {
    fn next(&mut self, collector: &mut Collector) -> SpoutStatus {
        let now = collector.now_ns();
        collector.send_default(self.next, now, self.next);
        self.next += 1;
        SpoutStatus::Emitted(1)
    }
}

struct SquareBolt;

impl DynBolt for SquareBolt {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let v = *tuple.value::<u64>().expect("u64 payload");
        collector.send_default(v.wrapping_mul(v), tuple.event_ns, tuple.key);
    }
}

struct NullSink;

impl DynBolt for NullSink {
    fn execute(&mut self, _tuple: &TupleView<'_>, _collector: &mut Collector) {}
}

fn main() {
    // 1. Describe the application: spout -> square -> sink, with profiled
    //    per-tuple costs (cycles, memory traffic, tuple bytes).
    let mut builder = TopologyBuilder::new("quickstart");
    let spout = builder.add_spout("numbers", CostProfile::new(200.0, 30.0, 64.0, 64.0));
    let square = builder.add_bolt("square", CostProfile::new(600.0, 40.0, 64.0, 64.0));
    let sink = builder.add_sink("sink", CostProfile::new(60.0, 10.0, 32.0, 16.0));
    builder.connect_shuffle(spout, square);
    builder.connect_shuffle(square, sink);
    let topology = builder.build().expect("valid DAG");

    // 2. Optimize an execution plan for the paper's 8-socket Server A.
    let machine = Machine::server_a();
    println!("{machine}");
    let mut system = BriskStream::new(machine);
    let report = system.submit(&topology).expect("feasible plan");
    let graph = briskstream::dag::ExecutionGraph::new(
        &topology,
        &report.plan.replication,
        report.plan.compress_ratio,
    );
    println!(
        "RLAS plan after {} scaling iterations — predicted {:.1}k events/s",
        report.iterations,
        report.predicted_throughput / 1e3
    );
    print!("{}", report.plan.describe(&graph));

    // 3. "Measure" the plan on the virtual machine.
    let sim = system
        .simulate(&topology, &report.plan, SimConfig::default())
        .expect("simulates");
    println!(
        "simulated: {:.1}k events/s (p99 latency {:.2} ms)",
        sim.k_events_per_sec(),
        sim.latency_ns.percentile(99.0) / 1e6
    );

    // 4. Run the real threaded engine on this host for half a second, with
    //    a small host-friendly plan.
    let host_machine = Machine::server_a().restrict_sockets(1);
    let mut host = BriskStream::with_options(
        host_machine,
        briskstream::rlas::ScalingOptions {
            compress_ratio: 1,
            max_total_replicas: Some(6),
            ..Default::default()
        },
    );
    let host_plan = host.submit(&topology).expect("feasible host plan");
    // Run the same plan under both queue fabrics: the lock-free SPSC ring
    // (default) and the mutex queue kept for comparison.
    for queue_kind in [QueueKind::Spsc, QueueKind::Mutex] {
        let app = AppRuntime::new(topology.clone())
            .spout(spout, |_| NumberSpout { next: 0 })
            .bolt(square, |_| SquareBolt)
            .sink(sink, |_| NullSink);
        let run = host
            .execute(
                app,
                &host_plan.plan,
                EngineConfig::builder().queue_kind(queue_kind).build(),
                Duration::from_millis(500),
            )
            .expect("engine runs");
        println!(
            "threaded on this host [{queue_kind} queues]: {:.1}k events/s over {:?} ({} tuples, p99 {:.2} ms)",
            run.k_events_per_sec(),
            run.elapsed,
            run.sink_events,
            run.latency_ns.percentile(99.0) / 1e6
        );
    }
}
