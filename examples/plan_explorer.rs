//! Plan explorer: look inside the RLAS search — branch-and-bound statistics,
//! the compression-ratio trade-off (Table 7), and the fixed-capability
//! ablations (Figure 12) on Spike Detection.
//!
//! ```sh
//! cargo run --release --example plan_explorer
//! ```

use briskstream::apps::spike_detection;
use briskstream::numa::Machine;
use briskstream::rlas::{
    optimize, optimize_with_policy, random_plans, RandomPlanOptions, ScalingOptions, TfPolicy,
};
use std::time::Instant;

fn main() {
    let machine = Machine::server_a();
    let topology = spike_detection::topology();
    println!("== Plan explorer: Spike Detection on {} ==", machine.name());

    // Compression-ratio sweep (Table 7's trade-off).
    println!("\ncompress ratio r -> throughput, optimizer runtime:");
    for r in [1usize, 3, 5, 10, 15] {
        let t0 = Instant::now();
        let plan = optimize(
            &machine,
            &topology,
            &ScalingOptions {
                compress_ratio: r,
                ..Default::default()
            },
        );
        match plan {
            Some(p) => println!(
                "  r={r:<3} {:>10.1}k ev/s   {} B&B nodes, {} iterations, {:.2}s",
                p.throughput / 1e3,
                p.explored_nodes,
                p.iterations,
                t0.elapsed().as_secs_f64()
            ),
            None => println!("  r={r:<3} no feasible plan"),
        }
    }

    // Fixed-capability ablations (Figure 12).
    println!("\nfetch-cost policy ablation (all re-scored with the true model):");
    let opts = ScalingOptions::default();
    let rlas = optimize(&machine, &topology, &opts).expect("plan");
    let fix_l =
        optimize_with_policy(&machine, &topology, TfPolicy::AlwaysRemote, &opts).expect("plan");
    let fix_u =
        optimize_with_policy(&machine, &topology, TfPolicy::NeverRemote, &opts).expect("plan");
    println!("  RLAS        {:>10.1}k ev/s", rlas.throughput / 1e3);
    println!(
        "  RLAS_fix(L) {:>10.1}k ev/s ({:+.0}% vs RLAS)",
        fix_l.throughput / 1e3,
        (fix_l.throughput / rlas.throughput - 1.0) * 100.0
    );
    println!(
        "  RLAS_fix(U) {:>10.1}k ev/s ({:+.0}% vs RLAS)",
        fix_u.throughput / 1e3,
        (fix_u.throughput / rlas.throughput - 1.0) * 100.0
    );

    // Monte-Carlo: how do 200 random plans compare (Figure 14)?
    let plans = random_plans(
        &machine,
        &topology,
        &RandomPlanOptions {
            count: 200,
            ..Default::default()
        },
    );
    let best = plans.iter().map(|(_, t)| *t).fold(0.0f64, f64::max);
    let beat = plans.iter().filter(|(_, t)| *t > rlas.throughput).count();
    println!(
        "\n200 random plans: best {:.1}k ev/s ({:.0}% of RLAS); {} beat RLAS",
        best / 1e3,
        best / rlas.throughput * 100.0,
        beat
    );
}
