//! Fraud detection with live profiling: time the real Rust operators on
//! this host (the paper's model-instantiation methodology), rebuild the
//! model inputs from the measurements, and compare plans.
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```

use briskstream::apps::fraud_detection;
use briskstream::core::profiler;
use briskstream::core::BriskStream;
use briskstream::numa::Machine;
use briskstream::runtime::EngineConfig;
use std::time::Duration;

fn main() {
    let app = fraud_detection::app();
    println!("== Fraud Detection ==");

    // 1. Profile the real operators in isolation (upstream operators
    //    pre-execute to create each operator's sample input).
    let mut profiles = profiler::live_profile(&app, 2000);
    println!("live profile of this host (median Te per tuple):");
    for p in &mut profiles {
        let median = p.median_ns();
        println!("  {:<12} {:>10.0} ns", p.name, median);
    }

    // 2. Instantiate a topology from the measurements, as if this host's
    //    cores were Server A's, and optimize.
    let machine = Machine::server_a();
    let calibrated = profiler::instantiate(&app.topology, &mut profiles, machine.clock_hz());
    let mut system = BriskStream::new(machine);
    let live_plan = system.submit(&calibrated).expect("feasible plan");
    println!(
        "plan from live profile: {:.1}k events/s predicted, replication {:?}",
        live_plan.predicted_throughput / 1e3,
        live_plan.plan.replication
    );

    // 3. For reference, the paper-calibrated plan.
    let paper_plan = system
        .submit(&fraud_detection::topology())
        .expect("feasible plan");
    println!(
        "plan from paper calibration: {:.1}k events/s predicted, replication {:?}",
        paper_plan.predicted_throughput / 1e3,
        paper_plan.plan.replication
    );

    // 4. Execute the real predictor pipeline briefly on this host.
    let mut host = BriskStream::with_options(
        Machine::server_a().restrict_sockets(1),
        briskstream::rlas::ScalingOptions {
            compress_ratio: 1,
            max_total_replicas: Some(8),
            ..Default::default()
        },
    );
    let host_plan = host.submit(&app.topology).expect("feasible host plan");
    let run = host
        .execute(
            fraud_detection::app(),
            &host_plan.plan,
            EngineConfig::default(),
            Duration::from_millis(500),
        )
        .expect("engine runs");
    println!(
        "threaded on this host: {:.1}k transactions scored/s (p99 latency {:.2} ms)",
        run.k_events_per_sec(),
        run.latency_ns.percentile(99.0) / 1e6
    );
}
