//! Linear Road on both paper machines: the same application optimized for a
//! glue-less and a glue-assisted NUMA server produces very different plans
//! (Section 6.4's communication-pattern observation).
//!
//! ```sh
//! cargo run --release --example linear_road
//! ```

use briskstream::apps::linear_road;
use briskstream::core::BriskStream;
use briskstream::dag::ExecutionGraph;
use briskstream::model::{comm_cost_matrix, Evaluator};
use briskstream::numa::Machine;
use briskstream::sim::SimConfig;

fn main() {
    let topology = linear_road::topology();
    println!(
        "== Linear Road ({} operators, {} streams) ==",
        topology.operator_count(),
        topology.edges().len()
    );

    for machine in [Machine::server_a(), Machine::server_b()] {
        println!("\n-- {} --", machine.name());
        let mut system = BriskStream::new(machine.clone());
        let report = system.submit(&topology).expect("feasible plan");
        println!(
            "RLAS: {:.1}k events/s predicted, {} replicas over {} sockets",
            report.predicted_throughput / 1e3,
            report.plan.total_replicas(),
            report.plan.placement.sockets_used().len()
        );
        let sim = system
            .simulate(&topology, &report.plan, SimConfig::default())
            .expect("simulates");
        println!(
            "measured (simulator): {:.1}k events/s, p99 latency {:.2} ms",
            sim.k_events_per_sec(),
            sim.latency_ns.percentile(99.0) / 1e6
        );

        // Communication pattern (Figure 15): fetch-cost ns/sec between
        // socket pairs.
        let graph = ExecutionGraph::new(
            &topology,
            &report.plan.replication,
            report.plan.compress_ratio,
        );
        let evaluator = Evaluator::saturated(&machine);
        let matrix = comm_cost_matrix(
            &evaluator,
            &graph,
            &report.plan.placement,
            &report.evaluation,
        );
        println!("cross-socket fetch cost (ms of stall per second, from row to column):");
        print!("      ");
        for j in 0..machine.sockets() {
            print!("   S{j}  ");
        }
        println!();
        for (i, row) in matrix.iter().enumerate() {
            print!("  S{i}  ");
            for v in row {
                print!(" {:>5.1} ", v / 1e6);
            }
            println!();
        }
    }
}
