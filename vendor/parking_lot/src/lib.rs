//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync`.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the `parking_lot` 0.12 API that BriskStream uses: [`Mutex`] with
//! an infallible `lock()`, and [`Condvar`] with `wait` / `wait_until` that
//! take `&mut MutexGuard`. Poisoning is deliberately ignored (matching
//! parking_lot semantics): a panicking holder does not wedge the lock.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Instant;

/// A mutex whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poison is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` exists so [`Condvar`] can move the
/// underlying std guard out and back across a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`] by mutable reference.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified. Spurious wakeups are possible, as with any
    /// condvar — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during condvar wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during condvar wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
        // Guard still usable after the wait.
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().expect("waiter exits");
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
