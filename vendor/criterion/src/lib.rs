//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the criterion 0.5 API that `crates/bench/benches/microbench.rs`
//! uses: [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`Throughput`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (used with `harness = false`).
//!
//! Measurement is deliberately simple: a short warm-up, then timed batches
//! until a wall-clock budget is spent, reporting mean ns/iter (plus
//! elements/s when a throughput is set). No statistics, plots, or baselines —
//! enough to keep hot paths honest and the bench target compiling in CI.

use std::time::{Duration, Instant};

/// Measurement budget per benchmark. Kept small so `cargo bench` finishes in
/// seconds; CI only compiles benches (`cargo bench --no-run`).
const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly inside the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup_end = Instant::now() + WARMUP;
        while Instant::now() < warmup_end {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let deadline = start + MEASURE;
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            // Check the clock in batches so timing overhead stays small on
            // nanosecond-scale bodies.
            if iters.is_multiple_of(64) && Instant::now() >= deadline {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{id:<40} (no iterations recorded)");
            return;
        }
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        let rate = throughput.map(|t| {
            let per_iter = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
            };
            let unit = match t {
                Throughput::Elements(_) => "elem/s",
                Throughput::Bytes(_) => "B/s",
            };
            format!(" ({:.3e} {unit})", per_iter * 1e9 / ns_per_iter)
        });
        println!(
            "{id:<40} {ns_per_iter:>12.1} ns/iter  [{} iters]{}",
            b.iters,
            rate.unwrap_or_default()
        );
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, None, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, &mut f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups (for `harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_iters() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| b.iter(|| std::hint::black_box(3 * 7)));
        g.finish();
    }
}
