//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of the `rand` 0.8 API that BriskStream uses: [`SeedableRng`],
//! [`Rng::gen_range`] / [`Rng::gen_ratio`] / [`Rng::gen_bool`], and
//! [`rngs::StdRng`]. The generator core is SplitMix64 — deterministic for a
//! given seed, statistically fine for workload generation and randomized
//! search, and trivially auditable. Every call site seeds explicitly via
//! `StdRng::seed_from_u64`, so no OS entropy source is needed.

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values (sampling would panic).
    fn is_empty_range(&self) -> bool;
}

/// The raw source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        assert!(!range.is_empty_range(), "cannot sample empty range");
        range.sample_from(self)
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator {numerator} > denominator {denominator}"
        );
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }

    /// `true` with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map 64 random bits onto `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo reduction: negligible bias for the span sizes used here.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Float rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
    fn is_empty_range(&self) -> bool {
        // NaN bounds compare as incomparable and make the range empty.
        self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn is_empty_range(&self) -> bool {
        !matches!(
            self.start().partial_cmp(self.end()),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let v = self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
    fn is_empty_range(&self) -> bool {
        self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
    }
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for
    /// `rand::rngs::StdRng`; always constructed from an explicit seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&y));
            let z = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_ratio_hits_both_sides() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!(
            (1500..3500).contains(&hits),
            "1/4 ratio produced {hits}/10000"
        );
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
