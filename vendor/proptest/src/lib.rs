//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the proptest API that BriskStream's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges
//!   and tuples of strategies,
//! * [`collection::vec`] with fixed or ranged lengths,
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support) and the
//!   [`prop_assert!`] / [`prop_assert_eq!`] assertion macros,
//! * [`test_runner::ProptestConfig`] controlling the case count.
//!
//! Differences from real proptest: cases are drawn from a fixed-seed
//! deterministic RNG (reproducible CI), and failing cases are reported but
//! **not shrunk**. The failure message includes the case index and the RNG
//! seed so a failure can be replayed exactly.

pub mod test_runner {
    /// Controls how many random cases each property runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of randomized cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` randomized cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property-test case (produced by `prop_assert!`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Record a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic RNG driving value generation. Fixed default seed keeps
    /// CI runs reproducible; the seed is printed on failure for replay.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
        seed: u64,
    }

    impl TestRng {
        /// RNG from an explicit seed.
        pub fn from_seed(seed: u64) -> Self {
            use rand::SeedableRng;
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(seed),
                seed,
            }
        }

        /// The seed this RNG was built from.
        pub fn seed(&self) -> u64 {
            self.seed
        }
    }

    impl Default for TestRng {
        fn default() -> Self {
            TestRng::from_seed(0x5EED_CAFE)
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates random values of an associated type. Unlike real proptest
    /// there is no value tree / shrinking: a strategy is just a seeded
    /// generator.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// A strategy that always yields clones of one value (`Just` in real
    /// proptest).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a [`VecStrategy`]; `size` is a fixed `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items, each of which becomes a
/// `#[test]` running `config.cases` randomized cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::default();
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed (rng seed {:#x}): {}",
                        case + 1,
                        config.cases,
                        rng.seed(),
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(
            pair in (1usize..=3, 10.0f64..20.0),
            v in prop::collection::vec(0usize..5, 1..10),
        ) {
            let (a, b) = pair;
            prop_assert!((1..=3).contains(&a));
            prop_assert!((10.0..20.0).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        /// prop_map transforms values.
        #[test]
        fn map_works(doubled in (1usize..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
