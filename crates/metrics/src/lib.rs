//! # brisk-metrics
//!
//! Measurement primitives shared by the runtime, the simulator and the
//! experiment harness: percentile sketches, CDFs, throughput meters and
//! small statistics helpers. The paper reports throughput (k events/s),
//! end-to-end latency CDFs (Figure 7), 99th-percentile latencies (Table 5)
//! and profiled cost CDFs (Figure 3); everything needed to regenerate those
//! lives here.

pub mod cdf;
pub mod histogram;
pub mod stats;
pub mod throughput;

pub use cdf::Cdf;
pub use histogram::Histogram;
pub use stats::{mean, percentile_sorted, relative_error, stddev, Summary};
pub use throughput::ThroughputMeter;
