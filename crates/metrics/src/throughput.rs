//! Throughput accounting.
//!
//! The paper reports application throughput as the summed output rate of all
//! sink operators, in thousands of events per second (`k events/s`). A
//! [`ThroughputMeter`] counts events against a clock — wall-clock for the
//! threaded runtime, virtual nanoseconds for the simulator.

/// Counts events over an externally supplied time base (nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    events: u64,
    start_ns: Option<u64>,
    end_ns: u64,
}

impl ThroughputMeter {
    /// Fresh meter.
    pub fn new() -> ThroughputMeter {
        ThroughputMeter::default()
    }

    /// Record `n` events observed at time `now_ns`.
    pub fn record(&mut self, n: u64, now_ns: u64) {
        if self.start_ns.is_none() {
            self.start_ns = Some(now_ns);
        }
        self.events += n;
        self.end_ns = self.end_ns.max(now_ns);
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Observation window in nanoseconds (first to last record).
    pub fn window_ns(&self) -> u64 {
        match self.start_ns {
            Some(s) => self.end_ns.saturating_sub(s),
            None => 0,
        }
    }

    /// Mean throughput in events per second over an explicit window.
    ///
    /// Most callers know the true measurement window (e.g. the simulator's
    /// virtual horizon) and should pass it; [`ThroughputMeter::window_ns`]
    /// under-counts when the first event arrives late.
    pub fn events_per_sec_over(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        self.events as f64 * 1e9 / window_ns as f64
    }

    /// Mean throughput over the observed (first..last event) window.
    pub fn events_per_sec(&self) -> f64 {
        self.events_per_sec_over(self.window_ns())
    }

    /// Throughput in thousands of events per second — the paper's unit.
    pub fn k_events_per_sec_over(&self, window_ns: u64) -> f64 {
        self.events_per_sec_over(window_ns) / 1e3
    }

    /// Merge another meter (events summed, window unioned).
    pub fn merge(&mut self, other: &ThroughputMeter) {
        self.events += other.events;
        self.start_ns = match (self.start_ns, other.start_ns) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.end_ns = self.end_ns.max(other.end_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_over_window() {
        let mut m = ThroughputMeter::new();
        m.record(500, 0);
        m.record(500, 1_000_000_000);
        assert_eq!(m.events(), 1000);
        assert!((m.events_per_sec() - 1000.0).abs() < 1e-9);
        assert!((m.k_events_per_sec_over(1_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_zero() {
        let m = ThroughputMeter::new();
        assert_eq!(m.events_per_sec(), 0.0);
        assert_eq!(m.window_ns(), 0);
    }

    #[test]
    fn explicit_window_beats_observed() {
        let mut m = ThroughputMeter::new();
        // All events land at the same instant: observed window is zero.
        m.record(100, 5);
        assert_eq!(m.events_per_sec(), 0.0);
        assert!((m.events_per_sec_over(1_000_000_000) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_unions_windows() {
        let mut a = ThroughputMeter::new();
        a.record(10, 100);
        let mut b = ThroughputMeter::new();
        b.record(20, 50);
        b.record(5, 300);
        a.merge(&b);
        assert_eq!(a.events(), 35);
        assert_eq!(a.window_ns(), 250);
    }
}
