//! Small statistics helpers used across the experiment harness.

/// Arithmetic mean of a sample; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); `0.0` for fewer than two
/// points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Percentile (0..=100) of an already **sorted** sample using linear
/// interpolation between closest ranks.
///
/// # Panics
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if xs.len() == 1 {
        return xs[0];
    }
    let rank = p / 100.0 * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        let w = rank - lo as f64;
        xs[lo] * (1.0 - w) + xs[hi] * w
    }
}

/// Relative error between a measurement and an estimate, as defined in the
/// paper (Section 6.2): `|measured - estimated| / measured`.
pub fn relative_error(measured: f64, estimated: f64) -> f64 {
    if measured == 0.0 {
        return if estimated == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (measured - estimated).abs() / measured.abs()
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Sample standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Summarize a sample (copied and sorted internally).
    ///
    /// Returns `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Some(Summary {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: mean(&sorted),
            median: percentile_sorted(&sorted, 50.0),
            p99: percentile_sorted(&sorted, 99.0),
            stddev: stddev(&sorted),
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.2} mean={:.2} median={:.2} p99={:.2} max={:.2} sd={:.2}",
            self.count, self.min, self.mean, self.median, self.p99, self.max, self.stddev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 10.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 40.0);
        assert!((percentile_sorted(&xs, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_singleton() {
        assert_eq!(percentile_sorted(&[7.5], 99.0), 7.5);
    }

    #[test]
    #[should_panic]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 50.0);
    }

    #[test]
    fn relative_error_matches_paper_definition() {
        // Table 4 WC row: measured 96390.8, estimated 104843.3 -> 0.08.
        let e = relative_error(96390.8, 104843.3);
        assert!((e - 0.0877).abs() < 1e-3);
    }

    #[test]
    fn relative_error_zero_measured() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).expect("non-empty");
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!(Summary::of(&[]).is_none());
    }
}
