//! Exact empirical CDFs over collected samples.
//!
//! Where the [`Histogram`](crate::Histogram) trades accuracy for bounded
//! memory, [`Cdf`] keeps every sample — appropriate for the profiling CDFs
//! (Figure 3, ~1000 samples) and Monte-Carlo plan studies (Figure 14, 1000
//! plans).

/// An exact empirical cumulative distribution function.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
    dirty: bool,
}

impl Cdf {
    /// Empty CDF.
    pub fn new() -> Cdf {
        Cdf::default()
    }

    /// Build from a sample.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Cdf {
        let mut cdf = Cdf::new();
        for s in samples {
            cdf.add(s);
        }
        cdf
    }

    /// Add one observation (non-finite values are ignored).
    pub fn add(&mut self, value: f64) {
        if value.is_finite() {
            self.sorted.push(value);
            self.dirty = true;
        }
    }

    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("finite values only"));
            self.dirty = false;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Whether any observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X <= value): fraction of observations at or below `value`.
    pub fn probability_at(&mut self, value: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.sorted.partition_point(|&x| x <= value);
        idx as f64 / self.sorted.len() as f64
    }

    /// Quantile: smallest observation `x` with P(X <= x) >= q, `q` in `[0, 1]`.
    ///
    /// # Panics
    /// Panics on an empty CDF or `q` outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        self.ensure_sorted();
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Evenly spaced `(value, cumulative probability)` points for plotting,
    /// at most `max_points` of them.
    pub fn points(&mut self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.sorted.len();
        let step = (n / max_points).max(1);
        let mut pts = Vec::new();
        let mut i = step - 1;
        while i < n {
            pts.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if pts.last().map(|p| p.1) != Some(1.0) {
            pts.push((self.sorted[n - 1], 1.0));
        }
        pts
    }

    /// Minimum observation.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.sorted.first().copied()
    }

    /// Maximum observation.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.sorted.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_uniform() {
        let mut cdf = Cdf::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.quantile(0.99), 99.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
    }

    #[test]
    fn probability_at_value() {
        let mut cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.probability_at(0.5), 0.0);
        assert_eq!(cdf.probability_at(2.0), 0.5);
        assert_eq!(cdf.probability_at(10.0), 1.0);
    }

    #[test]
    fn points_are_monotone_and_end_at_one() {
        let mut cdf = Cdf::from_samples((0..1000).map(|i| ((i * 7919) % 1000) as f64));
        let pts = cdf.points(50);
        assert!(pts.len() <= 51);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1 + 1e-12);
        }
        assert_eq!(pts.last().expect("non-empty").1, 1.0);
    }

    #[test]
    fn ignores_non_finite() {
        let mut cdf = Cdf::new();
        cdf.add(f64::NAN);
        cdf.add(f64::NEG_INFINITY);
        assert!(cdf.is_empty());
    }

    #[test]
    fn interleaved_add_and_query() {
        let mut cdf = Cdf::new();
        cdf.add(5.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
        cdf.add(1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(5.0));
    }

    #[test]
    #[should_panic]
    fn empty_quantile_panics() {
        Cdf::new().quantile(0.5);
    }
}
