//! A log-bucketed histogram for latency-style measurements.
//!
//! Values (typically nanoseconds) are recorded into exponentially sized
//! buckets with bounded relative error, so recording is O(1), memory is
//! bounded, and percentile queries are cheap. This backs the end-to-end
//! latency CDFs (Figure 7) and 99th-percentile tables (Table 5).

/// Log-bucketed histogram with ~3% relative bucket width.
///
/// Buckets: value `v` maps to bucket `floor(log(v) / log(1 + EPS))`, clamped
/// to a configurable maximum so pathological outliers cannot allocate
/// unbounded memory.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
    growth: f64,
}

const DEFAULT_GROWTH: f64 = 1.03;
const MAX_BUCKETS: usize = 2048;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram with the default 3% bucket growth.
    pub fn new() -> Histogram {
        Self::with_growth(DEFAULT_GROWTH)
    }

    /// Empty histogram with custom bucket growth factor (> 1).
    ///
    /// # Panics
    /// Panics if `growth <= 1.0`.
    pub fn with_growth(growth: f64) -> Histogram {
        assert!(growth > 1.0, "bucket growth must exceed 1");
        Histogram {
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            growth,
        }
    }

    fn bucket_of(&self, value: f64) -> usize {
        if value <= 1.0 {
            return 0;
        }
        let b = (value.ln() / self.growth.ln()).floor() as usize;
        b.min(MAX_BUCKETS - 1)
    }

    fn bucket_upper(&self, bucket: usize) -> f64 {
        self.growth.powi(bucket as i32 + 1)
    }

    /// Record one observation. Non-finite or negative values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            return;
        }
        let b = self.bucket_of(value);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record `n` identical observations.
    pub fn record_n(&mut self, value: f64, n: u64) {
        if !value.is_finite() || value < 0.0 || n == 0 {
            return;
        }
        let b = self.bucket_of(value);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += n;
        self.total += n;
        self.sum += value * n as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of recorded values (exact, not bucketed). `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Smallest recorded value (exact). `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact). `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate percentile (0..=100). Returns the upper edge of the bucket
    /// containing the requested rank, clamped to the exact min/max.
    ///
    /// Returns `0.0` when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.total == 0 {
            return 0.0;
        }
        let target = (p / 100.0 * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    ///
    /// # Panics
    /// Panics if the growth factors differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            (self.growth - other.growth).abs() < 1e-12,
            "histogram growth mismatch"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (b, &c) in other.counts.iter().enumerate() {
            self.counts[b] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Export (value, cumulative fraction) pairs, one per non-empty bucket —
    /// the raw material for CDF plots like Figure 7.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut points = Vec::new();
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            points.push((
                self.bucket_upper(b).clamp(self.min, self.max),
                seen as f64 / self.total as f64,
            ));
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentile_within_bucket_error() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        let p50 = h.percentile(50.0);
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.05, "p50={p50}");
        let p99 = h.percentile(99.0);
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.05, "p99={p99}");
    }

    #[test]
    fn min_max_exact() {
        let mut h = Histogram::new();
        h.record(3.5);
        h.record(900.0);
        h.record(41.0);
        assert_eq!(h.min(), 3.5);
        assert_eq!(h.max(), 900.0);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn rejects_garbage() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert!(h.is_empty());
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(123.0, 7);
        for _ in 0..7 {
            b.record(123.0);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10.0);
        b.record(1000.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10.0);
        assert_eq!(a.max(), 1000.0);
    }

    #[test]
    fn cdf_points_monotone() {
        let mut h = Histogram::new();
        for i in 0..1000 {
            h.record((i * 13 % 977) as f64 + 1.0);
        }
        let pts = h.cdf_points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((pts.last().expect("non-empty").1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_zero_and_hundred() {
        let mut h = Histogram::new();
        for v in [5.0, 50.0, 500.0] {
            h.record(v);
        }
        assert!(h.percentile(0.0) >= 5.0);
        assert_eq!(h.percentile(100.0), 500.0);
    }
}
