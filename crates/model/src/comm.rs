//! Communication-pattern matrices (Figure 15).
//!
//! Each entry `[i][j]` aggregates the data-fetch cost `Tf` paid per second by
//! consumers on socket `j` for tuples produced on socket `i` — the quantity
//! the paper plots to contrast how RLAS spreads traffic on the glue-less
//! Server A (hot spots around S0) versus the glue-assisted Server B (nearly
//! uniform).

use crate::evaluator::{Evaluation, Evaluator};
use brisk_dag::{ExecutionGraph, Placement};

/// Aggregate fetch cost matrix in fetch-nanoseconds per second of execution;
/// entry `[i][j]` is the summed `rate × Tf` over all edges from socket `i`
/// to socket `j`.
pub fn comm_cost_matrix(
    evaluator: &Evaluator<'_>,
    graph: &ExecutionGraph<'_>,
    placement: &Placement,
    eval: &Evaluation,
) -> Vec<Vec<f64>> {
    let n = evaluator.machine.sockets();
    let mut matrix = vec![vec![0.0; n]; n];
    for (ei, edge) in graph.edges().iter().enumerate() {
        let (Some(from), Some(to)) = (placement.socket_of(edge.from), placement.socket_of(edge.to))
        else {
            continue;
        };
        let bytes = graph.spec_of(edge.from).cost.output_bytes;
        let tf = evaluator.fetch_ns(bytes, Some(from), Some(to));
        matrix[from.0][to.0] += eval.edge_rates[ei] * tf;
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;
    use brisk_dag::{CostProfile, TopologyBuilder};
    use brisk_numa::{MachineBuilder, SocketId};

    #[test]
    fn matrix_localizes_traffic() {
        let m = MachineBuilder::new("toy")
            .sockets(2)
            .cores_per_socket(4)
            .clock_ghz(1.0)
            .build();
        let mut b = TopologyBuilder::new("p");
        let s = b.add_spout("s", CostProfile::new(100.0, 0.0, 8.0, 64.0));
        let k = b.add_sink("k", CostProfile::new(100.0, 0.0, 8.0, 64.0));
        b.connect_shuffle(s, k);
        let t = b.build().expect("valid");
        let g = ExecutionGraph::new(&t, &[1, 1], 1);
        let ev = Evaluator::saturated(&m);

        // Collocated: no fetch cost anywhere.
        let local = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = ev.evaluate(&g, &local);
        let mx = comm_cost_matrix(&ev, &g, &local, &eval);
        assert!(mx.iter().flatten().all(|&v| v == 0.0));

        // Split: all fetch cost lands in [0][1].
        let mut split = Placement::empty(g.vertex_count());
        split.place(brisk_dag::VertexId(0), SocketId(0));
        split.place(brisk_dag::VertexId(1), SocketId(1));
        let eval = ev.evaluate(&g, &split);
        let mx = comm_cost_matrix(&ev, &g, &split, &eval);
        assert!(mx[0][1] > 0.0);
        assert_eq!(mx[1][0], 0.0);
        assert_eq!(mx[0][0], 0.0);
    }
}
