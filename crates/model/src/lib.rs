//! # brisk-model
//!
//! The NUMA-aware, rate-based performance model of BriskStream (Section 3).
//!
//! Given an execution graph (operators expanded into replicas) and a —
//! possibly partial — placement of its vertices onto CPU sockets, the model
//! predicts the **output rate of every operator** and hence the application
//! throughput `R = Σ_sink ro`. The crucial difference from classic rate-based
//! optimization (Viglas & Naughton) is that an operator's processing
//! capability is *not* a constant: the per-tuple cost
//!
//! ```text
//! T(p) = Te + Tf,    Tf = ceil(N / S) * L(i, j)   (Formula 2)
//! ```
//!
//! depends on the NUMA distance `L(i,j)` between the operator and each of its
//! producers under plan `p`. The same replica is up to ~9× slower when
//! fetching across CPU trays than when collocated (Figure 8).
//!
//! The model also checks the three resource-constraint families the
//! optimizer must respect (Eq. 3–5): per-socket CPU cycles, per-socket local
//! DRAM bandwidth and per-link remote channel bandwidth — plus the physical
//! one-replica-per-core limit implied by the paper's core-isolated execution.
//!
//! Three fetch-cost policies support the Figure 12 ablation:
//!
//! * [`TfPolicy::RelativeLocation`] — the real RLAS model.
//! * [`TfPolicy::AlwaysRemote`] — `RLAS_fix(L)`: every operator
//!   pessimistically pays the worst-case (max-hop) fetch penalty.
//! * [`TfPolicy::NeverRemote`] — `RLAS_fix(U)`: remote memory access is
//!   ignored entirely.

pub mod comm;
pub mod constraints;
pub mod evaluator;
pub mod predict;
pub mod recalibrate;

pub use comm::comm_cost_matrix;
pub use constraints::{ConstraintReport, Violation};
pub use evaluator::{
    Evaluation, Evaluator, Ingress, TfPolicy, VertexRates, BOTTLENECK_TOLERANCE,
    DEFAULT_QUEUE_OVERHEAD_NS,
};
pub use predict::{predict_for_plan, OperatorPrediction, PlanPrediction};
pub use recalibrate::{
    recalibrate_from_measurement, MeasuredOperator, Recalibration, MIN_CALIBRATION_TUPLES,
};
