//! Resource-constraint checking (Equations 3–5 of the paper).
//!
//! A valid execution plan must satisfy, for every socket `i`, `j`:
//!
//! * **Eq. 3** — CPU: `Σ_{operators at Si} ro · T ≤ C`, plus the physical
//!   limit that core-isolated replicas cannot outnumber the socket's cores.
//! * **Eq. 4** — memory: `Σ_{operators at Si} ro · M ≤ B`.
//! * **Eq. 5** — interconnect: `Σ_{consumers at Sj, producers at Si}
//!   ro(s) · N ≤ Q(i,j)`.
//!
//! Checks run on partial placements too: only placed vertices contribute
//! demand (the B&B uses this to prune branches whose *already placed* subset
//! is infeasible, since demand only grows as more vertices are placed).

use crate::evaluator::Evaluation;
use brisk_dag::{ExecutionGraph, Placement};
use brisk_numa::{Machine, SocketId};

/// Relative slack allowed before a constraint counts as violated
/// (absorbs floating-point accumulation error at exact saturation).
const CONSTRAINT_TOLERANCE: f64 = 1e-9;

/// One violated resource constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// More replicas pinned to a socket than it has cores.
    Cores {
        /// Affected socket.
        socket: SocketId,
        /// Replicas placed there.
        used: usize,
        /// Cores available.
        capacity: usize,
    },
    /// Eq. 3: aggregated cycle demand exceeds the socket's cycle budget.
    CpuCycles {
        /// Affected socket.
        socket: SocketId,
        /// Demanded cycles/sec.
        used: f64,
        /// Available cycles/sec (`C`).
        capacity: f64,
    },
    /// Eq. 4: aggregated memory traffic exceeds local DRAM bandwidth.
    LocalBandwidth {
        /// Affected socket.
        socket: SocketId,
        /// Demanded bytes/sec.
        used: f64,
        /// Attainable bytes/sec (`B`).
        capacity: f64,
    },
    /// Eq. 5: cross-socket tuple traffic exceeds the channel bandwidth.
    ChannelBandwidth {
        /// Producer socket.
        from: SocketId,
        /// Consumer socket.
        to: SocketId,
        /// Demanded bytes/sec.
        used: f64,
        /// Attainable bytes/sec (`Q(i,j)`).
        capacity: f64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Cores {
                socket,
                used,
                capacity,
            } => write!(f, "{socket}: {used} replicas > {capacity} cores"),
            Violation::CpuCycles {
                socket,
                used,
                capacity,
            } => write!(
                f,
                "{socket}: {:.2}G cycles/s > {:.2}G available",
                used / 1e9,
                capacity / 1e9
            ),
            Violation::LocalBandwidth {
                socket,
                used,
                capacity,
            } => write!(
                f,
                "{socket}: {:.2} GB/s local traffic > {:.2} GB/s",
                used / 1e9,
                capacity / 1e9
            ),
            Violation::ChannelBandwidth {
                from,
                to,
                used,
                capacity,
            } => write!(
                f,
                "{from}->{to}: {:.2} GB/s > {:.2} GB/s channel",
                used / 1e9,
                capacity / 1e9
            ),
        }
    }
}

/// Outcome of checking a plan against Eq. 3–5.
#[derive(Debug, Clone, Default)]
pub struct ConstraintReport {
    /// All violations found (empty means the plan is feasible).
    pub violations: Vec<Violation>,
}

impl ConstraintReport {
    /// Whether the plan satisfies every constraint.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Check `placement` (restricted to its placed vertices) on `machine`
    /// using the rates in `eval`.
    pub fn check(
        machine: &Machine,
        graph: &ExecutionGraph<'_>,
        placement: &Placement,
        eval: &Evaluation,
    ) -> ConstraintReport {
        let n = machine.sockets();
        let mut cores = vec![0usize; n];
        let mut cycles = vec![0.0f64; n];
        let mut local_bw = vec![0.0f64; n];
        let mut channel = vec![vec![0.0f64; n]; n];

        for (vid, vertex) in graph.vertices() {
            let Some(socket) = placement.socket_of(vid) else {
                continue;
            };
            let rates = &eval.vertices[vid.0];
            let spec = graph.spec_of(vid);
            cores[socket.0] += vertex.multiplicity;
            // ro * T: processed tuples/sec times cycles per tuple
            // (T includes the placement-dependent fetch stall).
            let cycles_per_tuple = machine.ns_to_cycles(rates.total_ns());
            cycles[socket.0] += rates.processed_rate * cycles_per_tuple;
            local_bw[socket.0] += rates.processed_rate * spec.cost.mem_bytes_per_tuple;
        }

        for (ei, edge) in graph.edges().iter().enumerate() {
            let (Some(from), Some(to)) =
                (placement.socket_of(edge.from), placement.socket_of(edge.to))
            else {
                continue;
            };
            if from == to {
                continue;
            }
            let bytes = graph.spec_of(edge.from).cost.output_bytes;
            channel[from.0][to.0] += eval.edge_rates[ei] * bytes;
        }

        let mut violations = Vec::new();
        let c = machine.cycles_per_socket();
        let b = machine.local_bandwidth();
        for s in 0..n {
            if cores[s] > machine.cores_per_socket() {
                violations.push(Violation::Cores {
                    socket: SocketId(s),
                    used: cores[s],
                    capacity: machine.cores_per_socket(),
                });
            }
            if cycles[s] > c * (1.0 + CONSTRAINT_TOLERANCE) {
                violations.push(Violation::CpuCycles {
                    socket: SocketId(s),
                    used: cycles[s],
                    capacity: c,
                });
            }
            if local_bw[s] > b * (1.0 + CONSTRAINT_TOLERANCE) {
                violations.push(Violation::LocalBandwidth {
                    socket: SocketId(s),
                    used: local_bw[s],
                    capacity: b,
                });
            }
        }
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = machine.remote_bandwidth(SocketId(i), SocketId(j));
                if channel[i][j] > q * (1.0 + CONSTRAINT_TOLERANCE) {
                    violations.push(Violation::ChannelBandwidth {
                        from: SocketId(i),
                        to: SocketId(j),
                        used: channel[i][j],
                        capacity: q,
                    });
                }
            }
        }
        ConstraintReport { violations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;
    use brisk_dag::{CostProfile, TopologyBuilder};
    use brisk_numa::MachineBuilder;

    fn tiny_machine(cores: usize) -> Machine {
        MachineBuilder::new("tiny")
            .sockets(2)
            .cores_per_socket(cores)
            .clock_ghz(1.0)
            .local_latency_ns(50.0)
            .one_hop_latency_ns(200.0)
            .max_hop_latency_ns(200.0)
            .local_bandwidth_gbps(10.0)
            .one_hop_bandwidth_gbps(1.0)
            .max_hop_bandwidth_gbps(1.0)
            .build()
    }

    fn pipeline(mem_per_tuple: f64, tuple_bytes: f64) -> brisk_dag::LogicalTopology {
        let mut b = TopologyBuilder::new("p");
        let s = b.add_spout(
            "s",
            CostProfile::new(100.0, 0.0, mem_per_tuple, tuple_bytes),
        );
        let k = b.add_sink(
            "k",
            CostProfile::new(100.0, 0.0, mem_per_tuple, tuple_bytes),
        );
        b.connect_shuffle(s, k);
        b.build().expect("valid")
    }

    #[test]
    fn feasible_plan_passes() {
        let m = tiny_machine(4);
        let t = pipeline(10.0, 64.0);
        let g = ExecutionGraph::new(&t, &[1, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m).evaluate(&g, &p);
        let report = ConstraintReport::check(&m, &g, &p, &eval);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn too_many_replicas_violates_cores() {
        let m = tiny_machine(1);
        let t = pipeline(10.0, 64.0);
        let g = ExecutionGraph::new(&t, &[1, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m).evaluate(&g, &p);
        let report = ConstraintReport::check(&m, &g, &p, &eval);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Cores { .. })));
    }

    #[test]
    fn heavy_memory_traffic_violates_local_bandwidth() {
        let m = tiny_machine(8);
        // Spout at 10M tuples/s with 10 KB of memory traffic per tuple
        // demands 100 GB/s >> 10 GB/s local bandwidth.
        let t = pipeline(10_000.0, 64.0);
        let g = ExecutionGraph::new(&t, &[1, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m).evaluate(&g, &p);
        let report = ConstraintReport::check(&m, &g, &p, &eval);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LocalBandwidth { .. })));
    }

    #[test]
    fn cross_socket_traffic_violates_channel() {
        let m = tiny_machine(8);
        // 4 KB tuples crossing sockets from eight producers to eight
        // consumers: ~8 x 77k tuples/s x 4 KB ~ 2.5 GB/s > 1 GB/s channel.
        let t = pipeline(10.0, 4096.0);
        let g = ExecutionGraph::new(&t, &[8, 8], 1);
        let mut p = Placement::empty(g.vertex_count());
        for i in 0..8 {
            p.place(brisk_dag::VertexId(i), SocketId(0));
            p.place(brisk_dag::VertexId(8 + i), SocketId(1));
        }
        let eval = Evaluator::saturated(&m).evaluate(&g, &p);
        let report = ConstraintReport::check(&m, &g, &p, &eval);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::ChannelBandwidth { .. })),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn partial_placement_counts_only_placed() {
        let m = tiny_machine(1);
        let t = pipeline(10.0, 64.0);
        let g = ExecutionGraph::new(&t, &[1, 1], 1);
        let mut p = Placement::empty(g.vertex_count());
        p.place(brisk_dag::VertexId(0), SocketId(0));
        let eval = Evaluator::saturated(&m).evaluate(&g, &p);
        let report = ConstraintReport::check(&m, &g, &p, &eval);
        // One replica on a one-core socket is fine; the unplaced sink does
        // not count.
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn violations_render() {
        let v = Violation::ChannelBandwidth {
            from: SocketId(0),
            to: SocketId(1),
            used: 2e9,
            capacity: 1e9,
        };
        assert!(format!("{v}").contains("S0->S1"));
    }
}
