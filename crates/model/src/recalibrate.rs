//! Online cost recalibration: re-fit operator profiles to measured
//! service times.
//!
//! The paper profiles each operator once, offline, and trusts the profile
//! for the lifetime of the plan. An elastic runtime cannot: workload drift
//! (a cost step, a selectivity shift) silently invalidates `Te`, and every
//! re-optimization on the stale profile reproduces the stale plan. This
//! module closes the loop. Given the per-operator *measured* signals an
//! engine run exposes — tuples handled and nanoseconds spent inside
//! `consume` (`brisk_runtime::ReplicaRate`) — it compares measured
//! per-tuple service time against the model's prediction for the same
//! plan, separates a *host-speed* miscalibration (every operator off by
//! the same factor: the machine spec's clock does not match reality) from
//! *per-operator* drift (one operator's ratio departing from the rest),
//! and returns a topology whose `exec_cycles` are re-fit so the model
//! reproduces the measurement.
//!
//! Known limits, by design:
//!
//! * Spouts are not instrumented (generation is not bracketed by a timer),
//!   so their profiles are never re-fit — spout cost rarely binds, and the
//!   back-pressured spout rate is observable directly.
//! * Measured busy time includes time blocked pushing into a full
//!   downstream queue, so operators *upstream of* a saturated bottleneck
//!   read inflated. The bottleneck itself never blocks (its consumers are
//!   starved) and operators downstream of it are idle-but-clean, so the
//!   binding profile — the one re-planning acts on — is measured honestly.
//! * Operators fused away into a host chain have tuples but no busy time
//!   of their own; the host's busy covers the whole chain. The chain's
//!   budget is redistributed over its members in proportion to
//!   tuples × modelled service, keeping the chain total right even though
//!   within-chain attribution follows the (possibly stale) model.

use crate::evaluator::Evaluator;
use brisk_dag::{
    CostProfile, ExecutionGraph, ExecutionPlan, FusionPlan, LogicalTopology, OperatorId,
    OperatorKind,
};
use brisk_numa::Machine;

/// Operators with fewer measured tuples than this keep their profile: a
/// starved replica's service-time quotient is noise, not signal.
pub const MIN_CALIBRATION_TUPLES: u64 = 500;

/// Pooled online measurements for one logical operator, summed over its
/// replicas (the per-operator pooling of `ReplicaRate` rows).
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasuredOperator {
    /// Tuples the operator handled during the sampling window (spouts:
    /// emitted; bolts/sinks: consumed, inline fused deliveries included).
    pub tuples: u64,
    /// Nanoseconds its replicas spent inside `consume` (0 for spouts and
    /// fused-away operators, whose work is timed at their chain host).
    pub busy_ns: u64,
}

/// A recalibrated topology plus the diagnostics the controller logs.
#[derive(Debug, Clone)]
pub struct Recalibration {
    /// Copy of the input topology with per-operator `exec_cycles` re-fit
    /// to the host-normalized measured service times.
    pub topology: LogicalTopology,
    /// Smallest measured/modelled service-time ratio over operators with
    /// signal — the host-speed correction. Both known measurement biases
    /// (cost drift and time blocked on a saturated consumer) inflate an
    /// operator's ratio, never deflate it, so the cleanest host estimate
    /// is the least-inflated operator. 1.0 when nothing measured.
    pub host_factor: f64,
    /// Per-operator measured/modelled service ratio (1.0 = on-model or no
    /// signal). An entry far above `host_factor` is genuine per-operator
    /// drift.
    pub ratios: Vec<f64>,
    /// Whether each operator produced a usable measurement (enough tuples
    /// and instrumented busy time).
    pub signal: Vec<bool>,
}

impl Recalibration {
    /// Largest per-operator drift after removing the host factor —
    /// `max_i |ratios[i]/host_factor - 1|` over measured operators — the
    /// scalar the controller compares against its re-plan threshold.
    pub fn max_drift(&self) -> f64 {
        self.ratios
            .iter()
            .zip(&self.signal)
            .filter(|&(_, &s)| s)
            .map(|(r, _)| (r / self.host_factor - 1.0).abs())
            .fold(0.0, f64::max)
    }
}

/// Per-operator modelled per-tuple times under `plan`:
/// `(exec_ns, total_ns)`, pooled over the operator's vertices weighted by
/// their modelled processed rate.
fn modelled_service_ns(
    machine: &Machine,
    topology: &LogicalTopology,
    plan: &ExecutionPlan,
) -> Vec<(f64, f64)> {
    let graph = ExecutionGraph::new(topology, &plan.replication, plan.compress_ratio);
    let eval = Evaluator::saturated(machine)
        .fused_engine()
        .evaluate(&graph, &plan.placement);
    let n = topology.operator_count();
    let mut exec = vec![0.0f64; n];
    let mut total = vec![0.0f64; n];
    let mut weight = vec![0.0f64; n];
    for (vid, vertex) in graph.vertices() {
        let r = &eval.vertices[vid.0];
        let w = r.processed_rate.max(f64::MIN_POSITIVE);
        exec[vertex.op.0] += w * r.exec_ns;
        total[vertex.op.0] += w * r.total_ns();
        weight[vertex.op.0] += w;
    }
    (0..n)
        .map(|op| {
            let w = weight[op].max(f64::MIN_POSITIVE);
            (exec[op] / w, total[op] / w)
        })
        .collect()
}

/// Re-fit `topology`'s per-operator execution costs from a measured run of
/// `plan`. See the module docs for the signal model and its limits.
pub fn recalibrate_from_measurement(
    machine: &Machine,
    topology: &LogicalTopology,
    plan: &ExecutionPlan,
    measured: &[MeasuredOperator],
) -> Recalibration {
    let n = topology.operator_count();
    assert_eq!(measured.len(), n, "one measurement row per operator");
    let service = modelled_service_ns(machine, topology, plan);

    // Redistribute chain-host busy time over fused chain members in
    // proportion to tuples × modelled service, so members regain a
    // per-operator signal and hosts stop over-reading.
    let graph = ExecutionGraph::new(topology, &plan.replication, plan.compress_ratio);
    let fusion = FusionPlan::from_graph(&graph, &plan.placement);
    let mut busy: Vec<f64> = measured.iter().map(|m| m.busy_ns as f64).collect();
    for chain in fusion.chains() {
        if chain.len() < 2 {
            continue;
        }
        let host = chain[0];
        if topology.operator(host).kind == OperatorKind::Spout {
            // Spout-hosted chains are uninstrumented end to end.
            continue;
        }
        let pool: f64 = chain.iter().map(|op| busy[op.0]).sum();
        let weights: Vec<f64> = chain
            .iter()
            .map(|op| measured[op.0].tuples as f64 * service[op.0].1)
            .collect();
        let total_w: f64 = weights.iter().sum();
        if pool <= 0.0 || total_w <= 0.0 {
            continue;
        }
        for (op, w) in chain.iter().zip(weights) {
            busy[op.0] = pool * w / total_w;
        }
    }

    // Measured/modelled service ratio per operator with signal.
    let mut ratios = vec![1.0f64; n];
    let mut has_signal = vec![false; n];
    let mut sampled: Vec<f64> = Vec::new();
    for op in 0..n {
        let m = &measured[op];
        if m.tuples < MIN_CALIBRATION_TUPLES || busy[op] <= 0.0 || service[op].1 <= 0.0 {
            continue;
        }
        let measured_service = busy[op] / m.tuples as f64;
        let r = measured_service / service[op].1;
        if r.is_finite() && r > 0.0 {
            ratios[op] = r;
            has_signal[op] = true;
            sampled.push(r);
        }
    }
    let min_ratio = sampled.iter().copied().fold(f64::INFINITY, f64::min);
    let host_factor = if min_ratio.is_finite() {
        min_ratio
    } else {
        1.0
    };

    // Re-fit exec_cycles: the host-normalized measured service, minus the
    // model's non-execution components (overhead, fetch, queue crossing),
    // converted back to cycles. Floor at 5% of the normalized service so a
    // measurement below the modelled overheads never zeroes a profile.
    let clock = machine.clock_hz();
    let mut recal = topology.clone();
    for op in 0..n {
        if !has_signal[op] {
            continue; // no signal: keep the profile
        }
        let normalized = ratios[op] * service[op].1 / host_factor;
        let non_exec = service[op].1 - service[op].0;
        let new_exec_ns = (normalized - non_exec).max(0.05 * normalized);
        let id = OperatorId(op);
        let old = topology.operator(id).cost;
        recal.set_cost(
            id,
            CostProfile::new(
                new_exec_ns * clock / 1e9,
                old.overhead_cycles,
                old.mem_bytes_per_tuple,
                old.output_bytes,
            ),
        );
    }

    Recalibration {
        topology: recal,
        host_factor,
        ratios,
        signal: has_signal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_dag::{Placement, TopologyBuilder};
    use brisk_numa::{MachineBuilder, SocketId};

    fn toy_machine() -> Machine {
        MachineBuilder::new("toy")
            .sockets(2)
            .cores_per_socket(4)
            .clock_ghz(1.0)
            .local_latency_ns(50.0)
            .one_hop_latency_ns(200.0)
            .max_hop_latency_ns(200.0)
            .build()
    }

    fn linear_topology() -> LogicalTopology {
        let mut b = TopologyBuilder::new("lin");
        let s = b.add_spout("spout", CostProfile::new(100.0, 0.0, 64.0, 64.0));
        let x = b.add_bolt("bolt", CostProfile::new(200.0, 0.0, 64.0, 64.0));
        let k = b.add_sink("sink", CostProfile::new(50.0, 0.0, 64.0, 64.0));
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        b.build().expect("valid")
    }

    fn plan_121() -> ExecutionPlan {
        ExecutionPlan {
            replication: vec![1, 2, 1],
            compress_ratio: 1,
            placement: Placement::all_on(4, SocketId(0)),
        }
    }

    /// Synthesize a measurement where each operator runs `factor[i]` times
    /// slower than the model says.
    fn synth(
        m: &Machine,
        t: &LogicalTopology,
        plan: &ExecutionPlan,
        factor: &[f64],
    ) -> Vec<MeasuredOperator> {
        let service = modelled_service_ns(m, t, plan);
        factor
            .iter()
            .enumerate()
            .map(|(op, f)| {
                if t.operator(OperatorId(op)).kind == OperatorKind::Spout {
                    return MeasuredOperator {
                        tuples: 100_000,
                        busy_ns: 0,
                    };
                }
                let tuples = 100_000u64;
                MeasuredOperator {
                    tuples,
                    busy_ns: (tuples as f64 * service[op].1 * f) as u64,
                }
            })
            .collect()
    }

    #[test]
    fn uniform_slowdown_is_absorbed_by_the_host_factor() {
        let m = toy_machine();
        let t = linear_topology();
        let plan = plan_121();
        let measured = synth(&m, &t, &plan, &[1.0, 2.0, 2.0]);
        let r = recalibrate_from_measurement(&m, &t, &plan, &measured);
        assert!((r.host_factor - 2.0).abs() < 0.01, "{}", r.host_factor);
        assert!(r.max_drift() < 0.01, "{}", r.max_drift());
        // Host-normalized profiles stay put.
        for op in [1usize, 2] {
            let before = t.operator(OperatorId(op)).cost.exec_cycles;
            let after = r.topology.operator(OperatorId(op)).cost.exec_cycles;
            assert!(
                (after - before).abs() / before < 0.02,
                "op {op}: {before} -> {after}"
            );
        }
    }

    #[test]
    fn locally_slow_operator_gets_its_cost_rescaled() {
        let m = toy_machine();
        let t = linear_topology();
        let plan = plan_121();
        // The bolt drifted 3x; the sink is on-model.
        let measured = synth(&m, &t, &plan, &[1.0, 3.0, 1.0]);
        let r = recalibrate_from_measurement(&m, &t, &plan, &measured);
        let before = t.operator(OperatorId(1)).cost.exec_cycles;
        let after = r.topology.operator(OperatorId(1)).cost.exec_cycles;
        assert!(
            after > 2.0 * before,
            "drifted bolt must get costlier: {before} -> {after}"
        );
        assert!(r.max_drift() > 0.5, "{}", r.max_drift());
        // The spout (uninstrumented) keeps its profile bit-exact.
        assert_eq!(
            t.operator(OperatorId(0)).cost.exec_cycles,
            r.topology.operator(OperatorId(0)).cost.exec_cycles
        );
    }

    #[test]
    fn starved_operators_keep_their_profile() {
        let m = toy_machine();
        let t = linear_topology();
        let plan = plan_121();
        let mut measured = synth(&m, &t, &plan, &[1.0, 5.0, 1.0]);
        measured[1].tuples = MIN_CALIBRATION_TUPLES - 1; // starved: noise
        let r = recalibrate_from_measurement(&m, &t, &plan, &measured);
        assert_eq!(
            t.operator(OperatorId(1)).cost.exec_cycles,
            r.topology.operator(OperatorId(1)).cost.exec_cycles
        );
    }
}
