//! Output-rate propagation: the core of the performance model.
//!
//! The evaluator derives, for every execution vertex, its per-tuple
//! processing time `T(p) = Te + Others + Tf(p)` (the fetch cost `Tf`
//! averaged over producers weighted by their input shares, Formula 2) and
//! from it the vertex's processing **capacity**.
//!
//! Rates are then *back-pressure coupled*: in a system of bounded queues,
//! a saturated operator blocks its producers, which ultimately throttles
//! the spout (the paper's footnote 2), so the sustainable steady state is
//!
//! ```text
//! p* = min over operators of  ( pooled capacity / input factor )
//! ```
//!
//! where the input factor is the operator's input rate per unit of spout
//! output (pure selectivity propagation) and the pooled capacity sums the
//! operator's replicas (shuffle/key-by routing is work-conserving, so a slow
//! remote replica does not gate its faster siblings). Every vertex then
//! processes exactly its share of `p*` — the "just fulfilled" (`ro = ri`)
//! state the paper observes in optimized plans.
//!
//! Operators whose capacity would be exceeded were the spout unthrottled
//! are reported as **bottlenecks** together with their over-supply ratio —
//! the signal the scaling algorithm grows replication by (Case 1 of the
//! paper, expressed against the spout-saturated demand).

use brisk_dag::{ExecutionGraph, FusionPlan, OperatorKind, Partitioning, Placement, VertexId};
use brisk_numa::{Machine, SocketId, CACHE_LINE_BYTES};

/// An input rate is a bottleneck when it exceeds capacity by this relative
/// tolerance (guards against float jitter at exact saturation).
pub const BOTTLENECK_TOLERANCE: f64 = 1e-6;

/// Default per-tuple cost of one queue crossing, in nanoseconds — the
/// engine-side work a *fused* edge skips: cloning the tuple into the
/// output buffer, routing, jumbo assembly, the ring push/pop (the
/// `BENCH_queue.json` sync cost is the small part: ~0.3–2.5 ns/tuple
/// amortized over a 64-tuple jumbo) and the consumer's poll/iterate loop.
/// An engineering estimate anchored to the queue-fabric microbench and
/// the Linear Road fused-vs-unfused A/B rather than a profiled quantity;
/// override with [`Evaluator::with_queue_overhead`] when a host has been
/// measured. Charged by fusion-aware scorers so "fuse or split" ties
/// break the way the engine actually performs: splitting a chain must
/// buy enough pipeline parallelism to repay the crossings it re-adds.
pub const DEFAULT_QUEUE_OVERHEAD_NS: f64 = 25.0;

/// External ingress configuration for the spouts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ingress {
    /// `I` is sufficiently large to keep the system busy: spouts run at
    /// their processing capacity (modulo back-pressure). This is the
    /// configuration used to examine maximum system capacity (Section 5.3).
    Saturated,
    /// A finite total external rate in tuples/sec, split across spout
    /// replicas evenly.
    Rate(f64),
}

/// How the fetch cost `Tf` reacts to relative location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TfPolicy {
    /// Formula 2: zero when collocated with the producer, otherwise
    /// `ceil(N/S) * L(i,j)`.
    RelativeLocation,
    /// `RLAS_fix(L)`: always pay the machine's worst-case latency, as if
    /// anti-collocated from every producer.
    AlwaysRemote,
    /// `RLAS_fix(U)`: never pay any fetch cost.
    NeverRemote,
}

/// Modelled rates for one execution vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VertexRates {
    /// Arriving tuples/sec (`ri`) in the back-pressured steady state.
    pub input_rate: f64,
    /// Maximum input tuples/sec this vertex can process under the placement.
    pub capacity: f64,
    /// Tuples/sec actually processed (spouts: generation rate).
    pub processed_rate: f64,
    /// Total emitted tuples/sec across all output streams (`ro`).
    pub output_rate: f64,
    /// Average execution time `Te` per tuple, ns.
    pub exec_ns: f64,
    /// Average engine overhead ("Others") per tuple, ns.
    pub overhead_ns: f64,
    /// Average state-access time per tuple (index probe + amortized
    /// eviction) for stateful operators, ns. Placement-independent: state
    /// lives with its replica, so every placement pays it identically.
    pub state_ns: f64,
    /// Average remote-fetch time `Tf` per tuple under this placement, ns.
    pub tf_ns: f64,
    /// Average queue-crossing overhead per tuple, ns — zero unless the
    /// evaluator charges [`Evaluator::with_queue_overhead`]; fused edges
    /// never pay it.
    pub queue_ns: f64,
    /// Whether the operator this vertex belongs to would be over-supplied
    /// were the spouts unthrottled (Case 1) — a pipeline bottleneck.
    pub bottleneck: bool,
}

impl VertexRates {
    /// Full per-tuple handling time `T(p)` in ns.
    pub fn total_ns(&self) -> f64 {
        self.exec_ns + self.overhead_ns + self.state_ns + self.tf_ns + self.queue_ns
    }
}

/// Result of evaluating a (possibly partial) placement.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Application throughput `R = Σ_sink ro` in tuples/sec.
    pub throughput: f64,
    /// Per-vertex rates, indexed by `VertexId`.
    pub vertices: Vec<VertexRates>,
    /// Tuples/sec flowing on each execution edge, indexed like
    /// [`ExecutionGraph::edges`].
    pub edge_rates: Vec<f64>,
    /// Over-supply ratio per operator against spout-saturated demand
    /// (`> 1` means the operator throttles the pipeline).
    pub operator_pressure: Vec<f64>,
}

impl Evaluation {
    /// Vertices belonging to over-supplied operators.
    pub fn bottlenecks(&self) -> Vec<VertexId> {
        self.vertices
            .iter()
            .enumerate()
            .filter(|(_, v)| v.bottleneck)
            .map(|(i, _)| VertexId(i))
            .collect()
    }

    /// For each bottlenecked operator, the over-supply ratio (demand at
    /// spout saturation / pooled capacity). The scaling algorithm grows the
    /// replication level by `ceil(ratio)`.
    pub fn bottleneck_operators(&self, graph: &ExecutionGraph<'_>) -> Vec<(usize, f64)> {
        let _ = graph;
        self.operator_pressure
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r > 1.0 + BOTTLENECK_TOLERANCE)
            .map(|(op, &r)| (op, r))
            .collect()
    }

    /// Throughput in the paper's unit, thousands of events per second.
    pub fn k_events_per_sec(&self) -> f64 {
        self.throughput / 1e3
    }
}

/// The model evaluator: machine + ingress + fetch-cost policy.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'m> {
    /// Machine specification supplying `C`, `B`, `Q(i,j)`, `L(i,j)`, `S`.
    pub machine: &'m Machine,
    /// External ingress configuration.
    pub ingress: Ingress,
    /// Fetch-cost policy (RLAS vs the fixed-capability ablations).
    pub tf_policy: TfPolicy,
    /// Model operator-chain fusion, matching the engine default: edges a
    /// [`FusionPlan`] collapses travel inside one executor, so they drop
    /// their Formula-2 communication term (regardless of `tf_policy`) AND
    /// the chain pays the **serialized-chain cost** — each replica pair is
    /// one thread running every member's per-tuple time back to back, so
    /// the chain's capacity is `1e9 / Σ member demand-weighted T(m)`, not
    /// one phantom executor per member. Fused-away replicas also stop
    /// counting against core occupancy (they spawn no thread).
    ///
    /// Off by default: partial-placement *bounds* must stay fusion-free to
    /// remain admissible (an unfused completion can out-run a serialized
    /// chain), so the B&B turns this on only when scoring complete
    /// placements, and `predict_for_plan` turns it on for the plan-level
    /// prediction.
    pub fusion: bool,
    /// Per-tuple queue-crossing cost charged to consumers on every
    /// *unfused* edge, ns (see [`DEFAULT_QUEUE_OVERHEAD_NS`]). Zero by
    /// default, keeping the paper's pure Formula-2 semantics for bounds
    /// and ablations; fusion-aware scorers set it so splitting a fusable
    /// chain is not modelled as free.
    pub queue_overhead_ns: f64,
    /// Bound-mode refinement of the queue charge: when set, an edge the
    /// *optimistic* fusion plan (replica alignment only, placement
    /// ignored) could still collapse rides free, and only edges **no**
    /// completion can fuse pay `queue_overhead_ns`. The optimistic fused
    /// set is a superset of every complete placement's fused set —
    /// placement decisions only *break* collocation — so charging exactly
    /// the never-fusable complement keeps the bound admissible against the
    /// fused-engine objective while pricing in crossings every completion
    /// must pay. Off by default; [`Evaluator::bounding`] turns it on.
    pub fusable_edges_ride_free: bool,
}

impl<'m> Evaluator<'m> {
    /// Evaluator with the standard RLAS policy and saturated ingress.
    pub fn saturated(machine: &'m Machine) -> Evaluator<'m> {
        Evaluator {
            machine,
            ingress: Ingress::Saturated,
            tf_policy: TfPolicy::RelativeLocation,
            fusion: false,
            queue_overhead_ns: 0.0,
            fusable_edges_ride_free: false,
        }
    }

    /// Same evaluator with a different fetch policy.
    pub fn with_policy(self, tf_policy: TfPolicy) -> Evaluator<'m> {
        Evaluator { tf_policy, ..self }
    }

    /// Same evaluator with a finite ingress rate.
    pub fn with_ingress(self, ingress: Ingress) -> Evaluator<'m> {
        Evaluator { ingress, ..self }
    }

    /// Same evaluator with fusion modelling switched on or off.
    pub fn with_fusion(self, fusion: bool) -> Evaluator<'m> {
        Evaluator { fusion, ..self }
    }

    /// Same evaluator charging `queue_overhead_ns` per tuple on unfused
    /// edges (fused edges always ride free).
    pub fn with_queue_overhead(self, queue_overhead_ns: f64) -> Evaluator<'m> {
        Evaluator {
            queue_overhead_ns,
            ..self
        }
    }

    /// The honest engine objective: fusion modelled (serialized chains,
    /// freed threads) and unfused edges charged the default queue-crossing
    /// cost — what RLAS scores complete plans with and what
    /// `predict_for_plan` reports.
    pub fn fused_engine(self) -> Evaluator<'m> {
        Evaluator {
            fusion: true,
            queue_overhead_ns: DEFAULT_QUEUE_OVERHEAD_NS,
            fusable_edges_ride_free: false,
            ..self
        }
    }

    /// The tightened admissible B&B bounding configuration: capacities stay
    /// fusion-free (every member keeps its own parallel executor — an upper
    /// bound on the serialized chain), but edges that can never fuse under
    /// *any* placement are charged the queue-crossing cost every completion
    /// pays on them. Strictly at or below the legacy zero-queue bound, and
    /// still at or above every completion's [`Evaluator::fused_engine`]
    /// score (pinned by the property tests), so B&B prunes more without
    /// ever pruning the optimum.
    pub fn bounding(self) -> Evaluator<'m> {
        Evaluator {
            fusion: false,
            queue_overhead_ns: DEFAULT_QUEUE_OVERHEAD_NS,
            fusable_edges_ride_free: true,
            ..self
        }
    }

    /// Fetch cost in ns for one tuple of `bytes` bytes produced on `from`
    /// and consumed on `to` (Formula 2), under the active policy.
    ///
    /// `None` for either socket means "unplaced"; the bounding function
    /// treats unplaced endpoints as collocated (`Tf = 0`), which is exactly
    /// how the paper computes the upper bound of a live node.
    pub fn fetch_ns(&self, bytes: f64, from: Option<SocketId>, to: Option<SocketId>) -> f64 {
        let lines = (bytes / CACHE_LINE_BYTES as f64).ceil().max(1.0);
        match self.tf_policy {
            TfPolicy::NeverRemote => 0.0,
            TfPolicy::AlwaysRemote => lines * self.worst_latency_ns(),
            TfPolicy::RelativeLocation => match (from, to) {
                (Some(i), Some(j)) if i != j => lines * self.machine.latency_ns(i, j),
                _ => 0.0,
            },
        }
    }

    fn worst_latency_ns(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for i in self.machine.socket_ids() {
            for j in self.machine.socket_ids() {
                if i != j {
                    worst = worst.max(self.machine.latency_ns(i, j));
                }
            }
        }
        worst
    }

    /// Evaluate the model over `graph` with `placement`.
    ///
    /// The placement may be partial: unplaced vertices are treated as
    /// collocated with all of their producers and consumers (the bounding
    /// relaxation). For complete placements this *is* the performance model;
    /// for partial ones the returned throughput is the bounding-function
    /// value (a true upper bound on any completion — see the property tests).
    pub fn evaluate(&self, graph: &ExecutionGraph<'_>, placement: &Placement) -> Evaluation {
        assert_eq!(
            placement.len(),
            graph.vertex_count(),
            "placement must cover the graph"
        );
        let clock = self.machine.clock_hz();
        let nv = graph.vertex_count();
        let n_ops = graph.topology().operator_count();
        // Fused edges are delivered inline inside one executor: no queue
        // crossing, no fetch — their Formula-2 term is dropped outright.
        let fusion = self
            .fusion
            .then(|| FusionPlan::from_graph(graph, placement));
        // Bound-mode refinement: the optimistic (placement-free) fusion
        // plan — edges outside it can never fuse, so every completion pays
        // their crossing cost and the bound may charge it too.
        let optimistic_fusion = (self.fusable_edges_ride_free && self.queue_overhead_ns > 0.0)
            .then(|| FusionPlan::compute(graph.topology(), graph.replication(), None));

        // ---- Pass 1: relative flow factors (per unit of aggregate spout
        // output) and fetch-cost mixes. ----
        let spout_vertices = graph.spout_vertices();
        let total_spout_mult: usize = spout_vertices
            .iter()
            .map(|&v| graph.vertex(v).multiplicity)
            .sum();
        let mut in_factor = vec![0.0f64; nv]; // input per unit spout output
        let mut out_factor = vec![0.0f64; nv]; // output per unit spout output
        let mut edge_factor = vec![0.0f64; graph.edge_count()];
        let mut weighted_tf = vec![0.0f64; nv]; // Σ factor × Tf(producer)
        let mut weighted_queue = vec![0.0f64; nv]; // Σ factor × queue cost

        for &v in &spout_vertices {
            out_factor[v.0] = graph.vertex(v).multiplicity as f64 / total_spout_mult.max(1) as f64;
        }

        for &vid in graph.topological_order() {
            let vertex = graph.vertex(vid);
            let spec = graph.spec_of(vid);
            let is_spout = spec.kind == OperatorKind::Spout;

            // Output per logical stream from this vertex's processed flow.
            // (For non-spouts, per-input-edge factors with exact Table 8
            // selectivities were accumulated below as edges arrived; here we
            // just forward them.)
            for (lei, out) in graph.topology().outgoing_edge_refs(vertex.op) {
                let stream = out.stream.as_str();
                let stream_factor: f64 = if is_spout {
                    out_factor[vid.0] * spec.selectivity(None, stream)
                } else {
                    graph
                        .incoming_edges(vid)
                        .map(|e| {
                            let in_stream = graph.topology().edges()[e.edge.logical_edge]
                                .stream
                                .as_str();
                            edge_factor[e.index] * spec.selectivity(Some(in_stream), stream)
                        })
                        .sum()
                };
                if stream_factor <= 0.0 {
                    continue;
                }
                out_factor[vid.0] += if is_spout { 0.0 } else { stream_factor };
                // Distribute over the consumer vertices of this logical edge.
                let to_op = out.to;
                let consumers = graph.vertices_of(to_op);
                let total_mult: usize = consumers
                    .iter()
                    .map(|&c| graph.vertex(c).multiplicity)
                    .sum();
                let bytes = spec.cost.output_bytes;
                let from_socket = placement.socket_of(vid);
                for e in graph.outgoing_edges(vid) {
                    if e.edge.logical_edge != lei {
                        continue;
                    }
                    let cv = e.edge.to;
                    let cmult = graph.vertex(cv).multiplicity as f64;
                    let share = match out.partitioning {
                        // Forward pairs replica i with replica i at equal
                        // counts (an exact even spread across the
                        // consumer's identically-shaped vertex groups) and
                        // degrades to Shuffle otherwise — either way the
                        // even spread below is what the engine executes.
                        Partitioning::Shuffle | Partitioning::KeyBy | Partitioning::Forward => {
                            stream_factor * cmult / total_mult as f64
                        }
                        Partitioning::Broadcast => stream_factor * cmult,
                        Partitioning::Global => stream_factor,
                    };
                    edge_factor[e.index] += share;
                    in_factor[cv.0] += share;
                    let fused = fusion
                        .as_ref()
                        .is_some_and(|f| f.is_edge_fused(e.edge.logical_edge));
                    // Fused edges travel inline: no fetch, no crossing.
                    let (tf, queue) = if fused {
                        (0.0, 0.0)
                    } else {
                        let crossing = match &optimistic_fusion {
                            Some(of) if of.is_edge_fused(e.edge.logical_edge) => 0.0,
                            _ => self.queue_overhead_ns,
                        };
                        (
                            self.fetch_ns(bytes, from_socket, placement.socket_of(cv)),
                            crossing,
                        )
                    };
                    weighted_tf[cv.0] += share * tf;
                    weighted_queue[cv.0] += share * queue;
                }
            }
        }

        // ---- Pass 2: per-vertex capacities. ----
        // Core occupancy counts *executor threads*: a fused-away replica
        // rides its host's thread, so (with fusion modelled) it does not
        // claim a core of its own — exactly the engine's spawn behaviour.
        let mut socket_replicas = vec![0usize; self.machine.sockets()];
        for (vid, vertex) in graph.vertices() {
            if fusion.as_ref().is_some_and(|f| f.is_fused_away(vertex.op)) {
                continue;
            }
            if let Some(s) = placement.socket_of(vid) {
                socket_replicas[s.0] += vertex.multiplicity;
            }
        }
        let cores = self.machine.cores_per_socket();
        let share_factor = |socket: Option<SocketId>| -> f64 {
            match socket {
                Some(s) if socket_replicas[s.0] > cores => {
                    cores as f64 / socket_replicas[s.0] as f64
                }
                _ => 1.0,
            }
        };

        let mut exec_ns = vec![0.0f64; nv];
        let mut overhead_ns = vec![0.0f64; nv];
        let mut state_ns = vec![0.0f64; nv];
        let mut tf_ns = vec![0.0f64; nv];
        let mut queue_ns = vec![0.0f64; nv];
        let mut capacity = vec![0.0f64; nv];
        for (vid, vertex) in graph.vertices() {
            let spec = graph.spec_of(vid);
            exec_ns[vid.0] = spec.cost.exec_cycles / clock * 1e9;
            overhead_ns[vid.0] = spec.cost.overhead_cycles / clock * 1e9;
            state_ns[vid.0] = spec.cost.state_cycles / clock * 1e9;
            if in_factor[vid.0] > 0.0 {
                tf_ns[vid.0] = weighted_tf[vid.0] / in_factor[vid.0];
                queue_ns[vid.0] = weighted_queue[vid.0] / in_factor[vid.0];
            }
            let t = exec_ns[vid.0]
                + overhead_ns[vid.0]
                + state_ns[vid.0]
                + tf_ns[vid.0]
                + queue_ns[vid.0];
            capacity[vid.0] = if t > 0.0 {
                vertex.multiplicity as f64 * 1e9 / t * share_factor(placement.socket_of(vid))
            } else {
                f64::INFINITY
            };
        }

        // Serialized-chain cost: a fused chain's replica pair is ONE
        // thread running every member's per-tuple work back to back, so
        // the chain sustains the spout-output rate `p_chain` at which the
        // members' demands exactly fill the host thread:
        //
        //   Σ_member demand_factor(m) × T(m) × p_chain = mult × 1e9 × share
        //
        // (demand_factor = tuples a member handles per unit of aggregate
        // spout output). Every member's capacity becomes its own share of
        // `p_chain`, so the operator-pooled back-pressure pass below sees
        // the chain saturate as one unit instead of crediting each
        // fused-away operator a phantom executor.
        if let Some(f) = &fusion {
            let demand = |vid: VertexId| -> f64 {
                if graph.spec_of(vid).kind == OperatorKind::Spout {
                    out_factor[vid.0]
                } else {
                    in_factor[vid.0]
                }
            };
            for chain in f.chains() {
                let root_vs = graph.vertices_of(chain[0]);
                // Equal replication along a chain + one compress ratio
                // means every member splits into identical vertex groups.
                debug_assert!(chain
                    .iter()
                    .all(|&op| graph.vertices_of(op).len() == root_vs.len()));
                for (g, &root_v) in root_vs.iter().enumerate() {
                    let busy_per_p: f64 = chain
                        .iter()
                        .map(|&op| {
                            let v = graph.vertices_of(op)[g];
                            demand(v)
                                * (exec_ns[v.0]
                                    + overhead_ns[v.0]
                                    + state_ns[v.0]
                                    + tf_ns[v.0]
                                    + queue_ns[v.0])
                        })
                        .sum();
                    let budget_ns = graph.vertex(root_v).multiplicity as f64
                        * 1e9
                        * share_factor(placement.socket_of(root_v));
                    let p_chain = if busy_per_p > 0.0 {
                        budget_ns / busy_per_p
                    } else {
                        f64::INFINITY
                    };
                    for &op in &chain {
                        let v = graph.vertices_of(op)[g];
                        capacity[v.0] = if p_chain.is_finite() {
                            demand(v) * p_chain
                        } else {
                            f64::INFINITY
                        };
                    }
                }
            }
        }

        // ---- Pass 3: the sustainable spout output p*. ----
        // Pool capacity and demand per operator: shuffle/key-by routing is
        // work-conserving, so replicas of one operator share load.
        let mut op_capacity = vec![0.0f64; n_ops];
        let mut op_in_factor = vec![0.0f64; n_ops];
        let mut op_gen_capacity = vec![0.0f64; n_ops]; // spouts
        let mut op_gen_factor = vec![0.0f64; n_ops];
        for (vid, vertex) in graph.vertices() {
            let op = vertex.op.0;
            if graph.spec_of(vid).kind == OperatorKind::Spout {
                op_gen_capacity[op] += capacity[vid.0];
                op_gen_factor[op] += out_factor[vid.0];
            } else {
                op_capacity[op] += capacity[vid.0];
                op_in_factor[op] += in_factor[vid.0];
            }
        }
        // Spout-saturated demand: what the spouts would emit unthrottled.
        let mut p_sat = f64::INFINITY;
        for op in 0..n_ops {
            if op_gen_factor[op] > 0.0 {
                p_sat = p_sat.min(op_gen_capacity[op] / op_gen_factor[op]);
            }
        }
        if let Ingress::Rate(r) = self.ingress {
            p_sat = p_sat.min(r.max(0.0));
        }
        // Back-pressure: the slowest operator (capacity per unit of demand)
        // sets the steady state.
        let mut p_star = p_sat;
        for op in 0..n_ops {
            if op_in_factor[op] > BOTTLENECK_TOLERANCE && op_capacity[op].is_finite() {
                p_star = p_star.min(op_capacity[op] / op_in_factor[op]);
            }
        }
        if !p_star.is_finite() {
            p_star = 0.0;
        }

        // Over-supply pressure per operator against the saturated demand.
        let mut pressure = vec![0.0f64; n_ops];
        for op in 0..n_ops {
            if op_in_factor[op] > BOTTLENECK_TOLERANCE && op_capacity[op] > 0.0 {
                pressure[op] = op_in_factor[op] * p_sat / op_capacity[op];
            } else if op_gen_factor[op] > 0.0 {
                // A spout is "pressured" when external input outpaces it —
                // always true in the saturated regime handled by the scaler.
                pressure[op] = 0.0;
            }
        }

        // ---- Final rates. ----
        let mut rates = vec![
            VertexRates {
                input_rate: 0.0,
                capacity: 0.0,
                processed_rate: 0.0,
                output_rate: 0.0,
                exec_ns: 0.0,
                overhead_ns: 0.0,
                state_ns: 0.0,
                tf_ns: 0.0,
                queue_ns: 0.0,
                bottleneck: false,
            };
            nv
        ];
        let mut edge_rates = vec![0.0f64; graph.edge_count()];
        for (ei, f) in edge_factor.iter().enumerate() {
            edge_rates[ei] = f * p_star;
        }
        let mut throughput = 0.0;
        for (vid, vertex) in graph.vertices() {
            let spec = graph.spec_of(vid);
            let is_spout = spec.kind == OperatorKind::Spout;
            let input = in_factor[vid.0] * p_star;
            let processed = if is_spout {
                out_factor[vid.0] * p_star
            } else {
                input.min(capacity[vid.0])
            };
            let output = if spec.kind == OperatorKind::Sink {
                processed
            } else if is_spout {
                // Spout output across streams (selectivities applied).
                graph
                    .topology()
                    .outgoing_edges(vertex.op)
                    .map(|e| processed * spec.selectivity(None, &e.stream))
                    .sum()
            } else {
                out_factor[vid.0] * p_star
            };
            if spec.kind == OperatorKind::Sink {
                throughput += processed;
            }
            rates[vid.0] = VertexRates {
                input_rate: input,
                capacity: capacity[vid.0],
                processed_rate: processed,
                output_rate: output,
                exec_ns: exec_ns[vid.0],
                overhead_ns: overhead_ns[vid.0],
                state_ns: state_ns[vid.0],
                tf_ns: tf_ns[vid.0],
                queue_ns: queue_ns[vid.0],
                bottleneck: pressure[vertex.op.0] > 1.0 + BOTTLENECK_TOLERANCE,
            };
        }

        Evaluation {
            throughput,
            vertices: rates,
            edge_rates,
            operator_pressure: pressure,
        }
    }

    /// The bounding function of the B&B search: the throughput upper bound
    /// for any completion of `placement` (unplaced vertices collocated with
    /// all producers, their constraints relaxed).
    pub fn bound(&self, graph: &ExecutionGraph<'_>, placement: &Placement) -> f64 {
        self.evaluate(graph, placement).throughput
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_dag::{CostProfile, TopologyBuilder, DEFAULT_STREAM};
    use brisk_numa::MachineBuilder;

    /// 2-socket, 4-core machine with easy numbers: 1 GHz clock, local 50 ns,
    /// remote 200 ns.
    fn toy_machine() -> Machine {
        MachineBuilder::new("toy")
            .sockets(2)
            .tray_size(4)
            .cores_per_socket(4)
            .clock_ghz(1.0)
            .local_latency_ns(50.0)
            .one_hop_latency_ns(200.0)
            .max_hop_latency_ns(200.0)
            .local_bandwidth_gbps(100.0)
            .one_hop_bandwidth_gbps(50.0)
            .max_hop_bandwidth_gbps(50.0)
            .build()
    }

    /// spout(100cy) -> bolt(200cy) -> sink(50cy), 64-byte tuples.
    fn linear_topology() -> brisk_dag::LogicalTopology {
        let mut b = TopologyBuilder::new("lin");
        let s = b.add_spout("spout", CostProfile::new(100.0, 0.0, 64.0, 64.0));
        let x = b.add_bolt("bolt", CostProfile::new(200.0, 0.0, 64.0, 64.0));
        let k = b.add_sink("sink", CostProfile::new(50.0, 0.0, 64.0, 64.0));
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        b.build().expect("valid")
    }

    #[test]
    fn collocated_rates_match_hand_calculation() {
        let m = toy_machine();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let placement = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m).evaluate(&g, &placement);
        // Bolt capacity 5M gates the pipeline; back-pressure throttles the
        // 10M-capable spout down to 5M.
        let spout = &eval.vertices[0];
        assert!((spout.processed_rate - 5e6).abs() < 1.0);
        let bolt = &eval.vertices[1];
        assert!(bolt.bottleneck);
        assert!((bolt.capacity - 5e6).abs() < 1.0);
        assert!((bolt.processed_rate - 5e6).abs() < 1.0);
        // Sink: capacity 20M, sees 5M.
        let sink = &eval.vertices[2];
        assert!(!sink.bottleneck);
        assert!((sink.output_rate - 5e6).abs() < 1.0);
        assert!((eval.throughput - 5e6).abs() < 1.0);
        // Over-supply pressure of the bolt against the unthrottled spout:
        // 10M demand / 5M capacity = 2.
        let bn = eval.bottleneck_operators(&g);
        assert_eq!(bn.len(), 1);
        assert!((bn[0].1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn remote_placement_pays_fetch_cost() {
        let m = toy_machine();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let mut placement = Placement::all_on(g.vertex_count(), SocketId(0));
        // Move the bolt to socket 1: it now pays ceil(64/64)*200 = 200 ns per
        // tuple -> T = 400 ns -> capacity 2.5M.
        placement.place(brisk_dag::VertexId(1), SocketId(1));
        let eval = Evaluator::saturated(&m).evaluate(&g, &placement);
        let bolt = &eval.vertices[1];
        assert!((bolt.tf_ns - 200.0).abs() < 1e-9);
        assert!((bolt.capacity - 2.5e6).abs() < 1.0);
        assert!((eval.throughput - 2.5e6).abs() < 1.0);
    }

    #[test]
    fn never_remote_policy_ignores_distance() {
        let m = toy_machine();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let mut placement = Placement::all_on(g.vertex_count(), SocketId(0));
        placement.place(brisk_dag::VertexId(1), SocketId(1));
        let eval = Evaluator::saturated(&m)
            .with_policy(TfPolicy::NeverRemote)
            .evaluate(&g, &placement);
        assert_eq!(eval.vertices[1].tf_ns, 0.0);
        assert!((eval.throughput - 5e6).abs() < 1.0);
    }

    #[test]
    fn always_remote_policy_charges_even_when_collocated() {
        let m = toy_machine();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let placement = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m)
            .with_policy(TfPolicy::AlwaysRemote)
            .evaluate(&g, &placement);
        assert!((eval.vertices[1].tf_ns - 200.0).abs() < 1e-9);
    }

    #[test]
    fn fused_edges_drop_the_communication_term() {
        // The [1,1,1] collocated chain fuses end to end: with fusion
        // modelled, no edge pays a fetch cost even under the AlwaysRemote
        // ablation, because fused edges never cross a queue at all.
        let m = toy_machine();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let placement = Placement::all_on(g.vertex_count(), SocketId(0));
        let base = Evaluator::saturated(&m).with_policy(TfPolicy::AlwaysRemote);
        let unfused = base.evaluate(&g, &placement);
        let fused = base.with_fusion(true).evaluate(&g, &placement);
        assert!((unfused.vertices[1].tf_ns - 200.0).abs() < 1e-9);
        assert_eq!(fused.vertices[1].tf_ns, 0.0);
        assert_eq!(fused.vertices[2].tf_ns, 0.0);
        // Serialized chain (350 ns/tuple, 2.857M) still beats the bolt
        // paying the 200 ns always-remote fetch (400 ns, 2.5M).
        assert!(fused.throughput > unfused.throughput);
        // A replicated bolt breaks the chain: fusion must not drop the
        // fetch term on unfused (1:2) edges.
        let g2 = ExecutionGraph::new(&t, &[1, 2, 1], 1);
        let p2 = Placement::all_on(g2.vertex_count(), SocketId(0));
        let fused2 = base.with_fusion(true).evaluate(&g2, &p2);
        assert!(
            (fused2.vertices[1].tf_ns - 200.0).abs() < 1e-9,
            "unfused edge keeps paying AlwaysRemote"
        );
    }

    #[test]
    fn serialized_chain_replaces_the_per_operator_executor_credit() {
        // Golden regression for the serialized-chain cost: on a
        // dedicated-core host (4 cores, 3 replicas — no time-sharing), the
        // fully fused [1,1,1] chain is ONE thread running
        // 100 + 200 + 50 = 350 ns per tuple, so the prediction must be
        // exactly 1e9/350 ≈ 2.857M — NOT the 5M the bolt-gated pipeline
        // sustains when every operator is credited its own executor. If a
        // refactor re-introduces the per-operator credit, fused == unfused
        // and this fails loudly.
        let m = toy_machine();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let placement = Placement::all_on(g.vertex_count(), SocketId(0));
        let ev = Evaluator::saturated(&m);
        let unfused = ev.evaluate(&g, &placement);
        let fused = ev.with_fusion(true).evaluate(&g, &placement);
        assert!((unfused.throughput - 5e6).abs() < 1.0);
        let golden = 1e9 / 350.0;
        assert!(
            (fused.throughput - golden).abs() < 1.0,
            "serialized chain must predict {golden}, got {}",
            fused.throughput
        );
        assert!(
            fused.throughput <= unfused.throughput,
            "a fused prediction can never exceed the independent-executor one \
             on a dedicated-core host"
        );
        // Every chain member reports the same saturation point: capacity ==
        // its own demand share of p_chain.
        for v in 0..3 {
            assert!(
                (fused.vertices[v].capacity - golden).abs() < 1.0,
                "vertex {v} capacity {}",
                fused.vertices[v].capacity
            );
        }
        // No member is flagged over-supplied: the chain throttles itself.
        assert!(fused.bottlenecks().is_empty());
    }

    #[test]
    fn pairwise_fused_chain_serializes_per_replica_pair() {
        // s -> a (KeyBy) -> b (KeyBy), a key-preserving, replication
        // [1, 2, 2]: the a->b edge fuses pairwise, so each of the two
        // a-threads also runs b inline: pooled chain capacity
        // 2e9/(200+50) = 8M, gated by the spout at 10M -> p* = 8M.
        let m = toy_machine();
        let mut b = TopologyBuilder::new("pair");
        let s = b.add_spout("spout", CostProfile::new(100.0, 0.0, 64.0, 64.0));
        let a = b.add_bolt("a", CostProfile::new(200.0, 0.0, 64.0, 64.0));
        let x = b.add_bolt("x", CostProfile::new(50.0, 0.0, 64.0, 64.0));
        let k = b.add_sink("k", CostProfile::new(0.0, 0.0, 16.0, 16.0));
        b.connect(s, DEFAULT_STREAM, a, brisk_dag::Partitioning::KeyBy);
        b.connect(a, DEFAULT_STREAM, x, brisk_dag::Partitioning::KeyBy);
        b.connect_shuffle(x, k);
        b.set_key_preserving(a);
        let t = b.build().expect("valid");
        let g = ExecutionGraph::new(&t, &[1, 2, 2, 1], 1);
        let placement = Placement::all_on(g.vertex_count(), SocketId(0));
        let ev = Evaluator::saturated(&m);
        let unfused = ev.evaluate(&g, &placement);
        let fused = ev.with_fusion(true).evaluate(&g, &placement);
        // Unfused: 6 replica threads share the socket's 4 cores
        // (share 2/3), so the 10M spout/bolt balance lands at 6.67M.
        assert!((unfused.throughput - 1e7 * 4.0 / 6.0).abs() < 10.0);
        // Fused: x rides a's two threads (4 executors, no time-sharing);
        // each serialized a+x pair is 250 ns -> pooled 8M. Fusion *wins*
        // here precisely because the freed threads stop core-sharing.
        assert!(
            (fused.throughput - 8e6).abs() < 10.0,
            "{}",
            fused.throughput
        );
        let a_v = &fused.vertices[1];
        assert!((a_v.capacity - 4e6).abs() < 1.0, "per-pair share");
    }

    #[test]
    fn partial_placement_is_upper_bound() {
        let m = toy_machine();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let ev = Evaluator::saturated(&m);

        let mut partial = Placement::empty(g.vertex_count());
        partial.place(brisk_dag::VertexId(0), SocketId(0));
        let bound = ev.bound(&g, &partial);

        // Any completion of the placement must not beat the bound.
        for bolt_socket in 0..2 {
            for sink_socket in 0..2 {
                let mut full = partial.clone();
                full.place(brisk_dag::VertexId(1), SocketId(bolt_socket));
                full.place(brisk_dag::VertexId(2), SocketId(sink_socket));
                let got = ev.evaluate(&g, &full).throughput;
                assert!(
                    got <= bound + 1e-6,
                    "completion beat the bound: {got} > {bound}"
                );
            }
        }
    }

    #[test]
    fn tightened_bound_is_admissible_and_prunes_harder() {
        // [1,2,1]: both edges are 1:2 / 2:1, which no placement can fuse,
        // so the bounding evaluator charges them the crossing cost — the
        // bound drops strictly below the legacy zero-queue bound while
        // staying at or above every completion's fused-engine score.
        let m = toy_machine();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[1, 2, 1], 1);
        let ev = Evaluator::saturated(&m);
        let mut partial = Placement::empty(g.vertex_count());
        partial.place(brisk_dag::VertexId(0), SocketId(0));
        let legacy = ev.bound(&g, &partial);
        let tightened = ev.bounding().bound(&g, &partial);
        assert!(
            tightened < legacy,
            "never-fusable edges must be charged: {tightened} !< {legacy}"
        );
        for b1 in 0..2 {
            for b2 in 0..2 {
                for s in 0..2 {
                    let mut full = partial.clone();
                    full.place(brisk_dag::VertexId(1), SocketId(b1));
                    full.place(brisk_dag::VertexId(2), SocketId(b2));
                    full.place(brisk_dag::VertexId(3), SocketId(s));
                    let got = ev.fused_engine().evaluate(&g, &full).throughput;
                    assert!(
                        got <= tightened + 1e-6,
                        "completion beat the tightened bound: {got} > {tightened}"
                    );
                }
            }
        }
        // On a fully fusable chain the optimistic plan covers every edge,
        // so the tightened bound coincides with the legacy one.
        let g1 = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let empty = Placement::empty(g1.vertex_count());
        assert_eq!(ev.bounding().bound(&g1, &empty), ev.bound(&g1, &empty));
    }

    /// Like [`linear_topology`] but the bolt carries a state-access term
    /// (index probe + amortized eviction), as the join apps do.
    fn stateful_topology() -> brisk_dag::LogicalTopology {
        let mut b = TopologyBuilder::new("stateful");
        let s = b.add_spout("spout", CostProfile::new(100.0, 0.0, 64.0, 64.0));
        let x = b.add_bolt(
            "join",
            CostProfile::new(200.0, 0.0, 64.0, 64.0).with_state_access(100.0),
        );
        let k = b.add_sink("sink", CostProfile::new(50.0, 0.0, 64.0, 64.0));
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        b.build().expect("valid")
    }

    #[test]
    fn state_access_cost_gates_capacity() {
        // At 1 GHz the join bolt spends 200 ns executing + 100 ns probing
        // its window index per tuple: capacity 1e9/300 ≈ 3.33M, strictly
        // below the stateless variant's 5M, and the per-vertex breakdown
        // reports the state share separately.
        let m = toy_machine();
        let t = stateful_topology();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let placement = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m).evaluate(&g, &placement);
        let join = &eval.vertices[1];
        assert!((join.state_ns - 100.0).abs() < 1e-9);
        assert!((join.capacity - 1e9 / 300.0).abs() < 1.0);
        assert!((join.total_ns() - 300.0).abs() < 1e-9);
        let stateless = Evaluator::saturated(&m).evaluate(
            &ExecutionGraph::new(&linear_topology(), &[1, 1, 1], 1),
            &placement,
        );
        assert!(
            eval.throughput < stateless.throughput,
            "state access must cost throughput: {} !< {}",
            eval.throughput,
            stateless.throughput
        );
    }

    #[test]
    fn state_access_keeps_the_bound_admissible() {
        // The state term is placement-independent, so the B&B bound —
        // which relaxes only the placement-dependent fetch/queue terms —
        // must still dominate every completion's true score.
        let m = toy_machine();
        let t = stateful_topology();
        for replication in [[1usize, 1, 1], [1, 2, 1]] {
            let g = ExecutionGraph::new(&t, &replication, 1);
            let ev = Evaluator::saturated(&m);
            let mut partial = Placement::empty(g.vertex_count());
            partial.place(brisk_dag::VertexId(0), SocketId(0));
            let bound = ev.bounding().bound(&g, &partial);
            let nv = g.vertex_count();
            for assignment in 0..(1usize << (nv - 1)) {
                let mut full = partial.clone();
                for v in 1..nv {
                    full.place(
                        brisk_dag::VertexId(v),
                        SocketId((assignment >> (v - 1)) & 1),
                    );
                }
                let got = ev.fused_engine().evaluate(&g, &full).throughput;
                assert!(
                    got <= bound + 1e-6,
                    "completion beat the bound with state costs: {got} > {bound}"
                );
            }
        }
    }

    #[test]
    fn replication_removes_bottleneck() {
        let m = toy_machine();
        let t = linear_topology();
        // Two bolt replicas double bolt capacity to 10M = spout rate.
        let g = ExecutionGraph::new(&t, &[1, 2, 1], 1);
        let placement = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m).evaluate(&g, &placement);
        assert!((eval.throughput - 1e7).abs() < 10.0);
        let bn = eval.bottleneck_operators(&g);
        assert!(bn.is_empty(), "no operator should be over-supplied: {bn:?}");
    }

    #[test]
    fn side_branch_saturation_throttles_the_whole_pipeline() {
        // spout -> {fast_path -> sink, slow_branch -> sink}: in a bounded
        // queue system the saturated slow branch back-pressures the spout,
        // so the fast path cannot race ahead (the LR trap).
        let m = toy_machine();
        let mut b = TopologyBuilder::new("branch");
        let s = b.add_spout("s", CostProfile::new(100.0, 0.0, 16.0, 64.0));
        let fast = b.add_bolt("fast", CostProfile::new(100.0, 0.0, 16.0, 64.0));
        let slow = b.add_bolt("slow", CostProfile::new(1000.0, 0.0, 16.0, 64.0));
        let k = b.add_sink("k", CostProfile::new(10.0, 0.0, 16.0, 64.0));
        b.connect(s, DEFAULT_STREAM, fast, brisk_dag::Partitioning::Shuffle);
        b.connect(s, DEFAULT_STREAM, slow, brisk_dag::Partitioning::Shuffle);
        b.connect_shuffle(fast, k);
        b.connect_shuffle(slow, k);
        let t = b.build().expect("valid");
        let g = ExecutionGraph::new(&t, &[1, 1, 1, 1], 1);
        let placement = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m).evaluate(&g, &placement);
        // Slow branch capacity 1M gates everything: sink sees 2 x 1M.
        assert!((eval.throughput - 2e6).abs() < 10.0, "{}", eval.throughput);
        let slow_v = &eval.vertices[2];
        assert!(slow_v.bottleneck);
        let fast_v = &eval.vertices[1];
        assert!(!fast_v.bottleneck);
        assert!(
            (fast_v.processed_rate - 1e6).abs() < 1.0,
            "fast path throttled"
        );
    }

    #[test]
    fn finite_ingress_throttles_spout() {
        let m = toy_machine();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[1, 2, 1], 1);
        let placement = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m)
            .with_ingress(Ingress::Rate(1e6))
            .evaluate(&g, &placement);
        assert!((eval.throughput - 1e6).abs() < 1.0);
    }

    #[test]
    fn selectivity_multiplies_stream_rate() {
        let m = toy_machine();
        let mut b = TopologyBuilder::new("sel");
        let s = b.add_spout("spout", CostProfile::new(100.0, 0.0, 64.0, 64.0));
        let x = b.add_bolt("split", CostProfile::new(100.0, 0.0, 64.0, 64.0));
        let k = b.add_sink("sink", CostProfile::new(1.0, 0.0, 64.0, 64.0));
        b.connect_shuffle(s, x);
        b.connect(x, DEFAULT_STREAM, k, brisk_dag::Partitioning::Shuffle);
        b.set_selectivity(x, None, DEFAULT_STREAM, 10.0);
        let t = b.build().expect("valid");
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let placement = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m).evaluate(&g, &placement);
        // Splitter emits 10 words per sentence: sink sees 10x the split rate.
        let split = &eval.vertices[1];
        assert!((split.output_rate - split.processed_rate * 10.0).abs() < 1.0);
    }

    #[test]
    fn broadcast_duplicates_to_every_replica() {
        let m = toy_machine();
        let mut b = TopologyBuilder::new("bc");
        let s = b.add_spout("spout", CostProfile::new(100.0, 0.0, 64.0, 64.0));
        let k = b.add_sink("sink", CostProfile::new(10.0, 0.0, 64.0, 64.0));
        b.connect(s, DEFAULT_STREAM, k, brisk_dag::Partitioning::Broadcast);
        let t = b.build().expect("valid");
        let g = ExecutionGraph::new(&t, &[1, 3], 1);
        let placement = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m).evaluate(&g, &placement);
        let spout_rate = eval.vertices[0].processed_rate;
        let total_sink_in: f64 = (1..4).map(|i| eval.vertices[i].input_rate).sum();
        assert!((total_sink_in - 3.0 * spout_rate).abs() < 1.0);
    }

    #[test]
    fn multiplicity_scales_capacity() {
        let m = toy_machine();
        let t = linear_topology();
        let g1 = ExecutionGraph::new(&t, &[1, 4, 1], 1);
        let g2 = ExecutionGraph::new(&t, &[1, 4, 1], 4); // fused into one vertex
        let ev = Evaluator::saturated(&m);
        let e1 = ev.evaluate(&g1, &Placement::all_on(g1.vertex_count(), SocketId(0)));
        let e2 = ev.evaluate(&g2, &Placement::all_on(g2.vertex_count(), SocketId(0)));
        assert!((e1.throughput - e2.throughput).abs() < 1.0);
    }

    #[test]
    fn heterogeneous_replicas_pool_their_capacity() {
        // One bolt replica local, one remote: the pooled operator capacity
        // (not the slowest replica) gates throughput — work-conserving
        // shuffle lets the local replica absorb more load.
        let m = toy_machine();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[2, 2, 1], 1);
        let mut placement = Placement::all_on(g.vertex_count(), SocketId(0));
        placement.place(brisk_dag::VertexId(3), SocketId(1)); // one bolt remote
        let eval = Evaluator::saturated(&m).evaluate(&g, &placement);
        // Local bolt 5M + remote bolt 2.5M = 7.5M pooled.
        let pooled: f64 = eval.vertices[2].capacity + eval.vertices[3].capacity;
        assert!((pooled - 7.5e6).abs() < 1.0);
        // The sink fetches half its tuples from the remote bolt:
        // T = 50 + 0.5*200 = 150 ns -> capacity 6.67M, which binds.
        assert!(
            (eval.throughput - 1e9 / 150.0).abs() < 10.0,
            "{}",
            eval.throughput
        );
    }

    #[test]
    fn oversubscription_time_shares_cores() {
        let m = MachineBuilder::new("1core")
            .sockets(2)
            .cores_per_socket(1)
            .clock_ghz(1.0)
            .build();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        // All three replicas fight over a single core: aggregate processed
        // work cannot exceed one core's worth.
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let eval = Evaluator::saturated(&m).evaluate(&g, &p);
        let busy_ns: f64 = eval
            .vertices
            .iter()
            .map(|v| v.processed_rate * v.total_ns())
            .sum();
        assert!(busy_ns <= 1e9 * 1.01, "more than one core used: {busy_ns}");
        // Spreading over two sockets strictly helps.
        let mut spread = p.clone();
        spread.place(brisk_dag::VertexId(1), SocketId(1));
        let eval2 = Evaluator::saturated(&m).evaluate(&g, &spread);
        assert!(eval2.throughput > eval.throughput);
    }

    #[test]
    fn k_events_unit() {
        let m = toy_machine();
        let t = linear_topology();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let eval = Evaluator::saturated(&m)
            .evaluate(&g, &Placement::all_on(g.vertex_count(), SocketId(0)));
        assert!((eval.k_events_per_sec() - eval.throughput / 1e3).abs() < 1e-9);
    }
}
