//! Plan-level prediction: the model's answer to "what will this exact plan
//! do on this machine", in the shape measurements come in.
//!
//! [`Evaluator::evaluate`] speaks in execution-graph vertices; real engine
//! runs report per *operator* (a `RunReport` has one counter slot per
//! logical operator). [`predict_for_plan`] bridges the two: it evaluates a
//! complete [`ExecutionPlan`] and pools the per-vertex rates into
//! per-operator predictions, so a measured-vs-predicted harness can line up
//! the model's output rates against an engine's counters row by row instead
//! of comparing only the scalar throughput score.

use crate::evaluator::{Evaluation, Evaluator};
use brisk_dag::{ExecutionGraph, ExecutionPlan, LogicalTopology, OperatorKind};
use brisk_numa::Machine;

/// Modelled steady-state rates for one logical operator, pooled over all of
/// its replicas under a concrete plan.
#[derive(Debug, Clone)]
pub struct OperatorPrediction {
    /// Operator name (from the topology).
    pub name: String,
    /// Operator kind.
    pub kind: OperatorKind,
    /// Replicas the plan runs for this operator.
    pub replicas: usize,
    /// Arriving tuples/sec across all replicas (spouts: 0).
    pub input_rate: f64,
    /// Tuples/sec actually processed (spouts: generation rate).
    pub processed_rate: f64,
    /// Tuples/sec emitted across all output streams and replicas.
    pub output_rate: f64,
    /// Maximum input tuples/sec the operator could absorb under this
    /// placement (pooled replica capacity; infinite for zero-cost ops).
    pub capacity: f64,
    /// Whether the model flags this operator as the pipeline bottleneck.
    pub bottleneck: bool,
}

/// The model's full prediction for one execution plan.
#[derive(Debug, Clone)]
pub struct PlanPrediction {
    /// Application throughput `R = Σ_sink ro`, tuples/sec.
    pub throughput: f64,
    /// Per-operator rates, indexed by `OperatorId`.
    pub operators: Vec<OperatorPrediction>,
    /// The vertex-granular evaluation the pooled numbers come from.
    pub evaluation: Evaluation,
}

impl PlanPrediction {
    /// Predicted output rate of the operator named `name`, if present.
    pub fn output_rate_of(&self, name: &str) -> Option<f64> {
        self.operators
            .iter()
            .find(|o| o.name == name)
            .map(|o| o.output_rate)
    }

    /// Throughput in the paper's unit (k events/s).
    pub fn k_events_per_sec(&self) -> f64 {
        self.throughput / 1e3
    }
}

/// Evaluate `plan` for `topology` on `machine` under the standard
/// relative-location model with saturated ingress, returning per-operator
/// output rates rather than just the scalar score.
///
/// Fusion modelling is on, matching the engine's default: edges the
/// [`brisk_dag::FusionPlan`] collapses drop their Formula-2 communication
/// term. Under the relative-location policy this coincides with plain
/// collocation (fused edges are same-socket, so `Tf` was already zero) —
/// the distinction only shows under the fixed-capability ablation
/// policies. Known limit: the model still credits every fused-away
/// operator its own executor's compute capacity, while the engine runs a
/// fused chain serially on one thread — on hosts with a core per replica
/// this over-states chain capacity (see the ROADMAP item on chain
/// serialization); on the oversubscribed CI baseline the core-sharing
/// factor already dominates.
pub fn predict_for_plan(
    machine: &Machine,
    topology: &LogicalTopology,
    plan: &ExecutionPlan,
) -> PlanPrediction {
    let graph = ExecutionGraph::new(topology, &plan.replication, plan.compress_ratio);
    let evaluation = Evaluator::saturated(machine)
        .with_fusion(true)
        .evaluate(&graph, &plan.placement);
    let mut operators: Vec<OperatorPrediction> = topology
        .operators()
        .map(|(id, spec)| OperatorPrediction {
            name: spec.name.clone(),
            kind: spec.kind,
            replicas: plan.replication[id.0],
            input_rate: 0.0,
            processed_rate: 0.0,
            output_rate: 0.0,
            capacity: 0.0,
            bottleneck: false,
        })
        .collect();
    for (vid, vertex) in graph.vertices() {
        let rates = &evaluation.vertices[vid.0];
        let op = &mut operators[vertex.op.0];
        op.input_rate += rates.input_rate;
        op.processed_rate += rates.processed_rate;
        op.output_rate += rates.output_rate;
        op.capacity += rates.capacity;
        op.bottleneck |= rates.bottleneck;
    }
    PlanPrediction {
        throughput: evaluation.throughput,
        operators,
        evaluation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_dag::{CostProfile, Placement, TopologyBuilder};
    use brisk_numa::{MachineBuilder, SocketId};

    fn toy_machine() -> Machine {
        MachineBuilder::new("toy")
            .sockets(2)
            .cores_per_socket(4)
            .clock_ghz(1.0)
            .local_latency_ns(50.0)
            .one_hop_latency_ns(200.0)
            .max_hop_latency_ns(200.0)
            .build()
    }

    /// spout(100cy) -> bolt(200cy) -> sink(50cy), 64-byte tuples.
    fn linear_topology() -> LogicalTopology {
        let mut b = TopologyBuilder::new("lin");
        let s = b.add_spout("spout", CostProfile::new(100.0, 0.0, 64.0, 64.0));
        let x = b.add_bolt("bolt", CostProfile::new(200.0, 0.0, 64.0, 64.0));
        let k = b.add_sink("sink", CostProfile::new(50.0, 0.0, 64.0, 64.0));
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        b.build().expect("valid")
    }

    #[test]
    fn pools_vertex_rates_per_operator() {
        let m = toy_machine();
        let t = linear_topology();
        // Two bolt replicas, uncompressed: two bolt vertices pool into one
        // operator row whose capacity is the 10M sum.
        let plan = ExecutionPlan {
            replication: vec![1, 2, 1],
            compress_ratio: 1,
            placement: Placement::all_on(4, SocketId(0)),
        };
        let p = predict_for_plan(&m, &t, &plan);
        assert_eq!(p.operators.len(), 3);
        let bolt = &p.operators[1];
        assert_eq!(bolt.name, "bolt");
        assert_eq!(bolt.replicas, 2);
        assert!((bolt.capacity - 1e7).abs() < 10.0, "{}", bolt.capacity);
        // Spout at capacity 10M feeds both bolt replicas; everything flows
        // through to the sink.
        assert!((p.throughput - 1e7).abs() < 10.0, "{}", p.throughput);
        assert!((bolt.input_rate - 1e7).abs() < 10.0);
        assert!((p.output_rate_of("spout").expect("spout") - 1e7).abs() < 10.0);
        assert_eq!(p.output_rate_of("nope"), None);
        assert!((p.k_events_per_sec() - p.throughput / 1e3).abs() < 1e-9);
    }

    #[test]
    fn matches_scalar_evaluation() {
        let m = toy_machine();
        let t = linear_topology();
        let plan = ExecutionPlan {
            replication: vec![1, 1, 1],
            compress_ratio: 1,
            placement: Placement::all_on(3, SocketId(0)),
        };
        let p = predict_for_plan(&m, &t, &plan);
        let graph = ExecutionGraph::new(&t, &plan.replication, plan.compress_ratio);
        let eval = Evaluator::saturated(&m).evaluate(&graph, &plan.placement);
        assert_eq!(p.throughput, eval.throughput);
        // The bottleneck flag survives pooling (bolt gates this pipeline).
        assert!(p.operators[1].bottleneck);
        assert!(!p.operators[2].bottleneck);
    }
}
