//! Plan-level prediction: the model's answer to "what will this exact plan
//! do on this machine", in the shape measurements come in.
//!
//! [`Evaluator::evaluate`] speaks in execution-graph vertices; real engine
//! runs report per *operator* (a `RunReport` has one counter slot per
//! logical operator). [`predict_for_plan`] bridges the two: it evaluates a
//! complete [`ExecutionPlan`] and pools the per-vertex rates into
//! per-operator predictions, so a measured-vs-predicted harness can line up
//! the model's output rates against an engine's counters row by row instead
//! of comparing only the scalar throughput score.

use crate::evaluator::{Evaluation, Evaluator};
use brisk_dag::{ExecutionGraph, ExecutionPlan, LogicalTopology, OperatorKind};
use brisk_numa::Machine;

/// Modelled steady-state rates for one logical operator, pooled over all of
/// its replicas under a concrete plan.
#[derive(Debug, Clone)]
pub struct OperatorPrediction {
    /// Operator name (from the topology).
    pub name: String,
    /// Operator kind.
    pub kind: OperatorKind,
    /// Replicas the plan runs for this operator.
    pub replicas: usize,
    /// Arriving tuples/sec across all replicas (spouts: 0).
    pub input_rate: f64,
    /// Tuples/sec actually processed (spouts: generation rate).
    pub processed_rate: f64,
    /// Tuples/sec emitted across all output streams and replicas.
    pub output_rate: f64,
    /// Maximum input tuples/sec the operator could absorb under this
    /// placement (pooled replica capacity; infinite for zero-cost ops).
    pub capacity: f64,
    /// Whether the model flags this operator as the pipeline bottleneck.
    pub bottleneck: bool,
}

/// The model's full prediction for one execution plan.
#[derive(Debug, Clone)]
pub struct PlanPrediction {
    /// Application throughput `R = Σ_sink ro`, tuples/sec.
    pub throughput: f64,
    /// Per-operator rates, indexed by `OperatorId`.
    pub operators: Vec<OperatorPrediction>,
    /// The vertex-granular evaluation the pooled numbers come from.
    pub evaluation: Evaluation,
}

impl PlanPrediction {
    /// Predicted output rate of the operator named `name`, if present.
    pub fn output_rate_of(&self, name: &str) -> Option<f64> {
        self.operators
            .iter()
            .find(|o| o.name == name)
            .map(|o| o.output_rate)
    }

    /// Throughput in the paper's unit (k events/s).
    pub fn k_events_per_sec(&self) -> f64 {
        self.throughput / 1e3
    }
}

/// Evaluate `plan` for `topology` on `machine` under the standard
/// relative-location model with saturated ingress, returning per-operator
/// output rates rather than just the scalar score.
///
/// Fusion modelling is on, matching the engine's default: edges the
/// [`brisk_dag::FusionPlan`] collapses drop their Formula-2 communication
/// term, and each fused chain pays the **serialized-chain cost** — a
/// replica pair is one thread running every member's per-tuple time back
/// to back, so chain capacity is the reciprocal of the summed
/// demand-weighted times and fused-away replicas stop claiming cores.
/// Fused predictions therefore never exceed the independent-executor
/// prediction on a dedicated-core host (pinned by the model's golden
/// regression test), and can legitimately exceed it on an oversubscribed
/// socket, where the saved threads stop time-sharing.
///
/// The serialized-chain cost is scheduler-independent: under the
/// work-stealing core pool (`brisk_runtime::Scheduler::CorePool`) a fused
/// chain still executes inline inside its host's *task*, so chain members
/// remain serialized on one schedulable unit exactly as they are on one
/// thread — the pool changes how executors map to cores, never how many
/// executors a plan needs or what each sustains.
pub fn predict_for_plan(
    machine: &Machine,
    topology: &LogicalTopology,
    plan: &ExecutionPlan,
) -> PlanPrediction {
    let graph = ExecutionGraph::new(topology, &plan.replication, plan.compress_ratio);
    let evaluation = Evaluator::saturated(machine)
        .fused_engine()
        .evaluate(&graph, &plan.placement);
    let mut operators: Vec<OperatorPrediction> = topology
        .operators()
        .map(|(id, spec)| OperatorPrediction {
            name: spec.name.clone(),
            kind: spec.kind,
            replicas: plan.replication[id.0],
            input_rate: 0.0,
            processed_rate: 0.0,
            output_rate: 0.0,
            capacity: 0.0,
            bottleneck: false,
        })
        .collect();
    for (vid, vertex) in graph.vertices() {
        let rates = &evaluation.vertices[vid.0];
        let op = &mut operators[vertex.op.0];
        op.input_rate += rates.input_rate;
        op.processed_rate += rates.processed_rate;
        op.output_rate += rates.output_rate;
        op.capacity += rates.capacity;
        op.bottleneck |= rates.bottleneck;
    }
    PlanPrediction {
        throughput: evaluation.throughput,
        operators,
        evaluation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_dag::{CostProfile, Placement, TopologyBuilder};
    use brisk_numa::{MachineBuilder, SocketId};

    fn toy_machine() -> Machine {
        MachineBuilder::new("toy")
            .sockets(2)
            .cores_per_socket(4)
            .clock_ghz(1.0)
            .local_latency_ns(50.0)
            .one_hop_latency_ns(200.0)
            .max_hop_latency_ns(200.0)
            .build()
    }

    /// spout(100cy) -> bolt(200cy) -> sink(50cy), 64-byte tuples.
    fn linear_topology() -> LogicalTopology {
        let mut b = TopologyBuilder::new("lin");
        let s = b.add_spout("spout", CostProfile::new(100.0, 0.0, 64.0, 64.0));
        let x = b.add_bolt("bolt", CostProfile::new(200.0, 0.0, 64.0, 64.0));
        let k = b.add_sink("sink", CostProfile::new(50.0, 0.0, 64.0, 64.0));
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        b.build().expect("valid")
    }

    #[test]
    fn pools_vertex_rates_per_operator() {
        let m = toy_machine();
        let t = linear_topology();
        // Two bolt replicas, uncompressed: two bolt vertices pool into one
        // operator row. Each queued consumer pays the default per-tuple
        // crossing cost on top of its execution time (the engine objective
        // predict_for_plan reports), so a bolt replica handles
        // 200 + 25 = 225 ns/tuple -> pooled 2e9/225 ≈ 8.89M, which gates
        // the 10M spout.
        let plan = ExecutionPlan {
            replication: vec![1, 2, 1],
            compress_ratio: 1,
            placement: Placement::all_on(4, SocketId(0)),
        };
        let p = predict_for_plan(&m, &t, &plan);
        assert_eq!(p.operators.len(), 3);
        let bolt = &p.operators[1];
        assert_eq!(bolt.name, "bolt");
        assert_eq!(bolt.replicas, 2);
        let pooled = 2e9 / (200.0 + crate::evaluator::DEFAULT_QUEUE_OVERHEAD_NS);
        assert!((bolt.capacity - pooled).abs() < 10.0, "{}", bolt.capacity);
        assert!((p.throughput - pooled).abs() < 10.0, "{}", p.throughput);
        assert!((bolt.input_rate - pooled).abs() < 10.0);
        assert!((p.output_rate_of("spout").expect("spout") - pooled).abs() < 10.0);
        assert_eq!(p.output_rate_of("nope"), None);
        assert!((p.k_events_per_sec() - p.throughput / 1e3).abs() < 1e-9);
    }

    #[test]
    fn matches_scalar_evaluation() {
        let m = toy_machine();
        let t = linear_topology();
        // [1,3,1] keeps real queue edges (the replicated bolt blocks
        // fusion), so the prediction must coincide with the fused-engine
        // evaluation and the bottleneck flag must survive pooling: three
        // bolt replicas at 225 ns pool 13.3M, above the 10M spout.
        let plan = ExecutionPlan {
            replication: vec![1, 3, 1],
            compress_ratio: 1,
            placement: Placement::all_on(5, SocketId(0)),
        };
        let p = predict_for_plan(&m, &t, &plan);
        let graph = ExecutionGraph::new(&t, &plan.replication, plan.compress_ratio);
        let eval = Evaluator::saturated(&m)
            .fused_engine()
            .evaluate(&graph, &plan.placement);
        assert_eq!(p.throughput, eval.throughput);
        assert!(!p.operators[1].bottleneck, "3 bolt replicas keep pace");
        assert!(!p.operators[2].bottleneck);
    }

    #[test]
    fn fused_plans_predict_the_serialized_chain() {
        // [1,1,1] fuses end to end under the engine default, so the
        // plan-level prediction must match the fusion-aware evaluation
        // (serialized chain), not the per-operator-executor one.
        let m = toy_machine();
        let t = linear_topology();
        let plan = ExecutionPlan {
            replication: vec![1, 1, 1],
            compress_ratio: 1,
            placement: Placement::all_on(3, SocketId(0)),
        };
        let p = predict_for_plan(&m, &t, &plan);
        let graph = ExecutionGraph::new(&t, &plan.replication, plan.compress_ratio);
        let fused = Evaluator::saturated(&m)
            .fused_engine()
            .evaluate(&graph, &plan.placement);
        assert_eq!(p.throughput, fused.throughput);
        assert!((p.throughput - 1e9 / 350.0).abs() < 1.0, "{}", p.throughput);
        // The whole chain saturates together; nobody is over-supplied.
        assert!(p.operators.iter().all(|o| !o.bottleneck));
    }
}
