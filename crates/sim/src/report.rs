//! Simulation results: throughput, latency and time breakdowns.

use brisk_metrics::Histogram;

/// Accumulated statistics for one replica.
#[derive(Debug, Clone, Default)]
pub struct ReplicaStats {
    /// Operator index this replica belongs to.
    pub operator: usize,
    /// Socket the replica was pinned to.
    pub socket: usize,
    /// Input tuples processed (spouts: tuples generated).
    pub processed: u64,
    /// Time spent in operator function execution (`Te`), ns.
    pub exec_ns: u64,
    /// Time spent in engine overhead ("Others"), ns.
    pub overhead_ns: u64,
    /// Time spent stalled on remote fetches (`Tf` / RMA), ns.
    pub fetch_ns: u64,
    /// Time blocked on full downstream queues (back-pressure), ns.
    pub blocked_ns: u64,
    /// Time idle waiting for input, ns.
    pub waiting_ns: u64,
}

impl ReplicaStats {
    /// Average per-tuple processing time (execute + overhead + fetch), ns.
    pub fn avg_t_ns(&self) -> f64 {
        if self.processed == 0 {
            return 0.0;
        }
        (self.exec_ns + self.overhead_ns + self.fetch_ns) as f64 / self.processed as f64
    }

    /// Average per-tuple remote-fetch time, ns.
    pub fn avg_fetch_ns(&self) -> f64 {
        if self.processed == 0 {
            return 0.0;
        }
        self.fetch_ns as f64 / self.processed as f64
    }
}

/// Per-operator time breakdown (averaged over replicas), the Figure 8 data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorBreakdown {
    /// Average `Te` per tuple, ns.
    pub execute_ns: f64,
    /// Average "Others" per tuple, ns.
    pub others_ns: f64,
    /// Average RMA stall per tuple, ns.
    pub rma_ns: f64,
}

impl OperatorBreakdown {
    /// Total per-tuple time, ns.
    pub fn total_ns(&self) -> f64 {
        self.execute_ns + self.others_ns + self.rma_ns
    }
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual nanoseconds simulated after warm-up.
    pub measured_window_ns: u64,
    /// Tuples received by sink replicas inside the measured window.
    pub sink_events: u64,
    /// Events per second over the measured window.
    pub throughput: f64,
    /// End-to-end latency (spout generation → sink receipt), ns.
    pub latency_ns: Histogram,
    /// Per-replica statistics (indexed by global replica id).
    pub replicas: Vec<ReplicaStats>,
}

impl SimReport {
    /// Throughput in the paper's unit (k events/s).
    pub fn k_events_per_sec(&self) -> f64 {
        self.throughput / 1e3
    }

    /// Per-tuple time breakdown for one operator, averaged across its
    /// replicas (weighted by processed tuples).
    pub fn breakdown(&self, operator: usize) -> OperatorBreakdown {
        let mut processed = 0u64;
        let (mut exec, mut others, mut rma) = (0u64, 0u64, 0u64);
        for r in self.replicas.iter().filter(|r| r.operator == operator) {
            processed += r.processed;
            exec += r.exec_ns;
            others += r.overhead_ns;
            rma += r.fetch_ns;
        }
        if processed == 0 {
            return OperatorBreakdown {
                execute_ns: 0.0,
                others_ns: 0.0,
                rma_ns: 0.0,
            };
        }
        OperatorBreakdown {
            execute_ns: exec as f64 / processed as f64,
            others_ns: others as f64 / processed as f64,
            rma_ns: rma as f64 / processed as f64,
        }
    }

    /// Tuples processed by all replicas of `operator`.
    pub fn operator_processed(&self, operator: usize) -> u64 {
        self.replicas
            .iter()
            .filter(|r| r.operator == operator)
            .map(|r| r.processed)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_averages() {
        let r = ReplicaStats {
            operator: 0,
            socket: 0,
            processed: 100,
            exec_ns: 5000,
            overhead_ns: 1000,
            fetch_ns: 4000,
            blocked_ns: 0,
            waiting_ns: 0,
        };
        assert!((r.avg_t_ns() - 100.0).abs() < 1e-12);
        assert!((r.avg_fetch_ns() - 40.0).abs() < 1e-12);
        let empty = ReplicaStats::default();
        assert_eq!(empty.avg_t_ns(), 0.0);
    }

    #[test]
    fn breakdown_weights_by_processed() {
        let report = SimReport {
            measured_window_ns: 1_000_000,
            sink_events: 0,
            throughput: 0.0,
            latency_ns: Histogram::new(),
            replicas: vec![
                ReplicaStats {
                    operator: 1,
                    processed: 100,
                    exec_ns: 10_000,
                    ..Default::default()
                },
                ReplicaStats {
                    operator: 1,
                    processed: 300,
                    exec_ns: 60_000,
                    ..Default::default()
                },
                ReplicaStats {
                    operator: 2,
                    processed: 10,
                    exec_ns: 70,
                    ..Default::default()
                },
            ],
        };
        let b = report.breakdown(1);
        // (10000 + 60000) / (100 + 300) = 175.
        assert!((b.execute_ns - 175.0).abs() < 1e-12);
        assert_eq!(report.operator_processed(1), 400);
        let none = report.breakdown(5);
        assert_eq!(none.total_ns(), 0.0);
    }
}
