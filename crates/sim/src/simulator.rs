//! The discrete-event simulation core.
//!
//! Entities: **replicas** (one per operator replica, pinned to a core of its
//! placed socket), **cores** (round-robin run queues), **queues** (one
//! bounded FIFO of batches per consumer replica) and a global event heap of
//! service completions. A service is the processing of one batch (or, for
//! spouts, the generation of one): its duration charges execution, engine
//! overhead and — when the batch's producer lives on another socket — the
//! Formula 2 remote-fetch stall.

use crate::report::{ReplicaStats, SimReport};
use brisk_dag::{ExecutionGraph, FusionPlan, OperatorId, OperatorKind, Partitioning, Placement};
use brisk_metrics::Histogram;
use brisk_model::Ingress;
use brisk_numa::{Machine, SocketId, CACHE_LINE_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Tuples per batch (the jumbo-tuple size; 1 disables batching).
    pub batch_size: u32,
    /// Bound of each consumer input queue, in batches.
    pub queue_capacity: usize,
    /// Virtual time to simulate, ns.
    pub horizon_ns: u64,
    /// Virtual time before metrics start accumulating, ns.
    pub warmup_ns: u64,
    /// RNG seed (simulations are fully deterministic per seed).
    pub seed: u64,
    /// Lognormal sigma for service-time noise (Figure 3 dispersion).
    pub noise_sigma: f64,
    /// External ingress: saturated (capacity probing) or a fixed rate.
    pub ingress: Ingress,
    /// Extra per-batch dispatch cost, ns — models centralized scheduling
    /// (e.g. the StreamBox-style morsel dispatcher's lock).
    pub dispatch_overhead_ns: f64,
    /// Enable epoch-based bandwidth throttling (Eq. 4–5 dynamics).
    pub bandwidth_model: bool,
    /// Usable cores per socket (defaults to all; the Figure 11 core sweep
    /// restricts the last socket).
    pub usable_cores: Option<Vec<usize>>,
    /// Hardware-prefetcher discount on multi-line remote fetches: cache
    /// lines after the first cost `prefetch_factor` of a full `L(i,j)`.
    /// The analytical model keeps the full `ceil(N/S) * L` cost, so
    /// estimates exceed measurements for large tuples — exactly the
    /// Splitter effect the paper reports in Table 3.
    pub prefetch_factor: f64,
    /// Simulate operator-chain fusion (`EngineConfig::fusion` semantics):
    /// fused-away operators stop being simulation entities — their
    /// serialized per-tuple work folds into the chain host's service time,
    /// their external out-edges become ports of the host, and fused-away
    /// sinks count events at the host's completion. No queue, fetch stall
    /// or scheduling happens on fused edges. Off by default, preserving
    /// the legacy all-pipelined simulation; note that with fusion on,
    /// fused-away operators report no per-replica stats of their own.
    pub fusion: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            batch_size: 64,
            queue_capacity: 64,
            horizon_ns: 100_000_000, // 100 ms
            warmup_ns: 20_000_000,   // 20 ms
            seed: 0x5EED,
            noise_sigma: 0.08,
            ingress: Ingress::Saturated,
            dispatch_overhead_ns: 0.0,
            bandwidth_model: true,
            usable_cores: None,
            prefetch_factor: 0.6,
            fusion: false,
        }
    }
}

/// A batch of tuples in flight.
#[derive(Debug, Clone, Copy)]
struct Batch {
    tuples: u32,
    /// Earliest origination time among constituent tuples, ns.
    created_ns: u64,
    from_socket: u16,
    bytes_per_tuple: f32,
    /// Position of the logical edge this batch travels on within the
    /// consumer's input-edge list; selects the right per-stream selectivity
    /// at the consumer (Table 8 has per-(input, output) selectivities).
    in_slot: u16,
}

/// An outbound batch awaiting delivery. Shuffle/key-by deliveries pick the
/// first consumer (from the port's round-robin cursor) with queue space —
/// work-conserving routing, matching the model's proportional-service
/// assumption (Case 1). Broadcast/global deliveries have a fixed target.
#[derive(Debug, Clone, Copy)]
struct Pending {
    port: usize,
    batch: Batch,
    fixed_target: Option<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Ready,
    Running,
    WaitingInput,
    Blocked,
}

struct OutPort {
    /// Consumer replica ids this port can target.
    consumers: Vec<u32>,
    partitioning: Partitioning,
    /// Position of this port's logical edge within the consumer operator's
    /// input-edge list (stamped onto every shipped batch).
    consumer_slot: u16,
    cursor: usize,
    /// Fractional tuples accumulated towards the next batch.
    pending: f64,
    /// Earliest origination time folded into `pending`.
    earliest_ns: u64,
    /// Effective selectivity per *input logical edge index of the host*
    /// (position matches the in-slot stamped on arriving batches); for
    /// spouts a single wildcard entry. Under fusion this folds the whole
    /// chain's compounded per-stream selectivities from the host's input
    /// down to the emitting member's external edge.
    selectivity: Vec<f64>,
    /// Output bytes per tuple on this port (the emitting member's profile —
    /// differs from the host's own when the port belongs to a fused member).
    out_bytes: f64,
}

struct Replica {
    kind: OperatorKind,
    socket: u16,
    core: u32,
    state: State,
    state_since: u64,
    /// Input FIFO (bolts/sinks only).
    input: VecDeque<Batch>,
    /// Producers blocked on this replica's full queue.
    waiters: Vec<u32>,
    /// Outbound batches that could not be delivered (back-pressure).
    undelivered: Vec<Pending>,
    outs: Vec<OutPort>,
    /// Map logical-edge index -> position in `outs[_].selectivity`.
    in_edges: Vec<usize>,
    // Cost profile (ns at the machine clock).
    te_ns: f64,
    others_ns: f64,
    out_bytes: f64,
    mem_bytes: f64,
    // Serialized fused-chain work riding this host, per input slot (empty
    // when nothing fuses in): extra exec/overhead ns per input tuple, and
    // sink deliveries per input tuple when the chain swallowed a sink.
    inline_te: Vec<f64>,
    inline_oh: Vec<f64>,
    sink_mult: Vec<f64>,
    /// Fractional fused-sink deliveries carried to the next service.
    sink_pending: f64,
    // Current service bookkeeping.
    svc_batch: Option<Batch>,
    svc_exec_ns: u64,
    svc_overhead_ns: u64,
    svc_fetch_ns: u64,
    stats: ReplicaStats,
}

struct Core {
    run_queue: VecDeque<u32>,
    running: Option<u32>,
}

/// The configured simulator, ready to [`Simulator::run`].
pub struct Simulator<'a> {
    machine: &'a Machine,
    graph: &'a ExecutionGraph<'a>,
    placement: &'a Placement,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Build a simulator for `graph` placed by `placement` on `machine`.
    ///
    /// # Errors
    /// Fails when the placement is incomplete or no usable cores exist.
    pub fn new(
        machine: &'a Machine,
        graph: &'a ExecutionGraph<'a>,
        placement: &'a Placement,
        config: SimConfig,
    ) -> Result<Simulator<'a>, String> {
        if placement.len() != graph.vertex_count() {
            return Err("placement does not cover the graph".into());
        }
        if !placement.is_complete() {
            return Err("placement is incomplete".into());
        }
        if let Some(uc) = &config.usable_cores {
            if uc.len() != machine.sockets() {
                return Err("usable_cores must list every socket".into());
            }
            if uc.iter().any(|&c| c == 0 || c > machine.cores_per_socket()) {
                return Err("usable_cores out of range".into());
            }
        }
        if config.batch_size == 0 {
            return Err("batch size must be positive".into());
        }
        Ok(Simulator {
            machine,
            graph,
            placement,
            config,
        })
    }

    /// Execute the simulation and report.
    pub fn run(&self) -> SimReport {
        let mut world = World::build(self.machine, self.graph, self.placement, &self.config);
        world.run();
        world.into_report()
    }
}

struct BandwidthLedger {
    epoch_ns: u64,
    current_epoch: u64,
    /// bytes moved per (from, to) socket pair in the previous/current epoch.
    prev: Vec<f64>,
    cur: Vec<f64>,
    /// local traffic per socket.
    prev_local: Vec<f64>,
    cur_local: Vec<f64>,
    sockets: usize,
}

impl BandwidthLedger {
    fn new(sockets: usize) -> BandwidthLedger {
        BandwidthLedger {
            epoch_ns: 1_000_000,
            current_epoch: 0,
            prev: vec![0.0; sockets * sockets],
            cur: vec![0.0; sockets * sockets],
            prev_local: vec![0.0; sockets],
            cur_local: vec![0.0; sockets],
            sockets,
        }
    }

    fn roll(&mut self, now: u64) {
        let epoch = now / self.epoch_ns;
        if epoch != self.current_epoch {
            std::mem::swap(&mut self.prev, &mut self.cur);
            self.cur.iter_mut().for_each(|b| *b = 0.0);
            std::mem::swap(&mut self.prev_local, &mut self.cur_local);
            self.cur_local.iter_mut().for_each(|b| *b = 0.0);
            self.current_epoch = epoch;
        }
    }

    /// Record a cross-socket transfer; returns the throttle factor (>= 1)
    /// derived from the previous epoch's utilization of the link.
    fn remote(&mut self, now: u64, from: usize, to: usize, bytes: f64, capacity_bps: f64) -> f64 {
        self.roll(now);
        let idx = from * self.sockets + to;
        self.cur[idx] += bytes;
        let cap_per_epoch = capacity_bps * self.epoch_ns as f64 / 1e9;
        (self.prev[idx] / cap_per_epoch).max(1.0)
    }

    /// Record local memory traffic; returns the DRAM throttle factor.
    fn local(&mut self, now: u64, socket: usize, bytes: f64, capacity_bps: f64) -> f64 {
        self.roll(now);
        self.cur_local[socket] += bytes;
        let cap_per_epoch = capacity_bps * self.epoch_ns as f64 / 1e9;
        (self.prev_local[socket] / cap_per_epoch).max(1.0)
    }
}

struct World<'a> {
    machine: &'a Machine,
    config: &'a SimConfig,
    replicas: Vec<Replica>,
    cores: Vec<Core>,
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>, // (time, seq, core)
    seq: u64,
    rng: StdRng,
    ledger: BandwidthLedger,
    latency: Histogram,
    sink_events: u64,
    spout_pace_ns: f64,
    queue_capacity: usize,
}

impl<'a> World<'a> {
    fn build(
        machine: &'a Machine,
        graph: &ExecutionGraph<'_>,
        placement: &Placement,
        config: &'a SimConfig,
    ) -> World<'a> {
        let clock = machine.clock_hz();
        let topology = graph.topology();
        // Which edges collapse inline; fused-away operators spawn nothing.
        let fusion = config
            .fusion
            .then(|| FusionPlan::from_graph(graph, placement));
        let fused_away = |op: OperatorId| fusion.as_ref().is_some_and(|f| f.is_fused_away(op));
        let edge_fused = |lei: usize| fusion.as_ref().is_some_and(|f| f.is_edge_fused(lei));

        // Expand vertices into replicas; assign cores round-robin per socket.
        let usable: Vec<usize> = match &config.usable_cores {
            Some(uc) => uc.clone(),
            None => vec![machine.cores_per_socket(); machine.sockets()],
        };
        let core_base: Vec<usize> = {
            let mut acc = 0;
            let mut v = Vec::with_capacity(machine.sockets());
            for &u in usable.iter().take(machine.sockets()) {
                v.push(acc);
                acc += u;
            }
            v
        };
        let total_cores: usize = usable.iter().sum();
        let mut next_core_on_socket = vec![0usize; machine.sockets()];

        let mut replicas: Vec<Replica> = Vec::new();
        let mut replicas_of_op: Vec<Vec<u32>> = vec![Vec::new(); topology.operator_count()];
        for (op, spec) in topology.operators() {
            if fused_away(op) {
                continue; // rides its host's replicas
            }
            for &v in graph.vertices_of(op) {
                let socket = placement.socket_of(v).expect("complete placement");
                for _ in 0..graph.vertex(v).multiplicity {
                    let core_local = next_core_on_socket[socket.0] % usable[socket.0];
                    next_core_on_socket[socket.0] += 1;
                    let id = replicas.len() as u32;
                    replicas_of_op[op.0].push(id);
                    replicas.push(Replica {
                        kind: spec.kind,
                        socket: socket.0 as u16,
                        core: (core_base[socket.0] + core_local) as u32,
                        state: State::Ready,
                        state_since: 0,
                        input: VecDeque::new(),
                        waiters: Vec::new(),
                        undelivered: Vec::new(),
                        outs: Vec::new(),
                        in_edges: Vec::new(),
                        te_ns: spec.cost.exec_cycles / clock * 1e9,
                        others_ns: spec.cost.overhead_cycles / clock * 1e9,
                        out_bytes: spec.cost.output_bytes,
                        mem_bytes: spec.cost.mem_bytes_per_tuple,
                        inline_te: Vec::new(),
                        inline_oh: Vec::new(),
                        sink_mult: Vec::new(),
                        sink_pending: 0.0,
                        svc_batch: None,
                        svc_exec_ns: 0,
                        svc_overhead_ns: 0,
                        svc_fetch_ns: 0,
                        stats: ReplicaStats {
                            operator: op.0,
                            socket: socket.0,
                            ..Default::default()
                        },
                    });
                }
            }
        }

        // Wire output ports. Each simulated replica is a fusion-chain host
        // (trivially a chain of one when nothing fuses into it): the flow
        // of every chain member is propagated per *host input slot* along
        // fused edges, members' serialized work folds into the host's
        // inline vectors, and members' unfused out-edges become ports of
        // the host with compounded selectivities.
        let chain_of: std::collections::HashMap<usize, Vec<OperatorId>> = fusion
            .as_ref()
            .map(|f| f.chains().into_iter().map(|c| (c[0].0, c)).collect())
            .unwrap_or_default();
        for (op, spec) in topology.operators() {
            if fused_away(op) {
                continue;
            }
            let in_edge_indices: Vec<usize> = topology
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.to == op)
                .map(|(i, _)| i)
                .collect();
            let slots = if spec.kind == OperatorKind::Spout {
                1
            } else {
                in_edge_indices.len().max(1)
            };
            let chain = chain_of.get(&op.0).cloned().unwrap_or_else(|| vec![op]);
            // Members in topological order so producers resolve first.
            let order: Vec<OperatorId> = topology
                .topological_order()
                .iter()
                .copied()
                .filter(|o| chain.contains(o))
                .collect();
            // Per fused logical edge: tuples travelling on it per host
            // input tuple, by host input slot.
            let mut arr: std::collections::HashMap<usize, Vec<f64>> =
                std::collections::HashMap::new();
            // Unfused out-edges of chain members: (member, lei, flow/slot).
            let mut external: Vec<(OperatorId, usize, Vec<f64>)> = Vec::new();
            let mut inline_te = vec![0.0f64; slots];
            let mut inline_oh = vec![0.0f64; slots];
            let mut sink_mult = vec![0.0f64; slots];
            for &m in &order {
                let mspec = topology.operator(m);
                // (input stream, arrivals per host tuple by slot).
                let inputs: Vec<(Option<&str>, Vec<f64>)> = if m == op {
                    if spec.kind == OperatorKind::Spout {
                        vec![(None, vec![1.0])]
                    } else {
                        in_edge_indices
                            .iter()
                            .enumerate()
                            .map(|(s, &lei)| {
                                let mut v = vec![0.0; slots];
                                v[s] = 1.0;
                                (Some(topology.edges()[lei].stream.as_str()), v)
                            })
                            .collect()
                    }
                } else {
                    topology
                        .edges()
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.to == m)
                        .map(|(lei, e)| {
                            (
                                Some(e.stream.as_str()),
                                arr.get(&lei).cloned().unwrap_or_else(|| vec![0.0; slots]),
                            )
                        })
                        .collect()
                };
                if m != op {
                    for s in 0..slots {
                        let processed: f64 = inputs.iter().map(|(_, a)| a[s]).sum();
                        inline_te[s] += processed * mspec.cost.exec_cycles / clock * 1e9;
                        inline_oh[s] += processed * mspec.cost.overhead_cycles / clock * 1e9;
                        if mspec.kind == OperatorKind::Sink {
                            sink_mult[s] += processed;
                        }
                    }
                }
                for (lei, edge) in topology
                    .edges()
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.from == m)
                {
                    let flow: Vec<f64> = (0..slots)
                        .map(|s| {
                            inputs
                                .iter()
                                .map(|(st, a)| a[s] * mspec.selectivity(*st, &edge.stream))
                                .sum()
                        })
                        .collect();
                    if edge_fused(lei) {
                        arr.insert(lei, flow);
                    } else {
                        external.push((m, lei, flow));
                    }
                }
            }
            let fused_in = inline_te.iter().any(|&t| t > 0.0)
                || inline_oh.iter().any(|&t| t > 0.0)
                || sink_mult.iter().any(|&t| t > 0.0);
            for (local, &rid) in replicas_of_op[op.0].iter().enumerate() {
                let mut outs = Vec::with_capacity(external.len());
                for (member, lei, flow) in &external {
                    let edge = &topology.edges()[*lei];
                    let consumers: Vec<u32> = match edge.partitioning {
                        Partitioning::Global => {
                            vec![replicas_of_op[edge.to.0][0]]
                        }
                        // Local forwarding pins this producer replica to
                        // the index-aligned consumer replica — only at
                        // equal replica counts (a fused member shares the
                        // host's count by the chain invariant); otherwise
                        // the edge degrades to Shuffle's full list.
                        Partitioning::Forward
                            if replicas_of_op[edge.to.0].len() == replicas_of_op[op.0].len() =>
                        {
                            vec![replicas_of_op[edge.to.0][local]]
                        }
                        _ => replicas_of_op[edge.to.0].clone(),
                    };
                    let consumer_slot = topology
                        .edges()
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.to == edge.to)
                        .position(|(i, _)| i == *lei)
                        .unwrap_or(0) as u16;
                    outs.push(OutPort {
                        consumers,
                        partitioning: edge.partitioning,
                        consumer_slot,
                        cursor: (rid as usize) % usize::MAX,
                        pending: 0.0,
                        earliest_ns: u64::MAX,
                        selectivity: flow.clone(),
                        out_bytes: topology.operator(*member).cost.output_bytes,
                    });
                }
                let r = &mut replicas[rid as usize];
                r.outs = outs;
                r.in_edges = in_edge_indices.clone();
                if fused_in {
                    r.inline_te = inline_te.clone();
                    r.inline_oh = inline_oh.clone();
                    r.sink_mult = sink_mult.clone();
                }
            }
        }

        // Stagger shuffle cursors so producers do not all hit consumer 0.
        for r in replicas.iter_mut() {
            for o in r.outs.iter_mut() {
                if !o.consumers.is_empty() {
                    o.cursor %= o.consumers.len();
                }
            }
        }

        let cores = (0..total_cores)
            .map(|_| Core {
                run_queue: VecDeque::new(),
                running: None,
            })
            .collect();

        // Spout pacing under finite ingress.
        let n_spout_replicas: usize = topology
            .spouts()
            .iter()
            .map(|&s| replicas_of_op[s.0].len())
            .sum();
        let spout_pace_ns = match config.ingress {
            Ingress::Saturated => 0.0,
            Ingress::Rate(total) => {
                if total <= 0.0 || n_spout_replicas == 0 {
                    0.0
                } else {
                    let share = total / n_spout_replicas as f64;
                    config.batch_size as f64 * 1e9 / share
                }
            }
        };

        World {
            machine,
            config,
            replicas,
            cores,
            heap: BinaryHeap::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(config.seed),
            ledger: BandwidthLedger::new(machine.sockets()),
            latency: Histogram::new(),
            sink_events: 0,
            spout_pace_ns,
            queue_capacity: config.queue_capacity,
        }
    }

    fn noise(&mut self) -> f64 {
        let sigma = self.config.noise_sigma;
        if sigma <= 0.0 {
            return 1.0;
        }
        // Box-Muller; mean-corrected lognormal (E[factor] = 1).
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (sigma * z - sigma * sigma / 2.0).exp()
    }

    fn run(&mut self) {
        // Everyone starts ready; spouts will produce, bolts will park.
        for rid in 0..self.replicas.len() as u32 {
            let core = self.replicas[rid as usize].core;
            self.cores[core as usize].run_queue.push_back(rid);
        }
        for core in 0..self.cores.len() as u32 {
            self.kick(core, 0);
        }
        while let Some(Reverse((t, _, core))) = self.heap.pop() {
            if t >= self.config.horizon_ns {
                break;
            }
            self.finish_service(core, t);
            self.kick(core, t);
        }
    }

    /// Try to start a service on `core` at time `now`.
    fn kick(&mut self, core: u32, now: u64) {
        if self.cores[core as usize].running.is_some() {
            return;
        }
        while let Some(rid) = self.cores[core as usize].run_queue.pop_front() {
            // Reserve the core *before* computing the service: popping a
            // batch inside start_service can wake blocked producers, which
            // recursively kick cores — including this one. Without the
            // reservation two services could start on one core and the
            // second completion would find it idle.
            self.cores[core as usize].running = Some(rid);
            match self.start_service(rid, now) {
                Some(duration) => {
                    self.seq += 1;
                    self.heap
                        .push(Reverse((now + duration.max(1), self.seq, core)));
                    return;
                }
                None => {
                    self.cores[core as usize].running = None;
                    continue;
                }
            }
        }
    }

    fn set_state(&mut self, rid: u32, state: State, now: u64) {
        let r = &mut self.replicas[rid as usize];
        let elapsed = now.saturating_sub(r.state_since);
        if now >= self.config.warmup_ns {
            match r.state {
                State::Blocked => r.stats.blocked_ns += elapsed,
                State::WaitingInput => r.stats.waiting_ns += elapsed,
                _ => {}
            }
        }
        r.state = state;
        r.state_since = now;
    }

    /// Compute the duration of `rid`'s next service; `None` if it has no
    /// work (parks as WaitingInput).
    fn start_service(&mut self, rid: u32, now: u64) -> Option<u64> {
        let kind = self.replicas[rid as usize].kind;
        match kind {
            OperatorKind::Spout => {
                let noise = self.noise();
                let r = &mut self.replicas[rid as usize];
                let b = self.config.batch_size as f64;
                // Fused members run serialized inside this thread.
                let chain_te = r.te_ns + r.inline_te.first().copied().unwrap_or(0.0);
                let chain_oh = r.others_ns + r.inline_oh.first().copied().unwrap_or(0.0);
                let work = b * (chain_te + chain_oh) * noise + self.config.dispatch_overhead_ns;
                let dur = work.max(self.spout_pace_ns) as u64;
                r.svc_batch = Some(Batch {
                    tuples: self.config.batch_size,
                    created_ns: now,
                    from_socket: r.socket,
                    bytes_per_tuple: r.out_bytes as f32,
                    in_slot: 0,
                });
                r.svc_exec_ns = (b * chain_te * noise) as u64;
                r.svc_overhead_ns = dur.saturating_sub(r.svc_exec_ns);
                r.svc_fetch_ns = 0;
                self.set_state(rid, State::Running, now);
                Some(dur)
            }
            OperatorKind::Bolt | OperatorKind::Sink => {
                let batch = {
                    let r = &mut self.replicas[rid as usize];
                    match r.input.pop_front() {
                        Some(b) => b,
                        None => {
                            self.set_state(rid, State::WaitingInput, now);
                            return None;
                        }
                    }
                };
                // A slot opened: wake producers blocked on this queue.
                self.wake_waiters(rid, now);

                let noise = self.noise();
                let my_socket = self.replicas[rid as usize].socket as usize;
                let n = batch.tuples as f64;

                // Formula 2 fetch cost with optional bandwidth throttling.
                let mut fetch = 0.0;
                if batch.from_socket as usize != my_socket {
                    let full_lines = (batch.bytes_per_tuple as f64 / CACHE_LINE_BYTES as f64)
                        .ceil()
                        .max(1.0);
                    let lines = 1.0 + (full_lines - 1.0) * self.config.prefetch_factor;
                    let lat = self
                        .machine
                        .latency_ns(SocketId(batch.from_socket as usize), SocketId(my_socket));
                    let mut factor = 1.0;
                    if self.config.bandwidth_model {
                        let bytes = n * batch.bytes_per_tuple as f64;
                        factor = self.ledger.remote(
                            now,
                            batch.from_socket as usize,
                            my_socket,
                            bytes,
                            self.machine.remote_bandwidth(
                                SocketId(batch.from_socket as usize),
                                SocketId(my_socket),
                            ),
                        );
                    }
                    fetch = n * lines * lat * factor;
                }

                let mut local_factor = 1.0;
                if self.config.bandwidth_model {
                    let r = &self.replicas[rid as usize];
                    local_factor = self.ledger.local(
                        now,
                        my_socket,
                        n * r.mem_bytes,
                        self.machine.local_bandwidth(),
                    );
                }

                let r = &mut self.replicas[rid as usize];
                let slot = batch.in_slot as usize;
                let chain_te = r.te_ns + r.inline_te.get(slot).copied().unwrap_or(0.0);
                let chain_oh = r.others_ns + r.inline_oh.get(slot).copied().unwrap_or(0.0);
                let exec = n * chain_te * noise * local_factor;
                let overhead = n * chain_oh * noise + self.config.dispatch_overhead_ns;
                r.svc_batch = Some(batch);
                r.svc_exec_ns = exec as u64;
                r.svc_overhead_ns = overhead as u64;
                r.svc_fetch_ns = fetch as u64;
                self.set_state(rid, State::Running, now);
                Some((exec + overhead + fetch) as u64)
            }
        }
    }

    /// Service completed on `core`: account stats, emit outputs, decide the
    /// replica's next state.
    fn finish_service(&mut self, core: u32, now: u64) {
        let rid = self.cores[core as usize]
            .running
            .take()
            .expect("service end on idle core");
        let measured = now >= self.config.warmup_ns;
        let (batch, kind) = {
            let r = &mut self.replicas[rid as usize];
            let batch = r.svc_batch.take().expect("service had a batch");
            if measured {
                r.stats.processed += batch.tuples as u64;
                r.stats.exec_ns += r.svc_exec_ns;
                r.stats.overhead_ns += r.svc_overhead_ns;
                r.stats.fetch_ns += r.svc_fetch_ns;
            }
            (batch, r.kind)
        };

        if kind == OperatorKind::Sink {
            if measured {
                self.sink_events += batch.tuples as u64;
                self.latency.record_n(
                    now.saturating_sub(batch.created_ns) as f64,
                    batch.tuples as u64,
                );
            }
        } else {
            // A sink fused into this host delivers inline: count its share
            // of the batch here (fractional remainders carry over).
            if measured {
                let whole = {
                    let r = &mut self.replicas[rid as usize];
                    let mult = r
                        .sink_mult
                        .get(batch.in_slot as usize)
                        .copied()
                        .unwrap_or(0.0);
                    if mult > 0.0 {
                        r.sink_pending += batch.tuples as f64 * mult;
                        let whole = r.sink_pending as u64;
                        r.sink_pending -= whole as f64;
                        whole
                    } else {
                        0
                    }
                };
                if whole > 0 {
                    self.sink_events += whole;
                    self.latency
                        .record_n(now.saturating_sub(batch.created_ns) as f64, whole);
                }
            }
            self.accumulate_outputs(rid, &batch, kind, now);
        }

        // Deliver whatever is ready; decide next state.
        let fully_flushed = self.try_flush(rid, now);
        if !fully_flushed {
            self.set_state(rid, State::Blocked, now);
            return;
        }
        let has_work = {
            let r = &self.replicas[rid as usize];
            r.kind == OperatorKind::Spout || !r.input.is_empty()
        };
        if has_work {
            self.set_state(rid, State::Ready, now);
            let core = self.replicas[rid as usize].core;
            self.cores[core as usize].run_queue.push_back(rid);
        } else {
            self.set_state(rid, State::WaitingInput, now);
        }
    }

    /// Fold the consumed batch into each output port's pending counter and
    /// cut full batches.
    fn accumulate_outputs(&mut self, rid: u32, batch: &Batch, kind: OperatorKind, _now: u64) {
        let b = self.config.batch_size;
        let r = &mut self.replicas[rid as usize];
        let mut cut: Vec<(usize, Batch)> = Vec::new(); // (out port, batch)
        for (oi, port) in r.outs.iter_mut().enumerate() {
            // The batch knows which logical input edge it travelled on, so
            // the exact per-(input stream, output stream) selectivity of
            // Table 8 applies.
            let sel = if kind == OperatorKind::Spout {
                port.selectivity.first().copied().unwrap_or(1.0)
            } else {
                port.selectivity
                    .get(batch.in_slot as usize)
                    .copied()
                    .unwrap_or(1.0)
            };
            port.pending += batch.tuples as f64 * sel;
            port.earliest_ns = port.earliest_ns.min(batch.created_ns);
            while port.pending >= b as f64 {
                port.pending -= b as f64;
                cut.push((
                    oi,
                    Batch {
                        tuples: b,
                        created_ns: port.earliest_ns,
                        from_socket: r.socket,
                        bytes_per_tuple: port.out_bytes as f32,
                        in_slot: port.consumer_slot,
                    },
                ));
                if port.pending < b as f64 {
                    port.earliest_ns = u64::MAX;
                }
            }
        }
        // Route each cut batch: fixed targets for broadcast/global, deferred
        // (work-conserving) choice for shuffle/key-by.
        for (oi, out_batch) in cut {
            let pendings: Vec<Pending> = {
                let port = &self.replicas[rid as usize].outs[oi];
                match port.partitioning {
                    Partitioning::Shuffle | Partitioning::KeyBy => vec![Pending {
                        port: oi,
                        batch: out_batch,
                        fixed_target: None,
                    }],
                    // Degraded (unequal-count) Forward was wired with the
                    // full consumer list: defer like Shuffle.
                    Partitioning::Forward if port.consumers.len() > 1 => vec![Pending {
                        port: oi,
                        batch: out_batch,
                        fixed_target: None,
                    }],
                    Partitioning::Broadcast => port
                        .consumers
                        .iter()
                        .map(|&t| Pending {
                            port: oi,
                            batch: out_batch,
                            fixed_target: Some(t),
                        })
                        .collect(),
                    // Global and equal-count Forward both carry a single
                    // pre-resolved target (the funnel head / the
                    // index-aligned pair).
                    Partitioning::Global | Partitioning::Forward => vec![Pending {
                        port: oi,
                        batch: out_batch,
                        fixed_target: Some(port.consumers[0]),
                    }],
                }
            };
            self.replicas[rid as usize].undelivered.extend(pendings);
        }
    }

    /// Try to deliver all undelivered batches. Returns false when delivery
    /// stalls on full consumer queues (producer must block).
    fn try_flush(&mut self, rid: u32, now: u64) -> bool {
        loop {
            let Some(&pending) = self.replicas[rid as usize].undelivered.first() else {
                return true;
            };
            let target = match pending.fixed_target {
                Some(t) => {
                    if self.replicas[t as usize].input.len() >= self.queue_capacity {
                        if !self.replicas[t as usize].waiters.contains(&rid) {
                            self.replicas[t as usize].waiters.push(rid);
                        }
                        return false;
                    }
                    t
                }
                None => {
                    // Work-conserving shuffle: probe consumers from the
                    // round-robin cursor, take the first with space.
                    let (consumers, cursor) = {
                        let port = &self.replicas[rid as usize].outs[pending.port];
                        (port.consumers.clone(), port.cursor)
                    };
                    let n = consumers.len();
                    let mut chosen = None;
                    for off in 0..n {
                        let t = consumers[(cursor + off) % n];
                        if self.replicas[t as usize].input.len() < self.queue_capacity {
                            chosen = Some((t, (cursor + off + 1) % n));
                            break;
                        }
                    }
                    match chosen {
                        Some((t, next_cursor)) => {
                            self.replicas[rid as usize].outs[pending.port].cursor = next_cursor;
                            t
                        }
                        None => {
                            // Everything is full: wait on all consumers so
                            // any pop can resume us.
                            for &t in &consumers {
                                if !self.replicas[t as usize].waiters.contains(&rid) {
                                    self.replicas[t as usize].waiters.push(rid);
                                }
                            }
                            return false;
                        }
                    }
                }
            };
            self.replicas[target as usize]
                .input
                .push_back(pending.batch);
            self.replicas[rid as usize].undelivered.remove(0);
            // Wake the consumer if it was parked.
            if self.replicas[target as usize].state == State::WaitingInput {
                self.set_state(target, State::Ready, now);
                let core = self.replicas[target as usize].core;
                self.cores[core as usize].run_queue.push_back(target);
                self.kick(core, now);
            }
        }
    }

    /// A slot opened on `rid`'s input queue: give blocked producers another
    /// chance to flush.
    fn wake_waiters(&mut self, rid: u32, now: u64) {
        let waiters = std::mem::take(&mut self.replicas[rid as usize].waiters);
        for w in waiters {
            if self.replicas[w as usize].state != State::Blocked {
                continue;
            }
            if self.try_flush(w, now) {
                self.set_state(w, State::Ready, now);
                let core = self.replicas[w as usize].core;
                self.cores[core as usize].run_queue.push_back(w);
                self.kick(core, now);
            }
        }
    }

    fn into_report(self) -> SimReport {
        let window = self
            .config
            .horizon_ns
            .saturating_sub(self.config.warmup_ns)
            .max(1);
        SimReport {
            measured_window_ns: window,
            sink_events: self.sink_events,
            throughput: self.sink_events as f64 * 1e9 / window as f64,
            latency_ns: self.latency,
            replicas: self.replicas.into_iter().map(|r| r.stats).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_dag::{CostProfile, TopologyBuilder};
    use brisk_model::Evaluator;
    use brisk_numa::MachineBuilder;

    fn machine() -> Machine {
        MachineBuilder::new("sim")
            .sockets(2)
            .tray_size(4)
            .cores_per_socket(4)
            .clock_ghz(1.0)
            .local_latency_ns(50.0)
            .one_hop_latency_ns(200.0)
            .max_hop_latency_ns(200.0)
            .local_bandwidth_gbps(100.0)
            .one_hop_bandwidth_gbps(50.0)
            .max_hop_bandwidth_gbps(50.0)
            .build()
    }

    /// spout(100ns) -> bolt(200ns) -> sink(50ns), 64-byte tuples.
    fn linear() -> brisk_dag::LogicalTopology {
        let mut b = TopologyBuilder::new("lin");
        let s = b.add_spout("spout", CostProfile::new(100.0, 0.0, 16.0, 64.0));
        let x = b.add_bolt("bolt", CostProfile::new(200.0, 0.0, 16.0, 64.0));
        let k = b.add_sink("sink", CostProfile::new(50.0, 0.0, 16.0, 64.0));
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        b.build().expect("valid")
    }

    fn quiet_config() -> SimConfig {
        SimConfig {
            noise_sigma: 0.0,
            bandwidth_model: false,
            horizon_ns: 50_000_000,
            warmup_ns: 10_000_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn measured_throughput_tracks_model() {
        let m = machine();
        let t = linear();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let report = Simulator::new(&m, &g, &p, quiet_config())
            .expect("valid")
            .run();
        let model = Evaluator::saturated(&m).evaluate(&g, &p);
        // Bolt-bound at 5M tuples/s; simulation should land within 10%.
        let rel = (report.throughput - model.throughput).abs() / model.throughput;
        assert!(
            rel < 0.10,
            "sim {} vs model {} (rel {rel})",
            report.throughput,
            model.throughput
        );
    }

    #[test]
    fn remote_bolt_is_slower_than_local() {
        let m = machine();
        let t = linear();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let local = Placement::all_on(g.vertex_count(), SocketId(0));
        let mut remote = local.clone();
        remote.place(brisk_dag::VertexId(1), SocketId(1));
        let r_local = Simulator::new(&m, &g, &local, quiet_config())
            .expect("valid")
            .run();
        let r_remote = Simulator::new(&m, &g, &remote, quiet_config())
            .expect("valid")
            .run();
        assert!(
            r_remote.throughput < r_local.throughput * 0.8,
            "remote {} should trail local {}",
            r_remote.throughput,
            r_local.throughput
        );
        // And the bolt's measured per-tuple fetch time reflects Formula 2:
        // ceil(64/64) * 200 = 200 ns.
        let b = r_remote.breakdown(1);
        assert!((b.rma_ns - 200.0).abs() < 40.0, "rma={}", b.rma_ns);
        assert_eq!(r_local.breakdown(1).rma_ns, 0.0);
    }

    #[test]
    fn replication_scales_measured_throughput() {
        let m = machine();
        let t = linear();
        let g1 = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let p1 = Placement::all_on(g1.vertex_count(), SocketId(0));
        let r1 = Simulator::new(&m, &g1, &p1, quiet_config())
            .expect("valid")
            .run();
        let g2 = ExecutionGraph::new(&t, &[1, 2, 1], 1);
        let p2 = Placement::all_on(g2.vertex_count(), SocketId(0));
        let r2 = Simulator::new(&m, &g2, &p2, quiet_config())
            .expect("valid")
            .run();
        assert!(
            r2.throughput > r1.throughput * 1.5,
            "2 bolts {} should near-double 1 bolt {}",
            r2.throughput,
            r1.throughput
        );
    }

    #[test]
    fn finite_ingress_caps_throughput() {
        let m = machine();
        let t = linear();
        let g = ExecutionGraph::new(&t, &[1, 2, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let config = SimConfig {
            ingress: Ingress::Rate(1e6),
            ..quiet_config()
        };
        let report = Simulator::new(&m, &g, &p, config).expect("valid").run();
        let rel = (report.throughput - 1e6).abs() / 1e6;
        assert!(
            rel < 0.1,
            "throughput {} should track 1M/s",
            report.throughput
        );
    }

    #[test]
    fn latency_grows_when_bottlenecked() {
        // Saturated system: queues fill, so latency >> service time.
        let m = machine();
        let t = linear();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let report = Simulator::new(&m, &g, &p, quiet_config())
            .expect("valid")
            .run();
        assert!(report.latency_ns.count() > 0);
        // An under-provisioned pipeline accumulates queueing delay well
        // above the ~350 ns of pure service time.
        assert!(report.latency_ns.percentile(50.0) > 1000.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = machine();
        let t = linear();
        let g = ExecutionGraph::new(&t, &[1, 2, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let config = SimConfig {
            noise_sigma: 0.1,
            ..quiet_config()
        };
        let a = Simulator::new(&m, &g, &p, config.clone())
            .expect("valid")
            .run();
        let b = Simulator::new(&m, &g, &p, config).expect("valid").run();
        assert_eq!(a.sink_events, b.sink_events);
        assert_eq!(a.throughput, b.throughput);
    }

    #[test]
    fn selectivity_multiplies_events() {
        let m = machine();
        let mut b = TopologyBuilder::new("sel");
        let s = b.add_spout("s", CostProfile::new(1000.0, 0.0, 16.0, 64.0));
        let x = b.add_bolt("split", CostProfile::new(100.0, 0.0, 16.0, 64.0));
        let k = b.add_sink("k", CostProfile::new(10.0, 0.0, 16.0, 64.0));
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        b.set_selectivity(x, None, brisk_dag::DEFAULT_STREAM, 10.0);
        let t = b.build().expect("valid");
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let report = Simulator::new(&m, &g, &p, quiet_config())
            .expect("valid")
            .run();
        let spout_rate = report.operator_processed(0) as f64;
        let sink_rate = report.sink_events as f64;
        let ratio = sink_rate / spout_rate;
        assert!(
            (ratio - 10.0).abs() < 1.5,
            "sink/spout ratio {ratio} should approach the selectivity 10"
        );
    }

    #[test]
    fn fused_chain_matches_serialized_model() {
        // [1,1,1] collocated: the whole pipeline fuses into one executor
        // running 100 + 200 + 50 = 350 ns per tuple. The fusion-aware
        // model predicts exactly 1e9/350 ≈ 2.857M; the fused simulation
        // must land there — NOT at the 5M the pipelined (unfused) sim
        // sustains when the bolt alone gates.
        let m = machine();
        let t = linear();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let config = SimConfig {
            fusion: true,
            ..quiet_config()
        };
        let report = Simulator::new(&m, &g, &p, config).expect("valid").run();
        let model = Evaluator::saturated(&m).with_fusion(true).evaluate(&g, &p);
        let rel = (report.throughput - model.throughput).abs() / model.throughput;
        assert!(
            rel < 0.10,
            "fused sim {} vs fused model {} (rel {rel})",
            report.throughput,
            model.throughput
        );
        // And it trails the unfused (pipelined) simulation, as serialized
        // chains must.
        let unfused = Simulator::new(&m, &g, &p, quiet_config())
            .expect("valid")
            .run();
        assert!(report.throughput < unfused.throughput * 0.8);
        // The fused-away sink still counts events and records latency.
        assert!(report.sink_events > 0);
        assert!(report.latency_ns.count() > 0);
    }

    #[test]
    fn fused_chain_skips_the_remote_fetch() {
        // Everything on one socket fuses end to end, so even AlwaysRemote-
        // style cross-socket costs cannot appear: compare against a split
        // placement where the bolt sits remote and the chain breaks.
        let m = machine();
        let t = linear();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let local = Placement::all_on(g.vertex_count(), SocketId(0));
        let mut split = local.clone();
        split.place(brisk_dag::VertexId(1), SocketId(1));
        let config = SimConfig {
            fusion: true,
            ..quiet_config()
        };
        let fused = Simulator::new(&m, &g, &local, config.clone())
            .expect("valid")
            .run();
        let broken = Simulator::new(&m, &g, &split, config).expect("valid").run();
        // The split bolt keeps its own executor and pays Formula 2.
        assert!(broken.breakdown(1).rma_ns > 0.0);
        // The fused run has no bolt replica at all (it rides the spout).
        assert_eq!(fused.operator_processed(1), 0);
    }

    #[test]
    fn selectivity_compounds_through_a_fused_chain() {
        let m = machine();
        let mut b = TopologyBuilder::new("sel");
        let s = b.add_spout("s", CostProfile::new(1000.0, 0.0, 16.0, 64.0));
        let x = b.add_bolt("split", CostProfile::new(100.0, 0.0, 16.0, 64.0));
        let k = b.add_sink("k", CostProfile::new(10.0, 0.0, 16.0, 64.0));
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        b.set_selectivity(x, None, brisk_dag::DEFAULT_STREAM, 10.0);
        let t = b.build().expect("valid");
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let config = SimConfig {
            fusion: true,
            ..quiet_config()
        };
        let report = Simulator::new(&m, &g, &p, config).expect("valid").run();
        // The fused sink sees 10 deliveries per generated tuple.
        let ratio = report.sink_events as f64 / report.operator_processed(0) as f64;
        assert!(
            (ratio - 10.0).abs() < 0.5,
            "fused sink/spout ratio {ratio} should be the selectivity 10"
        );
    }

    #[test]
    fn replication_breaks_fusion_back_to_pipelining() {
        // [1,2,1]: no edge pairs 1:1, so the fused and unfused simulations
        // are the same world and must agree exactly (same seed).
        let m = machine();
        let t = linear();
        let g = ExecutionGraph::new(&t, &[1, 2, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let fused = Simulator::new(
            &m,
            &g,
            &p,
            SimConfig {
                fusion: true,
                ..quiet_config()
            },
        )
        .expect("valid")
        .run();
        let unfused = Simulator::new(&m, &g, &p, quiet_config())
            .expect("valid")
            .run();
        assert_eq!(fused.sink_events, unfused.sink_events);
        assert_eq!(fused.throughput, unfused.throughput);
    }

    #[test]
    fn rejects_incomplete_placement() {
        let m = machine();
        let t = linear();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let p = Placement::empty(g.vertex_count());
        assert!(Simulator::new(&m, &g, &p, quiet_config()).is_err());
    }

    #[test]
    fn usable_cores_validation() {
        let m = machine();
        let t = linear();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let bad = SimConfig {
            usable_cores: Some(vec![2]),
            ..quiet_config()
        };
        assert!(Simulator::new(&m, &g, &p, bad).is_err());
        let good = SimConfig {
            usable_cores: Some(vec![2, 2]),
            ..quiet_config()
        };
        assert!(Simulator::new(&m, &g, &p, good).is_ok());
    }

    #[test]
    fn oversubscribed_core_time_shares() {
        // Three replicas forced onto one core (usable_cores = 1): aggregate
        // throughput limited by one core's time budget.
        let m = machine();
        let t = linear();
        let g = ExecutionGraph::new(&t, &[1, 1, 1], 1);
        let p = Placement::all_on(g.vertex_count(), SocketId(0));
        let one_core = SimConfig {
            usable_cores: Some(vec![1, 4]),
            ..quiet_config()
        };
        let shared = Simulator::new(&m, &g, &p, one_core).expect("valid").run();
        let spread = Simulator::new(&m, &g, &p, quiet_config())
            .expect("valid")
            .run();
        assert!(
            shared.throughput < spread.throughput,
            "time sharing {} must trail dedicated cores {}",
            shared.throughput,
            spread.throughput
        );
    }
}
