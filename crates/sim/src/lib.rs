//! # brisk-sim
//!
//! A discrete-event simulator that *executes* streaming execution plans on a
//! virtual NUMA machine — the measurement substrate of this reproduction.
//!
//! The paper measures BriskStream on two real eight-socket servers. Those
//! machines are unavailable here, so every "measured" number in the
//! experiment harness comes from this simulator instead. It models the parts
//! of the system the analytical performance model abstracts away, which is
//! precisely why "measured vs estimated" comparisons (Tables 3 and 4) remain
//! meaningful:
//!
//! * **Core scheduling** — replicas are pinned to cores of their assigned
//!   socket; replicas sharing a core round-robin at batch granularity.
//! * **Queue dynamics and back-pressure** — bounded per-consumer queues;
//!   full queues block producers, and the blocking propagates upstream until
//!   the spout throttles (exactly the paper's footnote-2 mechanism).
//! * **Batch (jumbo tuple) granularity** — tuples move in batches; one queue
//!   operation ships a whole batch.
//! * **NUMA fetch costs** — a consumer pays `ceil(N/S) × L(i,j)` ns per
//!   tuple fetched from a producer on another socket (Formula 2), using the
//!   machine's latency matrix.
//! * **Stochastic service times** — lognormal noise around each operator's
//!   profiled cost (the dispersion Figure 3 shows for real operators).
//! * **Bandwidth saturation** — optional epoch-based ledgers throttle
//!   transfers when per-link traffic exceeds `Q(i,j)` or local traffic
//!   exceeds `B` (Eq. 4–5 made dynamic).
//!
//! Outputs: sink throughput, end-to-end latency histograms, and per-replica
//! time breakdowns (execute / overhead / remote-fetch) that regenerate the
//! paper's Figure 8.

pub mod report;
pub mod simulator;

pub use report::{OperatorBreakdown, ReplicaStats, SimReport};
pub use simulator::{SimConfig, Simulator};
