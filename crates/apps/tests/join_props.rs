//! Property tests for the sliding-window join index.
//!
//! Random two-sided tuple streams — random keys, random origin counts,
//! random cross-side and cross-origin interleavings — are replayed
//! through [`WindowJoin`] and checked against a naive `O(n²)` oracle
//! over the *same* fed tuples:
//!
//! * **Identical match sets** — the digest of emitted pairs equals the
//!   oracle digest (order-independent multiset equality), so eviction
//!   never dropped an in-window tuple before its last partner arrived.
//! * **No cross-boundary matches** — every emitted pair's timestamps
//!   satisfy `|tl − tr| < WINDOW_NS` strictly.
//! * **Eviction does evict** — the live index stays within the bound a
//!   correct watermark sweep implies, so the multiset equality above is
//!   not earned by never evicting at all.

use brisk_apps::stream_join::{
    pair_hash, JoinDigest, JoinSide, JoinTuple, JoinedPair, WindowJoin, EVICT_PERIOD, WINDOW_NS,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// One fed tuple: side, key, origin, and its event timestamp.
#[derive(Debug, Clone, Copy)]
struct Fed {
    side: JoinSide,
    key: u64,
    seq: u64,
    origin: u32,
    ts: u64,
}

/// Decode fuzzer integers into a valid stream: per-(side, origin) event
/// times are strictly increasing (the delivery-order invariant the real
/// spouts provide), everything else is adversarial.
fn decode(raw: &[(u8, u8, u8)], origins: [u32; 2]) -> Vec<Fed> {
    // Per (side, origin) running clock, advanced by 1..=32 ticks of 1000.
    let mut clocks = [
        vec![0u64; origins[0] as usize],
        vec![0u64; origins[1] as usize],
    ];
    let mut seqs = [0u64; 2];
    raw.iter()
        .map(|&(s, k, dt)| {
            let side_idx = (s % 2) as usize;
            let side = if side_idx == 0 {
                JoinSide::Left
            } else {
                JoinSide::Right
            };
            let origin = (s as u32 / 2) % origins[side_idx];
            let clock = &mut clocks[side_idx][origin as usize];
            *clock += 1_000 * (1 + (dt as u64 % 32));
            let seq = seqs[side_idx];
            seqs[side_idx] += 1;
            Fed {
                side,
                key: (k % 8) as u64,
                seq,
                origin,
                ts: *clock,
            }
        })
        .collect()
}

/// The naive oracle: every cross-side pair with equal keys and strictly
/// in-window timestamps, regardless of arrival order.
fn naive_digest(fed: &[Fed]) -> JoinDigest {
    let mut d = JoinDigest::default();
    for l in fed.iter().filter(|f| f.side == JoinSide::Left) {
        for r in fed.iter().filter(|f| f.side == JoinSide::Right) {
            if l.key == r.key && l.ts.abs_diff(r.ts) < WINDOW_NS {
                d.add(pair_hash(l.key, l.seq, r.seq));
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The window index reproduces the naive oracle's match multiset on
    /// any valid stream, emits no out-of-window pair, and keeps the live
    /// index bounded.
    #[test]
    fn window_join_matches_naive_oracle(
        raw in vec((0u8..=255, 0u8..=255, 0u8..=255), 1..400),
        lo in 1u32..3,
        ro in 1u32..3,
    ) {
        let origins = [lo, ro];
        let fed = decode(&raw, origins);
        let mut join = WindowJoin::new();
        let mut emitted = JoinDigest::default();
        let mut pairs: Vec<JoinedPair> = Vec::new();
        // Timestamp lookup for the boundary check.
        let ts_of = |side: JoinSide, seq: u64| {
            fed.iter()
                .find(|f| f.side == side && f.seq == seq)
                .expect("emitted pair references a fed tuple")
                .ts
        };
        for f in &fed {
            let t = JoinTuple {
                side: f.side,
                key: f.key,
                seq: f.seq,
                origin: f.origin,
                origins: origins[(f.side == JoinSide::Right) as usize],
            };
            pairs.clear();
            join.process(&t, f.ts, &mut pairs);
            for p in &pairs {
                // No matches across the window boundary, ever.
                let (tl, tr) = (ts_of(JoinSide::Left, p.left_seq), ts_of(JoinSide::Right, p.right_seq));
                prop_assert!(tl.abs_diff(tr) < WINDOW_NS, "out-of-window pair {p:?}");
                emitted.add(pair_hash(p.key, p.left_seq, p.right_seq));
            }
        }
        // Identical match multiset: nothing in-window was evicted early,
        // nothing was emitted twice or invented.
        prop_assert_eq!(emitted, naive_digest(&fed));
        prop_assert_eq!(join.digest(), emitted);
        // Eviction keeps the index bounded: entries older than a full
        // window beyond the opposite watermark survive at most one
        // amortization period plus the pre-watermark warmup per origin.
        let max_live = fed.len().min(
            EVICT_PERIOD as usize
                + (origins[0] + origins[1]) as usize * 2 * (WINDOW_NS as usize / 1_000),
        );
        prop_assert!(
            join.live_entries() <= max_live,
            "live {} > bound {}",
            join.live_entries(),
            max_live
        );
    }

    /// extract/install round-trips preserve the digest and the live rows
    /// under any split point mid-stream, and the restored index finishes
    /// the stream with the exact oracle multiset.
    #[test]
    fn state_handoff_mid_stream_is_lossless(
        raw in vec((0u8..=255, 0u8..=255, 0u8..=255), 2..300),
        cut_pct in 0u8..100,
    ) {
        let origins = [2u32, 2];
        let fed = decode(&raw, origins);
        let cut = fed.len() * cut_pct as usize / 100;
        let mut join = WindowJoin::new();
        let mut sink = Vec::new();
        let mut emitted = JoinDigest::default();
        for (i, f) in fed.iter().enumerate() {
            if i == cut {
                // Hand the whole index off through the wire format.
                let mut successor = WindowJoin::new();
                successor.install(join.extract());
                prop_assert_eq!(successor.digest(), join.digest());
                prop_assert_eq!(successor.live_entries(), join.live_entries());
                join = successor;
            }
            let t = JoinTuple {
                side: f.side,
                key: f.key,
                seq: f.seq,
                origin: f.origin,
                origins: 2,
            };
            sink.clear();
            join.process(&t, f.ts, &mut sink);
            for p in &sink {
                emitted.add(pair_hash(p.key, p.left_seq, p.right_seq));
            }
        }
        prop_assert_eq!(emitted, naive_digest(&fed));
    }
}
