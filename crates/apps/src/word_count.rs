//! Word Count (WC) — Figure 2 of the paper.
//!
//! `spout → parser → splitter → counter → sink`. The spout generates
//! sentences of ten random words; the parser drops invalid tuples
//! (selectivity 1 on this workload); the splitter emits each word as its own
//! tuple (selectivity 10); the counter maintains a keyed hashmap and emits
//! `(word, count)` per input word; the sink counts results.
//!
//! Cost calibration: the paper's Table 3 reports the measured local
//! per-tuple times on Server A — Splitter 1612.8 ns, Counter 612.3 ns — and
//! Figure 8 isolates small "Others" components under BriskStream; remaining
//! operators are set so that the RLAS-optimized 8-socket plan lands near the
//! paper's 96.4M events/s (Table 4).

use crate::generators::SentenceGenerator;
use crate::CALIBRATION_GHZ;
use brisk_dag::{CostProfile, LogicalTopology, Partitioning, TopologyBuilder, DEFAULT_STREAM};
use brisk_runtime::{
    AppRuntime, Collector, DynBolt, DynSpout, SpoutStatus, StateEntry, Tuple, TupleView,
};
use std::collections::HashMap;

/// Operator names, in pipeline order.
pub const OPERATORS: [&str; 5] = ["spout", "parser", "splitter", "counter", "sink"];

/// Words per generated sentence (the paper uses ten).
pub const WORDS_PER_SENTENCE: usize = 10;

/// The WC logical topology with calibrated cost profiles.
pub fn topology() -> LogicalTopology {
    let ghz = CALIBRATION_GHZ;
    let mut b = TopologyBuilder::new("word_count");
    // (exec ns, others ns, M bytes/tuple, N output bytes) at 1.2 GHz.
    let spout = b.add_spout(
        "spout",
        CostProfile::from_ns_at_ghz(450.0, 50.0, 160.0, 100.0, ghz),
    );
    let parser = b.add_bolt(
        "parser",
        CostProfile::from_ns_at_ghz(180.0, 40.0, 120.0, 100.0, ghz),
    );
    let splitter = b.add_bolt(
        "splitter",
        CostProfile::from_ns_at_ghz(1500.0, 112.8, 320.0, 32.0, ghz),
    );
    let counter = b.add_bolt(
        "counter",
        CostProfile::from_ns_at_ghz(550.0, 62.3, 96.0, 32.0, ghz),
    );
    let sink = b.add_sink(
        "sink",
        CostProfile::from_ns_at_ghz(40.0, 10.0, 32.0, 16.0, ghz),
    );
    b.connect_shuffle(spout, parser);
    b.connect_shuffle(parser, splitter);
    // The same word must reach the same counter: key partitioning.
    b.connect(splitter, DEFAULT_STREAM, counter, Partitioning::KeyBy);
    b.connect_shuffle(counter, sink);
    // Each sentence splits into ten words.
    b.set_selectivity(splitter, None, DEFAULT_STREAM, WORDS_PER_SENTENCE as f64);
    // The counter emits (word, count) under the word's own key — keyed
    // exactly like its input (the splitter's hash), so a downstream KeyBy
    // at equal counts would align. The parser forwards tuples verbatim.
    b.set_key_preserving(parser);
    b.set_key_preserving(counter);
    b.build().expect("WC topology is valid")
}

struct WcSpout {
    replica: u64,
    seed: u64,
    skew_shift: Option<(u64, f64)>,
    generator: SentenceGenerator,
    remaining: u64,
}

impl WcSpout {
    fn build_generator(seed: u64, skew_shift: Option<(u64, f64)>) -> SentenceGenerator {
        let g = SentenceGenerator::new(seed, 1000, WORDS_PER_SENTENCE);
        match skew_shift {
            Some((after, exponent)) => g.with_skew_shift(after, exponent),
            None => g,
        }
    }
}

impl DynSpout for WcSpout {
    fn next(&mut self, collector: &mut Collector) -> SpoutStatus {
        if self.remaining == 0 {
            return SpoutStatus::Exhausted;
        }
        self.remaining -= 1;
        let sentence = self.generator.next_sentence();
        let now = collector.now_ns();
        collector.send_default(sentence, now, 0);
        SpoutStatus::Emitted(1)
    }

    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        Some(vec![(
            self.replica,
            crate::spout_state::encode(self.seed, self.generator.produced(), self.remaining),
        )])
    }

    fn install_state(&mut self, entries: Vec<StateEntry>) {
        if let Some((seed, emitted, remaining)) = crate::spout_state::merge(&entries) {
            self.seed = seed;
            self.generator = Self::build_generator(seed, self.skew_shift);
            self.generator.skip_sentences(emitted);
            self.remaining = remaining;
        } else {
            // Empty hand-off: this replica got no share of the migrated
            // budget. Keeping the factory default would emit it twice.
            self.remaining = 0;
        }
    }
}

struct WcParser;

impl DynBolt for WcParser {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(sentence) = tuple.value::<String>() else {
            return;
        };
        // Drop invalid (empty) tuples; selectivity is 1 on this workload.
        if !sentence.is_empty() {
            collector.send_default(sentence.clone(), tuple.event_ns, tuple.key);
        }
    }
}

struct WcSplitter;

impl DynBolt for WcSplitter {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(sentence) = tuple.value::<String>() else {
            return;
        };
        for word in sentence.split(' ') {
            let key = Tuple::hash_key(word.as_bytes());
            collector.send_default(word.to_string(), tuple.event_ns, key);
        }
    }
}

struct WcCounter {
    counts: HashMap<String, u64>,
}

impl DynBolt for WcCounter {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(word) = tuple.value::<String>() else {
            return;
        };
        let count = self.counts.entry(word.clone()).or_insert(0);
        *count += 1;
        collector.send_default((word.clone(), *count), tuple.event_ns, tuple.key);
    }

    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        // One entry per word, keyed exactly like the splitter keys the
        // word's tuples, so redistribution lands each count on the replica
        // that will keep counting that word under the new plan.
        Some(
            self.counts
                .drain()
                .map(|(word, count)| {
                    let mut bytes = count.to_le_bytes().to_vec();
                    bytes.extend_from_slice(word.as_bytes());
                    (Tuple::hash_key(word.as_bytes()), bytes)
                })
                .collect(),
        )
    }

    fn install_state(&mut self, entries: Vec<StateEntry>) {
        for (_, bytes) in entries {
            if bytes.len() < 8 {
                continue;
            }
            let count = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
            let Ok(word) = std::str::from_utf8(&bytes[8..]) else {
                continue;
            };
            *self.counts.entry(word.to_string()).or_insert(0) += count;
        }
    }
}

struct WcSink;

impl DynBolt for WcSink {
    fn execute(&mut self, _tuple: &TupleView<'_>, _collector: &mut Collector) {}
}

/// The runnable WC application (threaded engine form), generating sentences
/// until stopped.
pub fn app() -> AppRuntime {
    app_sized(u64::MAX)
}

/// The runnable WC application with a deterministic input budget: the
/// spouts emit exactly `total_events` sentences in total (split across
/// replicas), then exhaust.
pub fn app_sized(total_events: u64) -> AppRuntime {
    app_sized_skewed(total_events, None)
}

/// [`app_sized`] with an optional mid-run key-skew shift: after each spout
/// replica has produced `after` sentences, its word distribution is rebuilt
/// with Zipf exponent `exponent` (the default is 1.0), moving the hot keys'
/// load between counter replicas — the drifting workload the elastic
/// runtime's skew-aware re-weighting reacts to.
pub fn app_sized_skewed(total_events: u64, skew_shift: Option<(u64, f64)>) -> AppRuntime {
    let t = topology();
    let ids: Vec<_> = OPERATORS
        .iter()
        .map(|n| t.find(n).expect("operator exists"))
        .collect();
    AppRuntime::new(t)
        .spout(ids[0], move |ctx| {
            let seed = 0x5747_u64 ^ ctx.replica as u64;
            WcSpout {
                replica: ctx.replica as u64,
                seed,
                skew_shift,
                generator: WcSpout::build_generator(seed, skew_shift),
                remaining: crate::replica_share(total_events, ctx.replica, ctx.replicas),
            }
        })
        .bolt(ids[1], |_| WcParser)
        .bolt(ids[2], |_| WcSplitter)
        .bolt(ids[3], |_| WcCounter {
            counts: HashMap::new(),
        })
        .sink(ids[4], |_| WcSink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shape() {
        let t = topology();
        assert_eq!(t.operator_count(), 5);
        let splitter = t.find("splitter").expect("exists");
        assert_eq!(
            t.operator(splitter).selectivity(None, DEFAULT_STREAM),
            WORDS_PER_SENTENCE as f64
        );
        // Splitter's local time matches Table 3: 1612.8 ns at 1.2 GHz.
        let total_ns =
            t.operator(splitter).cost.exec_ns(1.2e9) + t.operator(splitter).cost.overhead_ns(1.2e9);
        assert!((total_ns - 1612.8).abs() < 0.1);
        let counter = t.find("counter").expect("exists");
        let counter_ns =
            t.operator(counter).cost.exec_ns(1.2e9) + t.operator(counter).cost.overhead_ns(1.2e9);
        assert!((counter_ns - 612.3).abs() < 0.1);
    }

    #[test]
    fn counter_edge_is_keyed() {
        let t = topology();
        let splitter = t.find("splitter").expect("exists");
        let edge = t.outgoing_edges(splitter).next().expect("edge");
        assert_eq!(edge.partitioning, Partitioning::KeyBy);
    }

    #[test]
    fn app_validates() {
        assert!(app().validate().is_ok());
    }
}
