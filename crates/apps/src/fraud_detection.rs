//! Fraud Detection (FD) — Figure 18a of the paper.
//!
//! `spout → parser → predictor → sink`, every operator with selectivity 1:
//! "a signal is passed to Sink in the predictor operator of FD regardless of
//! whether detection is triggered" (Appendix B).
//!
//! The predictor scores each transaction against a per-account Markov model
//! of (category, amount-band) transitions — compute-heavy relative to WC's
//! operators, which is why FD's absolute throughput is an order of magnitude
//! below WC's (Table 4: 7.17M vs 96.4M events/s) and why its operators
//! tolerate remote placement worst (`Te >> Tf` never holds; the paper notes
//! FD avoids cross-tray placement entirely in optimized plans).

use crate::generators::{Transaction, TransactionGenerator};
use crate::CALIBRATION_GHZ;
use brisk_dag::{CostProfile, LogicalTopology, Partitioning, TopologyBuilder, DEFAULT_STREAM};
use brisk_runtime::{AppRuntime, Collector, DynBolt, DynSpout, SpoutStatus, StateEntry, TupleView};
use std::collections::HashMap;

/// Operator names, in pipeline order.
pub const OPERATORS: [&str; 4] = ["spout", "parser", "predictor", "sink"];

/// The FD logical topology with calibrated cost profiles.
pub fn topology() -> LogicalTopology {
    let ghz = CALIBRATION_GHZ;
    let mut b = TopologyBuilder::new("fraud_detection");
    let spout = b.add_spout(
        "spout",
        CostProfile::from_ns_at_ghz(420.0, 50.0, 300.0, 256.0, ghz),
    );
    let parser = b.add_bolt(
        "parser",
        CostProfile::from_ns_at_ghz(380.0, 45.0, 280.0, 256.0, ghz),
    );
    // The Markov-model scorer dominates: ~18 µs per transaction.
    let predictor = b.add_bolt(
        "predictor",
        CostProfile::from_ns_at_ghz(18_000.0, 150.0, 600.0, 64.0, ghz),
    );
    let sink = b.add_sink(
        "sink",
        CostProfile::from_ns_at_ghz(45.0, 10.0, 64.0, 16.0, ghz),
    );
    // The parser is a stateless filter, so which replica sees a
    // transaction is irrelevant: local forwarding pins spout replica i to
    // parser replica i, and at equal replica counts the pair fuses into
    // one executor (pairwise operator fusion) instead of crossing a queue.
    b.connect(spout, DEFAULT_STREAM, parser, Partitioning::Forward);
    // Per-account state: key partitioning on the account id. The parser
    // re-emits its input tuple verbatim, so it preserves the account key.
    b.connect(parser, DEFAULT_STREAM, predictor, Partitioning::KeyBy);
    b.connect_shuffle(predictor, sink);
    b.set_key_preserving(parser);
    b.build().expect("FD topology is valid")
}

struct FdSpout {
    replica: u64,
    seed: u64,
    emitted: u64,
    generator: TransactionGenerator,
    remaining: u64,
}

impl DynSpout for FdSpout {
    fn next(&mut self, collector: &mut Collector) -> SpoutStatus {
        if self.remaining == 0 {
            return SpoutStatus::Exhausted;
        }
        self.remaining -= 1;
        self.emitted += 1;
        let txn = self.generator.next_transaction();
        let key = txn.account as u64;
        let now = collector.now_ns();
        collector.send_default(txn, now, key);
        SpoutStatus::Emitted(1)
    }

    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        Some(vec![(
            self.replica,
            crate::spout_state::encode(self.seed, self.emitted, self.remaining),
        )])
    }

    fn install_state(&mut self, entries: Vec<StateEntry>) {
        if let Some((seed, emitted, remaining)) = crate::spout_state::merge(&entries) {
            self.seed = seed;
            self.emitted = emitted;
            self.generator = TransactionGenerator::new(seed, 4096);
            self.generator.skip_transactions(emitted);
            self.remaining = remaining;
        } else {
            // Empty hand-off: this replica got no share of the migrated
            // budget. Keeping the factory default would emit it twice.
            self.remaining = 0;
        }
    }
}

struct FdParser;

impl DynBolt for FdParser {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(txn) = tuple.value::<Transaction>() else {
            return;
        };
        if txn.amount > 0 {
            collector.send_default(*txn, tuple.event_ns, tuple.key);
        }
    }
}

/// Per-account Markov state: last (category, amount-band) state plus
/// observed transition counts.
type AccountHistory = (u16, HashMap<(u16, u16), u32>);

/// Markov-chain fraud scorer: tracks per-account transition frequencies
/// between (category, amount-band) states and flags improbable transitions.
struct FdPredictor {
    /// account -> (last state, transition counts).
    state: HashMap<u32, AccountHistory>,
}

/// Fraud verdict emitted per transaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FraudSignal {
    /// Scored account.
    pub account: u32,
    /// Probability-like score in `[0, 1]`; low = suspicious.
    pub score: f64,
    /// Whether the transition fell below the fraud threshold.
    pub flagged: bool,
}

const AMOUNT_BANDS: i64 = 8;

fn amount_band(amount: i64) -> u16 {
    // Logarithmic bands: 0 for <1000, growing by decade fractions.
    let mut band = 0i64;
    let mut threshold = 1_000i64;
    while amount >= threshold && band < AMOUNT_BANDS - 1 {
        band += 1;
        threshold *= 4;
    }
    band as u16
}

fn encode_state(category: u16, band: u16) -> u16 {
    category * AMOUNT_BANDS as u16 + band
}

impl DynBolt for FdPredictor {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(txn) = tuple.value::<Transaction>() else {
            return;
        };
        let new_state = encode_state(txn.category, amount_band(txn.amount));
        let (last, transitions) = self
            .state
            .entry(txn.account)
            .or_insert_with(|| (new_state, HashMap::new()));
        let seen = *transitions.entry((*last, new_state)).or_insert(0) + 1;
        transitions.insert((*last, new_state), seen);
        let total: u32 = transitions.values().sum();
        let score = seen as f64 / total as f64;
        *last = new_state;
        // A signal is emitted whether or not fraud triggered (selectivity 1).
        collector.send_default(
            FraudSignal {
                account: txn.account,
                score,
                flagged: score < 0.05 && total > 20,
            },
            tuple.event_ns,
            txn.account as u64,
        );
    }
}

struct FdSink;

impl DynBolt for FdSink {
    fn execute(&mut self, _tuple: &TupleView<'_>, _collector: &mut Collector) {}
}

/// The runnable FD application, generating transactions until stopped.
pub fn app() -> AppRuntime {
    app_sized(u64::MAX)
}

/// The runnable FD application with a deterministic input budget of
/// `total_events` transactions split across spout replicas.
pub fn app_sized(total_events: u64) -> AppRuntime {
    let t = topology();
    let ids: Vec<_> = OPERATORS
        .iter()
        .map(|n| t.find(n).expect("operator exists"))
        .collect();
    AppRuntime::new(t)
        .spout(ids[0], move |ctx| {
            let seed = 0xFD ^ ctx.replica as u64;
            FdSpout {
                replica: ctx.replica as u64,
                seed,
                emitted: 0,
                generator: TransactionGenerator::new(seed, 4096),
                remaining: crate::replica_share(total_events, ctx.replica, ctx.replicas),
            }
        })
        .bolt(ids[1], |_| FdParser)
        .bolt(ids[2], |_| FdPredictor {
            state: HashMap::new(),
        })
        .sink(ids[3], |_| FdSink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shape() {
        let t = topology();
        assert_eq!(t.operator_count(), 4);
        // All selectivities are 1 (no explicit rules set).
        for (_, spec) in t.operators() {
            assert!(spec.selectivity_rules().is_empty());
        }
    }

    #[test]
    fn amount_bands_are_monotone() {
        assert_eq!(amount_band(0), 0);
        assert!(amount_band(100_000) > amount_band(1_000));
        assert!(amount_band(i64::MAX) < AMOUNT_BANDS as u16);
    }

    #[test]
    fn predictor_flags_an_unusual_jump() {
        // Train 50 routine transitions, then score one huge category/amount
        // jump: the novel transition's frequency share must fall under the
        // 5% fraud threshold.
        let mut p = FdPredictor {
            state: HashMap::new(),
        };
        let score_one = |p: &mut FdPredictor, amount: i64, category: u16| -> (f64, u32) {
            let s = encode_state(category, amount_band(amount));
            let (last, tr) = p.state.entry(1).or_insert_with(|| (s, HashMap::new()));
            let seen = *tr.entry((*last, s)).or_insert(0) + 1;
            tr.insert((*last, s), seen);
            *last = s;
            let total: u32 = tr.values().sum();
            (seen as f64 / total as f64, total)
        };
        for _ in 0..50 {
            score_one(&mut p, 1500, 3);
        }
        let (score, total) = score_one(&mut p, 400_000, 31);
        assert!(score < 0.05 && total > 20, "score {score}, total {total}");
    }

    #[test]
    fn app_validates() {
        assert!(app().validate().is_ok());
    }
}
