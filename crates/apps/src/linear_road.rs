//! Linear Road (LR) — Figure 18c and Table 8 of the paper.
//!
//! The most complex benchmark topology: a dispatcher fans position reports
//! out to five analytics operators; accident detection, vehicle counts and
//! segment speed statistics all feed the toll notifier; two rare query
//! streams (account balance, daily expenditure) answer directly to the sink.
//!
//! Stream names and per-(input, output) selectivities follow Table 8:
//! position reports are ≈99% of the input, `detect_stream` has selectivity
//! ≈0 (accidents are rare), and `Toll_notify` emits one notification per
//! tuple on each of its four input streams (so the sink sees roughly three
//! tuples per position report: toll responses to positions, counts and
//! last-average-speed updates).

use crate::generators::{LrEvent, LrGenerator};
use crate::CALIBRATION_GHZ;
use brisk_dag::{CostProfile, LogicalTopology, Partitioning, TopologyBuilder, DEFAULT_STREAM};
use brisk_runtime::{AppRuntime, Collector, DynBolt, DynSpout, SpoutStatus, StateEntry, TupleView};
use std::collections::{HashMap, HashSet};

/// Output stream names (Table 8).
pub mod streams {
    /// Dispatcher → analytics operators: vehicle position reports.
    pub const POSITION: &str = "position_report";
    /// Dispatcher → account balance: balance queries.
    pub const BALANCE: &str = "balance_stream";
    /// Dispatcher → daily expenditure: expenditure queries.
    pub const DAILY: &str = "daliy_exp_request"; // (sic) — Table 8 spelling
    /// Average speed → last average speed.
    pub const AVG: &str = "avg_stream";
    /// Last average speed → toll notify.
    pub const LAS: &str = "las_stream";
    /// Accident detect → toll notify / accident notify.
    pub const DETECT: &str = "detect_stream";
    /// Count vehicles → toll notify.
    pub const COUNTS: &str = "counts_stream";
    /// Toll notify → sink.
    pub const TOLL: &str = "toll_nofity_stream"; // (sic) — Table 8 spelling
    /// Accident notify → sink.
    pub const NOTIFY: &str = "notify_stream";
}

/// Operator names.
pub const OPERATORS: [&str; 12] = [
    "spout",
    "parser",
    "dispatcher",
    "avg_speed",
    "las_avg_speed",
    "accident_detect",
    "count_vehicle",
    "accident_notify",
    "toll_notify",
    "daily_expen",
    "account_balance",
    "sink",
];

/// Fraction of input events that are position reports (Table 8: ≈0.99).
pub const POSITION_SELECTIVITY: f64 = 0.99;

/// The LR logical topology with calibrated cost profiles.
pub fn topology() -> LogicalTopology {
    let ghz = CALIBRATION_GHZ;
    let p = |exec: f64, others: f64, m: f64, n: f64| {
        CostProfile::from_ns_at_ghz(exec, others, m, n, ghz)
    };
    let mut b = TopologyBuilder::new("linear_road");
    let spout = b.add_spout("spout", p(500.0, 50.0, 160.0, 64.0));
    let parser = b.add_bolt("parser", p(400.0, 50.0, 128.0, 64.0));
    let dispatcher = b.add_bolt("dispatcher", p(850.0, 50.0, 128.0, 64.0));
    let avg_speed = b.add_bolt("avg_speed", p(6900.0, 100.0, 200.0, 32.0));
    let las_avg_speed = b.add_bolt("las_avg_speed", p(5400.0, 100.0, 160.0, 32.0));
    let accident_detect = b.add_bolt("accident_detect", p(5900.0, 100.0, 160.0, 32.0));
    let count_vehicle = b.add_bolt("count_vehicle", p(7400.0, 100.0, 260.0, 32.0));
    let accident_notify = b.add_bolt("accident_notify", p(3900.0, 100.0, 96.0, 32.0));
    let toll_notify = b.add_bolt("toll_notify", p(4900.0, 100.0, 160.0, 32.0));
    let daily_expen = b.add_bolt("daily_expen", p(2000.0, 80.0, 96.0, 32.0));
    let account_balance = b.add_bolt("account_balance", p(2000.0, 80.0, 96.0, 32.0));
    let sink = b.add_sink("sink", p(50.0, 10.0, 32.0, 16.0));

    b.connect_shuffle(spout, parser);
    b.connect_shuffle(parser, dispatcher);
    // Position reports fan out to the five analytics operators.
    b.connect(
        dispatcher,
        streams::POSITION,
        avg_speed,
        Partitioning::KeyBy,
    );
    b.connect(
        dispatcher,
        streams::POSITION,
        accident_detect,
        Partitioning::KeyBy,
    );
    b.connect(
        dispatcher,
        streams::POSITION,
        count_vehicle,
        Partitioning::KeyBy,
    );
    b.connect(
        dispatcher,
        streams::POSITION,
        accident_notify,
        Partitioning::KeyBy,
    );
    b.connect(
        dispatcher,
        streams::POSITION,
        toll_notify,
        Partitioning::KeyBy,
    );
    // Query streams.
    b.connect(
        dispatcher,
        streams::BALANCE,
        account_balance,
        Partitioning::KeyBy,
    );
    b.connect(dispatcher, streams::DAILY, daily_expen, Partitioning::KeyBy);
    // Analytics chains.
    b.connect(avg_speed, streams::AVG, las_avg_speed, Partitioning::KeyBy);
    b.connect(
        las_avg_speed,
        streams::LAS,
        toll_notify,
        Partitioning::KeyBy,
    );
    b.connect(
        accident_detect,
        streams::DETECT,
        toll_notify,
        Partitioning::KeyBy,
    );
    b.connect(
        accident_detect,
        streams::DETECT,
        accident_notify,
        Partitioning::KeyBy,
    );
    b.connect(
        count_vehicle,
        streams::COUNTS,
        toll_notify,
        Partitioning::KeyBy,
    );
    // Responses to the sink.
    b.connect(toll_notify, streams::TOLL, sink, Partitioning::Shuffle);
    b.connect(
        accident_notify,
        streams::NOTIFY,
        sink,
        Partitioning::Shuffle,
    );
    b.connect(daily_expen, DEFAULT_STREAM, sink, Partitioning::Shuffle);
    b.connect(account_balance, DEFAULT_STREAM, sink, Partitioning::Shuffle);

    // Table 8 selectivities.
    b.set_selectivity(dispatcher, None, streams::POSITION, POSITION_SELECTIVITY);
    b.set_selectivity(dispatcher, None, streams::BALANCE, 0.005);
    b.set_selectivity(dispatcher, None, streams::DAILY, 0.005);
    b.set_selectivity(avg_speed, Some(streams::POSITION), streams::AVG, 1.0);
    b.set_selectivity(las_avg_speed, Some(streams::AVG), streams::LAS, 1.0);
    b.set_selectivity(
        accident_detect,
        Some(streams::POSITION),
        streams::DETECT,
        0.0,
    );
    b.set_selectivity(count_vehicle, Some(streams::POSITION), streams::COUNTS, 1.0);
    b.set_selectivity(accident_notify, Some(streams::DETECT), streams::NOTIFY, 0.0);
    b.set_selectivity(
        accident_notify,
        Some(streams::POSITION),
        streams::NOTIFY,
        0.0,
    );
    b.set_selectivity(toll_notify, Some(streams::DETECT), streams::TOLL, 0.0);
    b.set_selectivity(toll_notify, Some(streams::POSITION), streams::TOLL, 1.0);
    b.set_selectivity(toll_notify, Some(streams::COUNTS), streams::TOLL, 1.0);
    b.set_selectivity(toll_notify, Some(streams::LAS), streams::TOLL, 1.0);
    b.set_selectivity(daily_expen, Some(streams::DAILY), DEFAULT_STREAM, 1.0);
    b.set_selectivity(account_balance, Some(streams::BALANCE), DEFAULT_STREAM, 1.0);

    b.build().expect("LR topology is valid")
}

// ---- runtime payload types -------------------------------------------------

/// A parsed position report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionReport {
    /// Vehicle id.
    pub vehicle: u32,
    /// Speed, mph.
    pub speed: u16,
    /// Expressway segment.
    pub segment: u16,
    /// Lane.
    pub lane: u8,
}

/// Average speed of a segment (`avg_stream` / `las_stream` payload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentSpeed {
    /// Segment.
    pub segment: u16,
    /// Miles per hour.
    pub mph: f64,
}

/// Vehicles seen in a segment (`counts_stream` payload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentCount {
    /// Segment.
    pub segment: u16,
    /// Distinct vehicles observed.
    pub vehicles: u32,
}

/// An accident alert (`detect_stream` payload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccidentAlert {
    /// Segment of the accident.
    pub segment: u16,
    /// Stopped vehicle.
    pub vehicle: u32,
}

/// A toll charge (`toll_nofity_stream` payload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TollNotification {
    /// Vehicle charged (0 for statistics-triggered updates).
    pub vehicle: u32,
    /// Toll in cents.
    pub toll: u32,
}

// ---- operators -------------------------------------------------------------

struct LrSpout {
    replica: u64,
    seed: u64,
    emitted: u64,
    generator: LrGenerator,
    remaining: u64,
}

impl DynSpout for LrSpout {
    fn next(&mut self, collector: &mut Collector) -> SpoutStatus {
        if self.remaining == 0 {
            return SpoutStatus::Exhausted;
        }
        self.remaining -= 1;
        self.emitted += 1;
        let event = self.generator.next_event();
        let now = collector.now_ns();
        let key = match event {
            LrEvent::Position { vehicle, .. }
            | LrEvent::AccountBalance { vehicle }
            | LrEvent::DailyExpenditure { vehicle } => vehicle as u64,
        };
        collector.send_default(event, now, key);
        SpoutStatus::Emitted(1)
    }

    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        Some(vec![(
            self.replica,
            crate::spout_state::encode(self.seed, self.emitted, self.remaining),
        )])
    }

    fn install_state(&mut self, entries: Vec<StateEntry>) {
        if let Some((seed, emitted, remaining)) = crate::spout_state::merge(&entries) {
            self.seed = seed;
            self.emitted = emitted;
            self.generator = LrGenerator::new(seed, 10_000);
            self.generator.skip_events(emitted);
            self.remaining = remaining;
        } else {
            // Empty hand-off: this replica got no share of the migrated
            // budget. Keeping the factory default would emit it twice.
            self.remaining = 0;
        }
    }
}

struct LrParser;

impl DynBolt for LrParser {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        if let Some(event) = tuple.value::<LrEvent>() {
            collector.send_default(*event, tuple.event_ns, tuple.key);
        }
    }
}

struct LrDispatcher;

impl DynBolt for LrDispatcher {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(event) = tuple.value::<LrEvent>() else {
            return;
        };
        match *event {
            LrEvent::Position {
                vehicle,
                speed,
                segment,
                lane,
            } => collector.send(
                streams::POSITION,
                PositionReport {
                    vehicle,
                    speed,
                    segment,
                    lane,
                },
                tuple.event_ns,
                segment as u64,
            ),
            LrEvent::AccountBalance { vehicle } => {
                collector.send(streams::BALANCE, vehicle, tuple.event_ns, vehicle as u64)
            }
            LrEvent::DailyExpenditure { vehicle } => {
                collector.send(streams::DAILY, vehicle, tuple.event_ns, vehicle as u64)
            }
        }
    }
}

struct LrAvgSpeed {
    // segment -> (speed sum, samples) over a tumbling window.
    acc: HashMap<u16, (f64, u64)>,
}

impl DynBolt for LrAvgSpeed {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(p) = tuple.value::<PositionReport>() else {
            return;
        };
        let e = self.acc.entry(p.segment).or_insert((0.0, 0));
        e.0 += p.speed as f64;
        e.1 += 1;
        collector.send(
            streams::AVG,
            SegmentSpeed {
                segment: p.segment,
                mph: e.0 / e.1 as f64,
            },
            tuple.event_ns,
            p.segment as u64,
        );
    }
}

struct LrLastAvgSpeed {
    last: HashMap<u16, f64>,
}

impl DynBolt for LrLastAvgSpeed {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(s) = tuple.value::<SegmentSpeed>() else {
            return;
        };
        // Exponentially-weighted last average (stands in for the LR
        // benchmark's 5-minute window).
        let prev = self.last.get(&s.segment).copied().unwrap_or(s.mph);
        let smoothed = 0.75 * prev + 0.25 * s.mph;
        self.last.insert(s.segment, smoothed);
        collector.send(
            streams::LAS,
            SegmentSpeed {
                segment: s.segment,
                mph: smoothed,
            },
            tuple.event_ns,
            s.segment as u64,
        );
    }
}

struct LrAccidentDetect {
    // vehicle -> (segment, consecutive zero-speed reports).
    stopped: HashMap<u32, (u16, u8)>,
}

impl DynBolt for LrAccidentDetect {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(p) = tuple.value::<PositionReport>() else {
            return;
        };
        if p.speed == 0 {
            let e = self.stopped.entry(p.vehicle).or_insert((p.segment, 0));
            if e.0 == p.segment {
                e.1 = e.1.saturating_add(1);
                // Four consecutive stopped reports in one segment = accident
                // (the LR benchmark's rule).
                if e.1 == 4 {
                    collector.send(
                        streams::DETECT,
                        AccidentAlert {
                            segment: p.segment,
                            vehicle: p.vehicle,
                        },
                        tuple.event_ns,
                        p.segment as u64,
                    );
                }
            } else {
                *e = (p.segment, 1);
            }
        } else {
            self.stopped.remove(&p.vehicle);
        }
    }
}

struct LrCountVehicle {
    seen: HashMap<u16, HashSet<u32>>,
}

impl DynBolt for LrCountVehicle {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(p) = tuple.value::<PositionReport>() else {
            return;
        };
        let set = self.seen.entry(p.segment).or_default();
        set.insert(p.vehicle);
        collector.send(
            streams::COUNTS,
            SegmentCount {
                segment: p.segment,
                vehicles: set.len() as u32,
            },
            tuple.event_ns,
            p.segment as u64,
        );
    }
}

struct LrAccidentNotify {
    accident_segments: HashSet<u16>,
}

impl DynBolt for LrAccidentNotify {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        if let Some(a) = tuple.value::<AccidentAlert>() {
            self.accident_segments.insert(a.segment);
            return;
        }
        if let Some(p) = tuple.value::<PositionReport>() {
            // Notify vehicles entering a segment with a known accident.
            if self.accident_segments.contains(&p.segment) {
                collector.send(streams::NOTIFY, *p, tuple.event_ns, p.vehicle as u64);
            }
        }
    }
}

struct LrTollNotify {
    counts: HashMap<u16, u32>,
    speeds: HashMap<u16, f64>,
    accidents: HashSet<u16>,
}

impl LrTollNotify {
    fn toll_for(&self, segment: u16) -> u32 {
        // LR toll formula flavour: free when fast or accident-struck,
        // otherwise quadratic in congestion.
        if self.accidents.contains(&segment) {
            return 0;
        }
        let speed = self.speeds.get(&segment).copied().unwrap_or(60.0);
        if speed >= 40.0 {
            return 0;
        }
        let cars = self.counts.get(&segment).copied().unwrap_or(0) as u64;
        let over = cars.saturating_sub(50);
        (2 * over * over).min(10_000) as u32
    }
}

impl DynBolt for LrTollNotify {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        if let Some(p) = tuple.value::<PositionReport>() {
            let toll = self.toll_for(p.segment);
            collector.send(
                streams::TOLL,
                TollNotification {
                    vehicle: p.vehicle,
                    toll,
                },
                tuple.event_ns,
                p.vehicle as u64,
            );
            return;
        }
        if let Some(c) = tuple.value::<SegmentCount>() {
            self.counts.insert(c.segment, c.vehicles);
            collector.send(
                streams::TOLL,
                TollNotification {
                    vehicle: 0,
                    toll: self.toll_for(c.segment),
                },
                tuple.event_ns,
                c.segment as u64,
            );
            return;
        }
        if let Some(s) = tuple.value::<SegmentSpeed>() {
            self.speeds.insert(s.segment, s.mph);
            collector.send(
                streams::TOLL,
                TollNotification {
                    vehicle: 0,
                    toll: self.toll_for(s.segment),
                },
                tuple.event_ns,
                s.segment as u64,
            );
            return;
        }
        if let Some(a) = tuple.value::<AccidentAlert>() {
            self.accidents.insert(a.segment);
        }
    }
}

struct LrDailyExpen {
    totals: HashMap<u32, u64>,
}

impl DynBolt for LrDailyExpen {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(vehicle) = tuple.value::<u32>() else {
            return;
        };
        let total = self.totals.entry(*vehicle).or_insert(0);
        *total += 1;
        collector.send_default(*total, tuple.event_ns, *vehicle as u64);
    }
}

struct LrAccountBalance {
    balances: HashMap<u32, i64>,
}

impl DynBolt for LrAccountBalance {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(vehicle) = tuple.value::<u32>() else {
            return;
        };
        let balance = self.balances.entry(*vehicle).or_insert(10_000);
        *balance -= 25;
        collector.send_default(*balance, tuple.event_ns, *vehicle as u64);
    }
}

struct LrSink;

impl DynBolt for LrSink {
    fn execute(&mut self, _tuple: &TupleView<'_>, _collector: &mut Collector) {}
}

/// The runnable LR application, generating events until stopped.
pub fn app() -> AppRuntime {
    app_sized(u64::MAX)
}

/// The runnable LR application with a deterministic input budget of
/// `total_events` road events split across spout replicas.
pub fn app_sized(total_events: u64) -> AppRuntime {
    let t = topology();
    let id = |n: &str| t.find(n).expect("operator exists");
    let (spout, parser, dispatcher) = (id("spout"), id("parser"), id("dispatcher"));
    let (avg, las, detect) = (id("avg_speed"), id("las_avg_speed"), id("accident_detect"));
    let (count, notify, toll) = (
        id("count_vehicle"),
        id("accident_notify"),
        id("toll_notify"),
    );
    let (daily, balance, sink) = (id("daily_expen"), id("account_balance"), id("sink"));
    AppRuntime::new(t)
        .spout(spout, move |ctx| {
            let seed = 0x14 ^ ctx.replica as u64;
            LrSpout {
                replica: ctx.replica as u64,
                seed,
                emitted: 0,
                generator: LrGenerator::new(seed, 10_000),
                remaining: crate::replica_share(total_events, ctx.replica, ctx.replicas),
            }
        })
        .bolt(parser, |_| LrParser)
        .bolt(dispatcher, |_| LrDispatcher)
        .bolt(avg, |_| LrAvgSpeed {
            acc: HashMap::new(),
        })
        .bolt(las, |_| LrLastAvgSpeed {
            last: HashMap::new(),
        })
        .bolt(detect, |_| LrAccidentDetect {
            stopped: HashMap::new(),
        })
        .bolt(count, |_| LrCountVehicle {
            seen: HashMap::new(),
        })
        .bolt(notify, |_| LrAccidentNotify {
            accident_segments: HashSet::new(),
        })
        .bolt(toll, |_| LrTollNotify {
            counts: HashMap::new(),
            speeds: HashMap::new(),
            accidents: HashSet::new(),
        })
        .bolt(daily, |_| LrDailyExpen {
            totals: HashMap::new(),
        })
        .bolt(balance, |_| LrAccountBalance {
            balances: HashMap::new(),
        })
        .sink(sink, |_| LrSink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shape() {
        let t = topology();
        assert_eq!(t.operator_count(), 12);
        let toll = t.find("toll_notify").expect("exists");
        // Toll notify has four producers: dispatcher, las, detect, counts.
        assert_eq!(t.producers_of(toll).len(), 4);
        let sink = t.find("sink").expect("exists");
        assert_eq!(t.producers_of(sink).len(), 4);
    }

    #[test]
    fn table8_selectivities() {
        let t = topology();
        let d = t.operator(t.find("dispatcher").expect("exists"));
        assert!((d.selectivity(None, streams::POSITION) - 0.99).abs() < 1e-12);
        let det = t.operator(t.find("accident_detect").expect("exists"));
        assert_eq!(
            det.selectivity(Some(streams::POSITION), streams::DETECT),
            0.0
        );
        let toll = t.operator(t.find("toll_notify").expect("exists"));
        assert_eq!(
            toll.selectivity(Some(streams::POSITION), streams::TOLL),
            1.0
        );
        assert_eq!(toll.selectivity(Some(streams::DETECT), streams::TOLL), 0.0);
        assert_eq!(toll.selectivity(Some(streams::COUNTS), streams::TOLL), 1.0);
        assert_eq!(toll.selectivity(Some(streams::LAS), streams::TOLL), 1.0);
    }

    #[test]
    fn toll_formula() {
        let mut tn = LrTollNotify {
            counts: HashMap::new(),
            speeds: HashMap::new(),
            accidents: HashSet::new(),
        };
        // Fast segment: free.
        tn.speeds.insert(1, 55.0);
        tn.counts.insert(1, 200);
        assert_eq!(tn.toll_for(1), 0);
        // Slow, congested segment: charged.
        tn.speeds.insert(2, 12.0);
        tn.counts.insert(2, 80);
        assert_eq!(tn.toll_for(2), 2 * 30 * 30);
        // Accident segment: free regardless.
        tn.accidents.insert(2);
        assert_eq!(tn.toll_for(2), 0);
    }

    #[test]
    fn app_validates() {
        assert!(app().validate().is_ok());
    }
}
