//! Stream Join (SJ) — an index-based sliding-window equi-join in the
//! style of Shahvarani & Jacobsen (PAPERS.md).
//!
//! `left_spout ──KeyBy──▶ join ──KeyBy──▶ sink ◀──KeyBy── right_spout`
//!
//! Two deterministic spouts emit logically-timestamped tuples; the join
//! bolt partitions a sliding-window hash index by the join key (KeyBy on
//! both inputs), probes the opposite side's index before inserting its
//! own tuple (exactly-once pair emission), and evicts entries whose
//! timestamps can no longer fall inside the window of *any* future tuple
//! from the opposite side.
//!
//! # Determinism contract
//!
//! Replica `r` of `R` spout replicas emits the global tuple indices
//! `r, r + R, r + 2R, …` — the *union* over replicas is exactly
//! `0..total` under every replication level, and tuple content is a pure
//! function of the side and the global index. Event time is logical
//! (`(index + 1) × TICK_NS`), so the match set
//! `{(i, j) : left_key(i) == right_key(j) ∧ |i − j| < WINDOW_TICKS}`
//! is a plan-independent invariant. The single-threaded [`oracle`]
//! computes it directly; every parallel configuration must reproduce it
//! bit-exactly, which the conformance tier checks through the
//! order-independent [`JoinDigest`] the bolt maintains as migratable
//! state.
//!
//! The contract survives **rescaling migrations** too: a spout's stream
//! position is a set of strided cursors, and a harvested cursor resumes
//! on the successor with its *original* stride — never re-derived from
//! the new replica count — so the emitted index set stays exactly
//! `0..total` even when a re-plan changes the spout replication mid-run.
//!
//! # Eviction safety
//!
//! Each tuple carries its origin — the lineage of the cursor that emitted
//! it (epoch one's replica `r` of `R`), stable across migrations — and
//! per-origin event times are strictly increasing (a spout hosting
//! several cursors advances the lowest-indexed one first), so once every
//! origin of a side has been seen the
//! minimum of the per-origin last-seen times lower-bounds every *future*
//! arrival from that side (the watermark). An entry on side A is evicted
//! only when `ts + WINDOW_NS ≤ watermark(B)` — any future B-tuple is
//! strictly newer than the watermark, hence outside A's window. Until
//! all origins have reported, the watermark is 0 and nothing is evicted.

use crate::CALIBRATION_GHZ;
use brisk_dag::{CostProfile, LogicalTopology, Partitioning, TopologyBuilder, DEFAULT_STREAM};
use brisk_runtime::{AppRuntime, Collector, DynBolt, DynSpout, SpoutStatus, StateEntry, TupleView};
use std::collections::HashMap;

/// Operator names. The join bolt sits at index 1 so harness knobs that
/// drift "the first bolt" target it.
pub const OPERATORS: [&str; 4] = ["left_spout", "join", "right_spout", "sink"];

/// Logical time per stream index.
pub const TICK_NS: u64 = 1_000;

/// Window length in ticks: tuples `i` and `j` match iff `|i − j| < 64`.
pub const WINDOW_TICKS: u64 = 64;

/// Window length in event-time nanoseconds.
pub const WINDOW_NS: u64 = WINDOW_TICKS * TICK_NS;

/// Join-key domain size (controls match selectivity ≈ `127 / 32 ≈ 4`
/// matches per interior tuple, ≈ 2 outputs per join *input*).
pub const NUM_KEYS: u64 = 32;

/// Amortization period of the eviction sweep, in processed tuples.
pub const EVICT_PERIOD: u64 = 64;

/// splitmix64 finalizer — the deterministic mixer behind keys and hashes.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Join key of the `index`-th left-stream tuple (pure function).
pub fn left_key(index: u64) -> u64 {
    mix64(index ^ 0x4c45_4654) % NUM_KEYS
}

/// Join key of the `index`-th right-stream tuple (pure function).
pub fn right_key(index: u64) -> u64 {
    mix64(index ^ 0x5249_4748) % NUM_KEYS
}

/// Logical event time of the `index`-th tuple of either stream.
pub fn event_time(index: u64) -> u64 {
    (index + 1) * TICK_NS
}

/// Canonical order-independent hash of one matched pair.
pub fn pair_hash(key: u64, left_seq: u64, right_seq: u64) -> u64 {
    mix64(
        key.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ mix64(left_seq.wrapping_add(0x0123_4567_89ab_cdef))
            ^ mix64(right_seq).rotate_left(21),
    )
}

/// How a sized input budget splits across the two streams.
pub fn side_totals(total_events: u64) -> (u64, u64) {
    (total_events - total_events / 2, total_events / 2)
}

/// Which input stream a tuple belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// The "left" stream.
    Left,
    /// The "right" stream.
    Right,
}

/// One input tuple of either join stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinTuple {
    /// Which stream this tuple belongs to.
    pub side: JoinSide,
    /// Join key (already reduced to the `NUM_KEYS` domain).
    pub key: u64,
    /// Global stream index (dense across spout replicas).
    pub seq: u64,
    /// Emitting spout replica.
    pub origin: u32,
    /// Total spout replicas on this side under the active plan.
    pub origins: u32,
}

/// One matched pair emitted by the join bolt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinedPair {
    /// The shared join key.
    pub key: u64,
    /// Left stream index.
    pub left_seq: u64,
    /// Right stream index.
    pub right_seq: u64,
}

/// Order-independent accumulator over a multiset of matched pairs:
/// pair count, XOR and wrapping sum of [`pair_hash`]es. Two runs produced
/// the same match *multiset* iff their digests are equal (up to hash
/// collisions engineered to be negligible).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinDigest {
    /// Matched pairs observed.
    pub count: u64,
    /// XOR of pair hashes.
    pub xor: u64,
    /// Wrapping sum of pair hashes.
    pub sum: u64,
}

impl JoinDigest {
    /// Fold one matched pair in.
    pub fn add(&mut self, pair_hash: u64) {
        self.count += 1;
        self.xor ^= pair_hash;
        self.sum = self.sum.wrapping_add(pair_hash);
    }

    /// Merge another digest (disjoint pair multisets union).
    pub fn merge(&mut self, other: &JoinDigest) {
        self.count += other.count;
        self.xor ^= other.xor;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Recover the total digest from harvested join-bolt state entries
    /// (one tagged digest record per replica; other tags are skipped).
    pub fn from_entries(entries: &[StateEntry]) -> JoinDigest {
        let mut total = JoinDigest::default();
        for (_, bytes) in entries {
            if let Some(state::Record::Digest(d)) = state::decode(bytes) {
                total.merge(&d);
            }
        }
        total
    }
}

/// Single-threaded reference oracle: the digest of the full match
/// multiset for `left_total` × `right_total` sized streams. `O(n · 127)`
/// — it scans only the window-reachable band of right indices per left
/// index.
pub fn oracle(left_total: u64, right_total: u64) -> JoinDigest {
    let mut d = JoinDigest::default();
    if right_total == 0 {
        return d;
    }
    for i in 0..left_total {
        let k = left_key(i);
        let lo = i.saturating_sub(WINDOW_TICKS - 1);
        let hi = (i + WINDOW_TICKS - 1).min(right_total - 1);
        for j in lo..=hi {
            if right_key(j) == k {
                d.add(pair_hash(k, i, j));
            }
        }
    }
    d
}

/// Wire format of the join bolt's migratable state (tagged records).
pub mod state {
    use super::JoinDigest;

    /// One decoded state record.
    pub enum Record {
        /// An index entry `(seq, ts)` on the left (`side == 0`) or right
        /// (`side == 1`) side; the join key travels as the entry key.
        Index {
            /// 0 = left, 1 = right.
            side: u8,
            /// Global stream index.
            seq: u64,
            /// Event time.
            ts: u64,
        },
        /// Per-origin watermark bookkeeping for one side.
        Watermark {
            /// 0 = left, 1 = right.
            side: u8,
            /// Origin replica.
            origin: u32,
            /// Total origins of that side.
            origins: u32,
            /// Last event time seen from the origin.
            ts: u64,
        },
        /// The replica's pair digest.
        Digest(JoinDigest),
    }

    /// Encode an index entry.
    pub fn encode_index(side: u8, seq: u64, ts: u64) -> Vec<u8> {
        let mut b = vec![side];
        b.extend_from_slice(&seq.to_le_bytes());
        b.extend_from_slice(&ts.to_le_bytes());
        b
    }

    /// Encode a watermark record.
    pub fn encode_watermark(side: u8, origin: u32, origins: u32, ts: u64) -> Vec<u8> {
        let mut b = vec![2, side];
        b.extend_from_slice(&origin.to_le_bytes());
        b.extend_from_slice(&origins.to_le_bytes());
        b.extend_from_slice(&ts.to_le_bytes());
        b
    }

    /// Encode a digest record.
    pub fn encode_digest(d: &JoinDigest) -> Vec<u8> {
        let mut b = vec![3];
        b.extend_from_slice(&d.count.to_le_bytes());
        b.extend_from_slice(&d.xor.to_le_bytes());
        b.extend_from_slice(&d.sum.to_le_bytes());
        b
    }

    /// Decode any record (`None` on malformed bytes).
    pub fn decode(bytes: &[u8]) -> Option<Record> {
        let u64_at = |i: usize| -> Option<u64> {
            bytes
                .get(i..i + 8)
                .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
        };
        match *bytes.first()? {
            side @ (0 | 1) if bytes.len() == 17 => Some(Record::Index {
                side,
                seq: u64_at(1)?,
                ts: u64_at(9)?,
            }),
            2 if bytes.len() == 18 => Some(Record::Watermark {
                side: bytes[1],
                origin: u32::from_le_bytes(bytes[2..6].try_into().expect("4 bytes")),
                origins: u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")),
                ts: u64_at(10)?,
            }),
            3 if bytes.len() == 25 => Some(Record::Digest(JoinDigest {
                count: u64_at(1)?,
                xor: u64_at(9)?,
                sum: u64_at(17)?,
            })),
            _ => None,
        }
    }
}

/// The SJ logical topology with calibrated cost profiles.
pub fn topology() -> LogicalTopology {
    let ghz = CALIBRATION_GHZ;
    let mut b = TopologyBuilder::new("stream_join");
    let left = b.add_spout(
        "left_spout",
        CostProfile::from_ns_at_ghz(300.0, 45.0, 96.0, 48.0, ghz),
    );
    let join = b.add_bolt(
        "join",
        // Te covers probe bookkeeping and pair emission; the state term
        // prices the hash probe/insert plus the amortized eviction sweep.
        CostProfile::from_ns_at_ghz(900.0, 70.0, 240.0, 64.0, ghz).with_state_access(350.0 * ghz),
    );
    let right = b.add_spout(
        "right_spout",
        CostProfile::from_ns_at_ghz(300.0, 45.0, 96.0, 48.0, ghz),
    );
    let sink = b.add_sink(
        "sink",
        CostProfile::from_ns_at_ghz(45.0, 10.0, 32.0, 16.0, ghz),
    );
    b.connect(left, "left", join, Partitioning::KeyBy);
    b.connect(right, "right", join, Partitioning::KeyBy);
    b.connect(join, DEFAULT_STREAM, sink, Partitioning::KeyBy);
    // ≈ 127/32 matches per interior left tuple ⇒ ≈ 2 pairs per join input.
    b.set_selectivity(join, None, DEFAULT_STREAM, 2.0);
    // Pairs leave under the tuples' shared join key, so the KeyBy edge
    // below the (key-confined) join is aligned and fuses pairwise.
    b.set_key_preserving(join);
    b.build().expect("SJ topology is valid")
}

/// One strided cursor through a side's global index space. A fresh spout
/// replica owns exactly one (start `r`, stride `R`); a migrated spout may
/// own several, carried over verbatim. A cursor never changes its stride:
/// it keeps walking the residue class it was born with, so the union of
/// all live cursors' futures stays exactly the un-emitted remainder of
/// `0..total` under **any** successor replication — the match set stays
/// bit-identical to the oracle across rescaling migrations. (Re-striding
/// a resumed position to the new replica count would emit a different
/// index set: overlaps duplicate matches, gaps drop them.)
struct Cursor {
    next_index: u64,
    stride: u64,
    remaining: u64,
}

/// `next_index | stride | remaining`, little-endian u64s.
fn encode_cursor(c: &Cursor) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(24);
    bytes.extend_from_slice(&c.next_index.to_le_bytes());
    bytes.extend_from_slice(&c.stride.to_le_bytes());
    bytes.extend_from_slice(&c.remaining.to_le_bytes());
    bytes
}

fn decode_cursor(bytes: &[u8]) -> Option<Cursor> {
    if bytes.len() != 24 {
        return None;
    }
    let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8"));
    Some(Cursor {
        next_index: word(0),
        stride: word(1),
        remaining: word(2),
    })
}

struct JoinSpout {
    side: JoinSide,
    cursors: Vec<Cursor>,
}

impl DynSpout for JoinSpout {
    fn next(&mut self, collector: &mut Collector) -> SpoutStatus {
        // Advance the lowest-indexed live cursor: each cursor's indices
        // increase, so the merge order keeps this replica's event times —
        // and, since origin identity rides the cursor, each origin's
        // event times — monotone, which eviction safety rests on.
        let Some(c) = self
            .cursors
            .iter_mut()
            .filter(|c| c.remaining > 0)
            .min_by_key(|c| c.next_index)
        else {
            return SpoutStatus::Exhausted;
        };
        c.remaining -= 1;
        let idx = c.next_index;
        // The origin is the cursor's lineage, not the hosting replica:
        // every cursor descends from epoch one's replica `r` of `R`, so
        // `idx % stride` and `stride` name that original (origin, origins)
        // pair stably across any number of migrations.
        let origin = (idx % c.stride) as u32;
        let origins = c.stride as u32;
        c.next_index += c.stride;
        let (stream, key) = match self.side {
            JoinSide::Left => ("left", left_key(idx)),
            JoinSide::Right => ("right", right_key(idx)),
        };
        let t = JoinTuple {
            side: self.side,
            key,
            seq: idx,
            origin,
            origins,
        };
        collector.send(stream, t, event_time(idx), key);
        SpoutStatus::Emitted(1)
    }

    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        // One entry per cursor, keyed by its residue class so a modulo
        // redistribution spreads resumed cursors across the successor's
        // replicas without ever splitting or duplicating one.
        Some(
            self.cursors
                .iter()
                .map(|c| (c.next_index % c.stride, encode_cursor(c)))
                .collect(),
        )
    }

    fn install_state(&mut self, entries: Vec<StateEntry>) {
        // Replace the factory cursor wholesale: resumed cursors continue
        // their original residue classes, and a replica handed nothing
        // (the engine installs empty state into every replica of a
        // migrated operator) emits nothing rather than re-deriving a
        // fresh — already-emitted — share.
        self.cursors = entries
            .iter()
            .filter_map(|(_, bytes)| decode_cursor(bytes))
            .collect();
    }
}

/// One side of the join's window state.
#[derive(Default)]
struct SideIndex {
    /// Join key → live window entries `(seq, ts)` (arrival order; event
    /// times interleave across origins, so eviction scans, not pops).
    entries: HashMap<u64, Vec<(u64, u64)>>,
    /// Origin replica → last event time seen from it.
    last_seen: HashMap<u32, u64>,
    /// Declared origin count (from tuple metadata), once known.
    origins: Option<u32>,
}

impl SideIndex {
    /// Lower bound on every future arrival from this side, or 0 while
    /// some origin has not reported yet.
    fn watermark(&self) -> u64 {
        match self.origins {
            Some(n) if self.last_seen.len() as u32 == n => {
                self.last_seen.values().copied().min().unwrap_or(0)
            }
            _ => 0,
        }
    }

    fn evict(&mut self, opposite_watermark: u64) {
        if opposite_watermark == 0 {
            return;
        }
        self.entries.retain(|_, v| {
            v.retain(|&(_, ts)| ts + WINDOW_NS > opposite_watermark);
            !v.is_empty()
        });
    }
}

/// The sliding-window hash join index of one bolt replica: both side
/// indexes, their watermark bookkeeping, and the pair digest. Public so
/// the property tier can replay random streams against it directly (the
/// join bolt is a thin emission wrapper around this).
#[derive(Default)]
pub struct WindowJoin {
    left: SideIndex,
    right: SideIndex,
    digest: JoinDigest,
    processed: u64,
}

impl WindowJoin {
    /// An empty join index.
    pub fn new() -> WindowJoin {
        WindowJoin::default()
    }

    /// Process one tuple timestamped `ts`: probe the opposite side's
    /// index, then insert the tuple into its own — whichever tuple of a
    /// pair reaches the index second emits it, exactly once. Matched
    /// pairs are appended to `out`; the amortized eviction sweep runs
    /// every [`EVICT_PERIOD`] tuples.
    pub fn process(&mut self, t: &JoinTuple, ts: u64, out: &mut Vec<JoinedPair>) {
        let (own, opposite) = match t.side {
            JoinSide::Left => (&mut self.left, &mut self.right),
            JoinSide::Right => (&mut self.right, &mut self.left),
        };
        own.origins.get_or_insert(t.origins);
        let seen = own.last_seen.entry(t.origin).or_insert(0);
        *seen = (*seen).max(ts);
        if let Some(partners) = opposite.entries.get(&t.key) {
            for &(seq, pts) in partners {
                if pts.abs_diff(ts) < WINDOW_NS {
                    let (left_seq, right_seq) = match t.side {
                        JoinSide::Left => (t.seq, seq),
                        JoinSide::Right => (seq, t.seq),
                    };
                    self.digest.add(pair_hash(t.key, left_seq, right_seq));
                    out.push(JoinedPair {
                        key: t.key,
                        left_seq,
                        right_seq,
                    });
                }
            }
        }
        own.entries.entry(t.key).or_default().push((t.seq, ts));
        self.processed += 1;
        if self.processed % EVICT_PERIOD == 0 {
            let right_wm = self.right.watermark();
            let left_wm = self.left.watermark();
            self.left.evict(right_wm);
            self.right.evict(left_wm);
        }
    }

    /// The digest of every pair this index has emitted.
    pub fn digest(&self) -> JoinDigest {
        self.digest
    }

    /// Live index rows across both sides (eviction observability).
    pub fn live_entries(&self) -> usize {
        self.left.entries.values().map(Vec::len).sum::<usize>()
            + self.right.entries.values().map(Vec::len).sum::<usize>()
    }

    /// Serialize the whole index as tagged, key-routable state entries.
    pub fn extract(&self) -> Vec<StateEntry> {
        let mut out = Vec::new();
        for (side_tag, side) in [(0u8, &self.left), (1u8, &self.right)] {
            for (&key, entries) in &side.entries {
                for &(seq, ts) in entries {
                    out.push((key, state::encode_index(side_tag, seq, ts)));
                }
            }
            if let Some(origins) = side.origins {
                for (&origin, &ts) in &side.last_seen {
                    out.push((0, state::encode_watermark(side_tag, origin, origins, ts)));
                }
            }
        }
        out.push((0, state::encode_digest(&self.digest)));
        out
    }

    /// Merge serialized state entries into this index.
    pub fn install(&mut self, entries: Vec<StateEntry>) {
        for (key, bytes) in entries {
            match state::decode(&bytes) {
                Some(state::Record::Index { side, seq, ts }) => {
                    let idx = if side == 0 {
                        &mut self.left
                    } else {
                        &mut self.right
                    };
                    idx.entries.entry(key).or_default().push((seq, ts));
                }
                Some(state::Record::Watermark {
                    side,
                    origin,
                    origins,
                    ts,
                }) => {
                    let idx = if side == 0 {
                        &mut self.left
                    } else {
                        &mut self.right
                    };
                    idx.origins = Some(origins);
                    let seen = idx.last_seen.entry(origin).or_insert(0);
                    *seen = (*seen).max(ts);
                }
                Some(state::Record::Digest(d)) => self.digest.merge(&d),
                None => {}
            }
        }
        // Merged per-key runs are no longer arrival-ordered; keep them
        // deterministic by stream index (the digest is order-independent,
        // this only normalizes probe emission order).
        for idx in [&mut self.left, &mut self.right] {
            for v in idx.entries.values_mut() {
                v.sort_unstable();
            }
        }
    }
}

struct JoinBolt {
    index: WindowJoin,
    matches: Vec<JoinedPair>,
}

impl JoinBolt {
    fn new() -> JoinBolt {
        JoinBolt {
            index: WindowJoin::new(),
            matches: Vec::new(),
        }
    }
}

impl DynBolt for JoinBolt {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(t) = tuple.value::<JoinTuple>() else {
            return;
        };
        self.matches.clear();
        self.index.process(t, tuple.event_ns, &mut self.matches);
        for p in self.matches.drain(..) {
            collector.send_default(p, tuple.event_ns, p.key);
        }
    }

    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        Some(self.index.extract())
    }

    fn install_state(&mut self, entries: Vec<StateEntry>) {
        self.index.install(entries);
    }
}

struct JoinSink;

impl DynBolt for JoinSink {
    fn execute(&mut self, _tuple: &TupleView<'_>, _collector: &mut Collector) {}
}

/// The runnable SJ application, streaming until stopped.
pub fn app() -> AppRuntime {
    app_sized(u64::MAX)
}

/// The runnable SJ application with a deterministic input budget of
/// `total_events` tuples split across the two streams (and, within a
/// stream, strided across spout replicas — see the module docs).
pub fn app_sized(total_events: u64) -> AppRuntime {
    let t = topology();
    let ids: Vec<_> = OPERATORS
        .iter()
        .map(|n| t.find(n).expect("operator exists"))
        .collect();
    let (left_total, right_total) = side_totals(total_events);
    let spout = move |side: JoinSide, total: u64| {
        move |ctx: brisk_runtime::BoltContext| JoinSpout {
            side,
            cursors: vec![Cursor {
                next_index: ctx.replica as u64,
                stride: ctx.replicas as u64,
                remaining: crate::replica_share(total, ctx.replica, ctx.replicas),
            }],
        }
    };
    AppRuntime::new(t)
        .spout(ids[0], spout(JoinSide::Left, left_total))
        .bolt(ids[1], |_| JoinBolt::new())
        .spout(ids[2], spout(JoinSide::Right, right_total))
        .sink(ids[3], |_| JoinSink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shape() {
        let t = topology();
        assert_eq!(t.operator_count(), 4);
        let join = t.find("join").expect("exists");
        assert_eq!(t.producers_of(join).len(), 2, "two upstream spouts");
        assert!(t.operator(join).is_key_preserving());
        assert!(t.operator(join).cost.state_cycles > 0.0);
    }

    #[test]
    fn oracle_matches_brute_force() {
        let (l, r) = (200, 180);
        let mut brute = JoinDigest::default();
        for i in 0..l {
            for j in 0..r {
                if left_key(i) == right_key(j) && event_time(i).abs_diff(event_time(j)) < WINDOW_NS
                {
                    brute.add(pair_hash(left_key(i), i, j));
                }
            }
        }
        assert_eq!(oracle(l, r), brute);
        assert!(brute.count > 0, "test workload must produce matches");
        assert_eq!(oracle(10, 0), JoinDigest::default());
    }

    /// Drive a single JoinBolt replica through an interleaving and check
    /// the digest against the oracle — the single-threaded base case of
    /// the conformance tier.
    #[test]
    fn bolt_reproduces_the_oracle_single_threaded() {
        let t = topology();
        let join = t.find("join").expect("exists");
        let (mut collector, taps) = Collector::capture(&t, join, 4096);
        let mut bolt = JoinBolt::new();
        let (l, r) = (300u64, 300u64);
        // Alternate sides, each side in stream order (1 origin per side).
        for i in 0..l.max(r) {
            for (side, total, key_fn) in [
                (JoinSide::Left, l, left_key as fn(u64) -> u64),
                (JoinSide::Right, r, right_key as fn(u64) -> u64),
            ] {
                if i >= total {
                    continue;
                }
                let jt = JoinTuple {
                    side,
                    key: key_fn(i),
                    seq: i,
                    origin: 0,
                    origins: 1,
                };
                let view = TupleView::of_value(&jt, event_time(i), jt.key);
                bolt.execute(&view, &mut collector);
            }
        }
        collector.flush_all();
        assert_eq!(bolt.index.digest(), oracle(l, r));
        // The emitted pair stream carries the same multiset.
        let mut emitted = JoinDigest::default();
        for (stream, queue) in taps {
            assert_eq!(stream, DEFAULT_STREAM);
            while let Some(jumbo) = queue.try_pop() {
                for i in 0..jumbo.batch.len() {
                    let tup = jumbo.batch.to_tuple(i);
                    let p = TupleView::of_tuple(&tup)
                        .value::<JoinedPair>()
                        .copied()
                        .expect("pair");
                    emitted.add(pair_hash(p.key, p.left_seq, p.right_seq));
                }
            }
        }
        assert_eq!(emitted, oracle(l, r));
        // Eviction actually ran: the index holds far fewer than l+r rows.
        let live = bolt.index.live_entries();
        assert!(
            live < 4 * WINDOW_TICKS as usize,
            "index grew unbounded: {live}"
        );
    }

    /// Drive one spout up to `limit` emissions, returning the emitted
    /// global indices.
    fn drain_spout(spout: &mut JoinSpout, limit: u64) -> Vec<u64> {
        let t = topology();
        let op = t.find("left_spout").expect("exists");
        let (mut c, taps) = Collector::capture(&t, op, 8192);
        let mut n = 0;
        while n < limit {
            match spout.next(&mut c) {
                SpoutStatus::Emitted(_) => n += 1,
                _ => break,
            }
        }
        c.flush_all();
        let mut seqs = Vec::new();
        for (_, q) in taps {
            while let Some(j) = q.try_pop() {
                for i in 0..j.batch.len() {
                    let tup = j.batch.to_tuple(i);
                    let jt = TupleView::of_tuple(&tup)
                        .value::<JoinTuple>()
                        .copied()
                        .expect("join tuple");
                    seqs.push(jt.seq);
                }
            }
        }
        seqs
    }

    /// Cursors carried across hand-offs that GROW (2→3) and then SHRINK
    /// (3→1) the replication still emit exactly `0..total` — no index is
    /// duplicated or dropped, so the oracle match set survives rescaling
    /// migrations — and a replica hosting several inherited cursors keeps
    /// every origin's event times monotone.
    #[test]
    fn spout_cursors_survive_rescaling_hand_offs_exactly() {
        let total = 101u64;
        let fresh = |replicas: u64| -> Vec<JoinSpout> {
            (0..replicas)
                .map(|r| JoinSpout {
                    side: JoinSide::Left,
                    cursors: vec![Cursor {
                        next_index: r,
                        stride: replicas,
                        remaining: crate::replica_share(total, r as usize, replicas as usize),
                    }],
                })
                .collect()
        };
        // Epoch one: two replicas, paused mid-budget.
        let mut spouts = fresh(2);
        let mut emitted: Vec<u64> = Vec::new();
        for s in &mut spouts {
            emitted.extend(drain_spout(s, 17));
        }
        // Grow to three replicas: the third inherits no cursor and must
        // emit nothing (empty install), not a fresh factory share.
        let entries: Vec<StateEntry> = spouts
            .iter_mut()
            .flat_map(|s| s.extract_state().expect("stateful"))
            .collect();
        let mut grown = fresh(3);
        for (r, s) in grown.iter_mut().enumerate() {
            s.install_state(
                entries
                    .iter()
                    .filter(|e| e.0 as usize % 3 == r)
                    .cloned()
                    .collect(),
            );
        }
        assert!(drain_spout(&mut grown[2], u64::MAX).is_empty());
        for s in &mut grown[..2] {
            emitted.extend(drain_spout(s, 11));
        }
        // Shrink to one replica: it hosts both surviving cursors.
        let entries: Vec<StateEntry> = grown
            .iter_mut()
            .flat_map(|s| s.extract_state().expect("stateful"))
            .collect();
        let mut merged = fresh(1).pop().expect("one replica");
        merged.install_state(entries);
        let tail = drain_spout(&mut merged, u64::MAX);
        // Min-index merge order: each origin's (stride-2 lineage) event
        // times keep increasing even through the shared host replica.
        for origin in 0..2u64 {
            let of_origin: Vec<u64> = tail.iter().filter(|&&i| i % 2 == origin).copied().collect();
            assert!(
                of_origin.windows(2).all(|w| w[0] < w[1]),
                "origin {origin} went backwards: {of_origin:?}"
            );
        }
        emitted.extend(tail);
        emitted.sort_unstable();
        assert_eq!(
            emitted,
            (0..total).collect::<Vec<_>>(),
            "rescaling hand-offs must conserve the emitted index set exactly"
        );
    }

    #[test]
    fn bolt_state_round_trips_through_the_wire_format() {
        let mut bolt = JoinBolt::new();
        let c = &mut Collector::capture(&topology(), topology().find("join").expect("j"), 256).0;
        for i in 0..50u64 {
            for (side, key) in [
                (JoinSide::Left, left_key(i)),
                (JoinSide::Right, right_key(i)),
            ] {
                let jt = JoinTuple {
                    side,
                    key,
                    seq: i,
                    origin: 0,
                    origins: 1,
                };
                bolt.execute(&TupleView::of_value(&jt, event_time(i), key), c);
            }
        }
        let entries = bolt.extract_state().expect("stateful");
        let mut restored = JoinBolt::new();
        restored.install_state(entries);
        assert_eq!(restored.index.digest(), bolt.index.digest());
        assert_eq!(restored.index.left.watermark(), bolt.index.left.watermark());
        assert_eq!(
            restored.index.right.watermark(),
            bolt.index.right.watermark()
        );
        assert_eq!(restored.index.live_entries(), bolt.index.live_entries());
    }

    #[test]
    fn side_totals_conserve_the_budget() {
        for total in [0u64, 1, 2, 7, 1001] {
            let (l, r) = side_totals(total);
            assert_eq!(l + r, total);
            assert!(l >= r);
        }
    }

    #[test]
    fn app_validates() {
        assert!(app().validate().is_ok());
    }
}
