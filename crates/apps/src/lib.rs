//! # brisk-apps
//!
//! The four benchmark applications of the paper's evaluation (Section 6.1,
//! Appendix B), each in two forms:
//!
//! * a **logical topology** with per-operator cost profiles calibrated from
//!   the paper's published measurements (Table 3 per-tuple times, Figure 8
//!   breakdowns, Table 4 absolute throughputs on Server A) — consumed by the
//!   performance model, the RLAS optimizer and the simulator;
//! * a **real executable implementation** ([`brisk_runtime::AppRuntime`])
//!   whose operators do the actual work (splitting sentences, updating
//!   hashmaps, scoring transactions, running the Linear Road logic) — run
//!   by the threaded engine in the examples and integration tests.
//!
//! | App | Topology | Character |
//! |---|---|---|
//! | [`word_count`] (WC) | spout → parser → splitter → counter → sink | high fan-out (splitter selectivity 10), small tuples |
//! | [`fraud_detection`] (FD) | spout → parser → predictor → sink | compute-heavy predictor, large tuples |
//! | [`spike_detection`] (SD) | spout → parser → moving-average → spike-detect → sink | keyed window state |
//! | [`linear_road`] (LR) | 11 operators, multi-stream (Figure 18c, Table 8) | complex topology, per-stream selectivities |

pub mod fraud_detection;
pub mod generators;
pub mod linear_road;
pub mod shared_index;
pub mod spike_detection;
pub mod stream_join;
pub mod word_count;

use brisk_dag::LogicalTopology;
use brisk_runtime::AppRuntime;

/// The clock (GHz) the paper's published per-tuple nanosecond costs were
/// measured at: Server A's Xeon E7-8890 runs at 1.2 GHz.
pub const CALIBRATION_GHZ: f64 = 1.2;

/// All applications by abbreviation, for experiment sweeps: the four
/// paper benchmarks plus the join-shaped workload tier (SJ/SI).
pub fn all_topologies() -> Vec<(&'static str, LogicalTopology)> {
    vec![
        ("WC", word_count::topology()),
        ("FD", fraud_detection::topology()),
        ("SD", spike_detection::topology()),
        ("LR", linear_road::topology()),
        ("SJ", stream_join::topology()),
        ("SI", shared_index::topology()),
    ]
}

/// This replica's share of a total input-event budget: `total / replicas`
/// plus one unit of the remainder for the lowest replica indices, so the
/// shares sum to exactly `total` under any replication level. Spouts use
/// this to make sized runs reproduce the same workload regardless of the
/// execution plan.
pub fn replica_share(total: u64, replica: usize, replicas: usize) -> u64 {
    let n = replicas.max(1) as u64;
    total / n + u64::from((replica as u64) < total % n)
}

/// Shared wire format for migratable spout state.
///
/// Every benchmark spout is a deterministic seeded generator plus an input
/// budget, so its whole state is three numbers: the RNG `seed`, how many
/// events it has `emitted`, and how many `remaining` before exhaustion. A
/// successor replica rebuilds the generator from the seed and replays
/// `emitted` draws (via the generators' cheap `skip_*` methods) to land on
/// the exact same stream position — no tuple is re-emitted or lost.
pub(crate) mod spout_state {
    use brisk_runtime::StateEntry;

    /// `seed | emitted | remaining`, little-endian u64s.
    pub fn encode(seed: u64, emitted: u64, remaining: u64) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(24);
        bytes.extend_from_slice(&seed.to_le_bytes());
        bytes.extend_from_slice(&emitted.to_le_bytes());
        bytes.extend_from_slice(&remaining.to_le_bytes());
        bytes
    }

    pub fn decode(bytes: &[u8]) -> Option<(u64, u64, u64)> {
        if bytes.len() != 24 {
            return None;
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8"));
        Some((word(0), word(1), word(2)))
    }

    /// Merge harvested entries into one stream position: continue the first
    /// entry's stream (its seed and replay offset), carrying the *summed*
    /// remaining budget so rescaled migrations conserve the total event
    /// count exactly.
    pub fn merge(entries: &[StateEntry]) -> Option<(u64, u64, u64)> {
        let mut merged: Option<(u64, u64, u64)> = None;
        for (_, bytes) in entries {
            let Some((seed, emitted, remaining)) = decode(bytes) else {
                continue;
            };
            merged = Some(match merged {
                None => (seed, emitted, remaining),
                Some((s, e, r)) => (s, e, r.saturating_add(remaining)),
            });
        }
        merged
    }
}

/// A runnable, *size-parameterized* application by paper abbreviation: the
/// spouts generate exactly `total_events` input events (split across
/// replicas via [`replica_share`]) and then exhaust, so a run drains
/// deterministically — the reproducible workload behind the e2e
/// measured-vs-predicted harness.
pub fn app_sized(abbrev: &str, total_events: u64) -> Option<AppRuntime> {
    match abbrev {
        "WC" => Some(word_count::app_sized(total_events)),
        "FD" => Some(fraud_detection::app_sized(total_events)),
        "SD" => Some(spike_detection::app_sized(total_events)),
        "LR" => Some(linear_road::app_sized(total_events)),
        "SJ" => Some(stream_join::app_sized(total_events)),
        "SI" => Some(shared_index::app_sized(total_events)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_topologies_build_and_validate() {
        let apps = all_topologies();
        assert_eq!(apps.len(), 6);
        for (name, t) in apps {
            assert!(t.operator_count() >= 4, "{name} too small");
            assert!(!t.spouts().is_empty(), "{name} has no spout");
            assert!(!t.sinks().is_empty(), "{name} has no sink");
        }
    }

    #[test]
    fn all_apps_have_runnable_implementations() {
        assert!(word_count::app().validate().is_ok());
        assert!(fraud_detection::app().validate().is_ok());
        assert!(spike_detection::app().validate().is_ok());
        assert!(linear_road::app().validate().is_ok());
        assert!(stream_join::app().validate().is_ok());
        assert!(shared_index::app().validate().is_ok());
    }

    #[test]
    fn replica_shares_sum_to_total() {
        for total in [0u64, 1, 7, 100, 101] {
            for replicas in 1..=5usize {
                let sum: u64 = (0..replicas)
                    .map(|r| replica_share(total, r, replicas))
                    .sum();
                assert_eq!(sum, total, "total {total} over {replicas} replicas");
            }
        }
        // Guard against the unbounded sentinel overflowing.
        assert!(replica_share(u64::MAX, 0, 3) > 0);
    }

    #[test]
    fn app_sized_resolves_every_abbreviation() {
        for (abbrev, _) in all_topologies() {
            let app = app_sized(abbrev, 100).expect("known app");
            assert!(app.validate().is_ok(), "{abbrev}");
        }
        assert!(app_sized("nope", 100).is_none());
    }

    /// Drain every spout of a sized app (single replica each) and return
    /// the total events emitted across all of them.
    fn drain_all_spouts(app: &AppRuntime) -> usize {
        use brisk_runtime::{Collector, OperatorRuntime, SpoutStatus};
        let mut emitted = 0;
        for spout_id in app.topology.spouts() {
            let OperatorRuntime::Spout(factory) = app.runtime(spout_id) else {
                panic!("spout expected");
            };
            let mut spout = factory(brisk_runtime::BoltContext {
                replica: 0,
                replicas: 1,
            });
            let (mut collector, _taps) = Collector::capture(&app.topology, spout_id, 64);
            loop {
                match spout.next(&mut collector) {
                    SpoutStatus::Emitted(n) => emitted += n,
                    SpoutStatus::Exhausted => break,
                    SpoutStatus::Idle => {}
                }
            }
        }
        emitted
    }

    #[test]
    fn sized_spouts_exhaust_after_their_share() {
        // Single-spout and two-spout apps alike emit exactly the budget,
        // summed across every spout in the topology.
        for abbrev in ["WC", "SJ", "SI"] {
            let app = app_sized(abbrev, 5).expect("known app");
            assert_eq!(drain_all_spouts(&app), 5, "{abbrev}");
        }
    }
}
