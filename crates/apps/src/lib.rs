//! # brisk-apps
//!
//! The four benchmark applications of the paper's evaluation (Section 6.1,
//! Appendix B), each in two forms:
//!
//! * a **logical topology** with per-operator cost profiles calibrated from
//!   the paper's published measurements (Table 3 per-tuple times, Figure 8
//!   breakdowns, Table 4 absolute throughputs on Server A) — consumed by the
//!   performance model, the RLAS optimizer and the simulator;
//! * a **real executable implementation** ([`brisk_runtime::AppRuntime`])
//!   whose operators do the actual work (splitting sentences, updating
//!   hashmaps, scoring transactions, running the Linear Road logic) — run
//!   by the threaded engine in the examples and integration tests.
//!
//! | App | Topology | Character |
//! |---|---|---|
//! | [`word_count`] (WC) | spout → parser → splitter → counter → sink | high fan-out (splitter selectivity 10), small tuples |
//! | [`fraud_detection`] (FD) | spout → parser → predictor → sink | compute-heavy predictor, large tuples |
//! | [`spike_detection`] (SD) | spout → parser → moving-average → spike-detect → sink | keyed window state |
//! | [`linear_road`] (LR) | 11 operators, multi-stream (Figure 18c, Table 8) | complex topology, per-stream selectivities |

pub mod fraud_detection;
pub mod generators;
pub mod linear_road;
pub mod spike_detection;
pub mod word_count;

use brisk_dag::LogicalTopology;

/// The clock (GHz) the paper's published per-tuple nanosecond costs were
/// measured at: Server A's Xeon E7-8890 runs at 1.2 GHz.
pub const CALIBRATION_GHZ: f64 = 1.2;

/// All four applications by paper abbreviation, for experiment sweeps.
pub fn all_topologies() -> Vec<(&'static str, LogicalTopology)> {
    vec![
        ("WC", word_count::topology()),
        ("FD", fraud_detection::topology()),
        ("SD", spike_detection::topology()),
        ("LR", linear_road::topology()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_topologies_build_and_validate() {
        let apps = all_topologies();
        assert_eq!(apps.len(), 4);
        for (name, t) in apps {
            assert!(t.operator_count() >= 4, "{name} too small");
            assert!(!t.spouts().is_empty(), "{name} has no spout");
            assert!(!t.sinks().is_empty(), "{name} has no sink");
        }
    }

    #[test]
    fn all_apps_have_runnable_implementations() {
        assert!(word_count::app().validate().is_ok());
        assert!(fraud_detection::app().validate().is_ok());
        assert!(spike_detection::app().validate().is_ok());
        assert!(linear_road::app().validate().is_ok());
    }
}
