//! Deterministic workload generators.
//!
//! The paper's spouts synthesize their inputs ("Spout continuously generates
//! new tuple containing a sentence with ten random words"); these generators
//! reproduce that with seeded RNGs so every run is repeatable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipf-distributed index sampler (word popularity is famously Zipfian).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Sample a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cumulative.partition_point(|&c| c < u)
    }
}

/// Sentences of `words_per_sentence` words drawn from a Zipfian vocabulary
/// (the WC workload).
#[derive(Debug, Clone)]
pub struct SentenceGenerator {
    vocabulary: Vec<String>,
    zipf: Zipf,
    words_per_sentence: usize,
    rng: StdRng,
    produced: u64,
    // (after_sentences, new_exponent): drifting-workload hook that shifts
    // which keys are hot mid-run.
    shift: Option<(u64, f64)>,
}

impl SentenceGenerator {
    /// Generator over a `vocab` word vocabulary.
    pub fn new(seed: u64, vocab: usize, words_per_sentence: usize) -> SentenceGenerator {
        let vocabulary = (0..vocab).map(|i| format!("word{i:04}")).collect();
        SentenceGenerator {
            vocabulary,
            zipf: Zipf::new(vocab, 1.0),
            words_per_sentence,
            rng: StdRng::seed_from_u64(seed),
            produced: 0,
            shift: None,
        }
    }

    /// Schedule a key-skew shift: after this generator has produced `after`
    /// sentences, the vocabulary distribution is rebuilt with Zipf exponent
    /// `exponent`. The shift is part of the deterministic stream — replaying
    /// the same seed with the same shift reproduces the same sentences.
    pub fn with_skew_shift(mut self, after: u64, exponent: f64) -> SentenceGenerator {
        self.shift = Some((after, exponent));
        self
    }

    /// Sentences produced so far (including skipped ones).
    pub fn produced(&self) -> u64 {
        self.produced
    }

    fn apply_shift(&mut self) {
        if let Some((after, exponent)) = self.shift {
            if self.produced == after {
                self.zipf = Zipf::new(self.vocabulary.len(), exponent);
            }
        }
    }

    /// Next sentence.
    pub fn next_sentence(&mut self) -> String {
        self.apply_shift();
        let mut s = String::with_capacity(self.words_per_sentence * 9);
        for i in 0..self.words_per_sentence {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(&self.vocabulary[self.zipf.sample(&mut self.rng)]);
        }
        self.produced += 1;
        s
    }

    /// Advance the stream by `n` sentences without materialising them —
    /// samples the same RNG draws as [`next_sentence`](Self::next_sentence)
    /// but skips string building. Used to replay a migrated spout's position
    /// cheaply.
    pub fn skip_sentences(&mut self, n: u64) {
        for _ in 0..n {
            self.apply_shift();
            for _ in 0..self.words_per_sentence {
                self.zipf.sample(&mut self.rng);
            }
            self.produced += 1;
        }
    }
}

/// A credit-card style transaction record (the FD workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transaction {
    /// Account identifier.
    pub account: u32,
    /// Cents.
    pub amount: i64,
    /// Merchant category code.
    pub category: u16,
    /// Coarse geo bucket.
    pub location: u16,
    /// Sequence number within the account.
    pub seq: u32,
}

/// Seeded transaction stream; a small fraction follows a "fraudulent"
/// pattern (rapid high-amount category jumps).
#[derive(Debug, Clone)]
pub struct TransactionGenerator {
    rng: StdRng,
    accounts: u32,
    seq: u32,
}

impl TransactionGenerator {
    /// Generator over `accounts` distinct accounts.
    pub fn new(seed: u64, accounts: u32) -> TransactionGenerator {
        assert!(accounts > 0);
        TransactionGenerator {
            rng: StdRng::seed_from_u64(seed),
            accounts,
            seq: 0,
        }
    }

    /// Next transaction.
    pub fn next_transaction(&mut self) -> Transaction {
        self.seq = self.seq.wrapping_add(1);
        let fraudulent = self.rng.gen_ratio(1, 50);
        let amount = if fraudulent {
            self.rng.gen_range(90_000..500_000)
        } else {
            self.rng.gen_range(100..20_000)
        };
        Transaction {
            account: self.rng.gen_range(0..self.accounts),
            amount,
            category: self.rng.gen_range(0..32),
            location: if fraudulent {
                self.rng.gen_range(900..1000)
            } else {
                self.rng.gen_range(0..100)
            },
            seq: self.seq,
        }
    }

    /// Advance the stream by `n` transactions, discarding them (replays a
    /// migrated spout's position; transactions are cheap Copy records).
    pub fn skip_transactions(&mut self, n: u64) {
        for _ in 0..n {
            self.next_transaction();
        }
    }
}

/// A sensor reading (the SD workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorReading {
    /// Device identifier.
    pub device: u32,
    /// Measured value; occasional spikes far outside the baseline.
    pub value: f64,
}

/// Seeded sensor stream with a configurable spike probability.
#[derive(Debug, Clone)]
pub struct SensorGenerator {
    rng: StdRng,
    devices: u32,
}

impl SensorGenerator {
    /// Generator over `devices` sensors.
    pub fn new(seed: u64, devices: u32) -> SensorGenerator {
        assert!(devices > 0);
        SensorGenerator {
            rng: StdRng::seed_from_u64(seed),
            devices,
        }
    }

    /// Next reading (≈2% spikes at 10× baseline).
    pub fn next_reading(&mut self) -> SensorReading {
        let spike = self.rng.gen_ratio(1, 50);
        let base: f64 = self.rng.gen_range(20.0..30.0);
        SensorReading {
            device: self.rng.gen_range(0..self.devices),
            value: if spike { base * 10.0 } else { base },
        }
    }

    /// Advance the stream by `n` readings, discarding them.
    pub fn skip_readings(&mut self, n: u64) {
        for _ in 0..n {
            self.next_reading();
        }
    }
}

/// Linear Road input events (Appendix B / the original LR benchmark).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrEvent {
    /// A vehicle position report (type 0 in the LR spec): ~99% of input.
    Position {
        /// Vehicle id.
        vehicle: u32,
        /// Average speed in the last interval, mph.
        speed: u16,
        /// Expressway segment (0..100).
        segment: u16,
        /// Travel lane.
        lane: u8,
    },
    /// Account-balance query (type 2): rare.
    AccountBalance {
        /// Vehicle id.
        vehicle: u32,
    },
    /// Daily-expenditure query (type 3): rare.
    DailyExpenditure {
        /// Vehicle id.
        vehicle: u32,
    },
}

/// Seeded Linear Road event stream: ≈99% position reports, the remainder
/// split between the two query types (Table 8's Dispatcher selectivities).
#[derive(Debug, Clone)]
pub struct LrGenerator {
    rng: StdRng,
    vehicles: u32,
}

impl LrGenerator {
    /// Generator over `vehicles` cars.
    pub fn new(seed: u64, vehicles: u32) -> LrGenerator {
        assert!(vehicles > 0);
        LrGenerator {
            rng: StdRng::seed_from_u64(seed),
            vehicles,
        }
    }

    /// Next event.
    pub fn next_event(&mut self) -> LrEvent {
        let vehicle = self.rng.gen_range(0..self.vehicles);
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        if roll < 0.99 {
            LrEvent::Position {
                vehicle,
                speed: self.rng.gen_range(0..100),
                segment: self.rng.gen_range(0..100),
                lane: self.rng.gen_range(0..4),
            }
        } else if roll < 0.995 {
            LrEvent::AccountBalance { vehicle }
        } else {
            LrEvent::DailyExpenditure { vehicle }
        }
    }

    /// Advance the stream by `n` events, discarding them.
    pub fn skip_events(&mut self, n: u64) {
        for _ in 0..n {
            self.next_event();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_towards_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[90]);
        // Rank 0 of Zipf(1.0, 100) carries ~1/ln(100+γ) ≈ 19% of mass.
        assert!(counts[0] > 2_500 && counts[0] < 5_000, "{}", counts[0]);
    }

    #[test]
    fn sentences_have_requested_arity() {
        let mut g = SentenceGenerator::new(7, 1000, 10);
        for _ in 0..50 {
            let s = g.next_sentence();
            assert_eq!(s.split(' ').count(), 10);
        }
    }

    #[test]
    fn sentence_generator_is_deterministic() {
        let mut a = SentenceGenerator::new(42, 100, 10);
        let mut b = SentenceGenerator::new(42, 100, 10);
        for _ in 0..10 {
            assert_eq!(a.next_sentence(), b.next_sentence());
        }
    }

    #[test]
    fn skip_sentences_matches_generation() {
        let mut a = SentenceGenerator::new(42, 100, 10);
        let mut b = SentenceGenerator::new(42, 100, 10);
        for _ in 0..25 {
            a.next_sentence();
        }
        b.skip_sentences(25);
        assert_eq!(a.produced(), b.produced());
        for _ in 0..10 {
            assert_eq!(a.next_sentence(), b.next_sentence());
        }
    }

    #[test]
    fn skew_shift_is_deterministic_across_skip() {
        let mut a = SentenceGenerator::new(7, 200, 10).with_skew_shift(20, 2.0);
        let mut b = SentenceGenerator::new(7, 200, 10).with_skew_shift(20, 2.0);
        for _ in 0..30 {
            a.next_sentence();
        }
        b.skip_sentences(30);
        for _ in 0..10 {
            assert_eq!(a.next_sentence(), b.next_sentence());
        }
    }

    #[test]
    fn skew_shift_changes_the_hot_set() {
        // A strong exponent concentrates mass on rank 0 much harder than 1.0.
        let mut g = SentenceGenerator::new(3, 100, 10).with_skew_shift(2_000, 3.0);
        let count_hot = |g: &mut SentenceGenerator, n: u64| {
            let mut hot = 0usize;
            for _ in 0..n {
                hot += g
                    .next_sentence()
                    .split(' ')
                    .filter(|w| *w == "word0000")
                    .count();
            }
            hot
        };
        let before = count_hot(&mut g, 2_000);
        let after = count_hot(&mut g, 2_000);
        assert!(
            after > before * 2,
            "hot-word mass should jump after the shift: {before} -> {after}"
        );
    }

    #[test]
    fn transaction_skip_matches_generation() {
        let mut a = TransactionGenerator::new(5, 100);
        let mut b = TransactionGenerator::new(5, 100);
        for _ in 0..40 {
            a.next_transaction();
        }
        b.skip_transactions(40);
        assert_eq!(a.next_transaction(), b.next_transaction());
    }

    #[test]
    fn transactions_within_ranges() {
        let mut g = TransactionGenerator::new(3, 500);
        let mut fraud = 0;
        for _ in 0..5000 {
            let t = g.next_transaction();
            assert!(t.account < 500);
            assert!(t.amount > 0);
            if t.amount >= 90_000 {
                fraud += 1;
            }
        }
        // ~2% fraud rate.
        assert!((50..300).contains(&fraud), "fraud count {fraud}");
    }

    #[test]
    fn sensor_spikes_are_rare_but_present() {
        let mut g = SensorGenerator::new(9, 64);
        let spikes = (0..5000).filter(|_| g.next_reading().value > 100.0).count();
        assert!((30..300).contains(&spikes), "spikes {spikes}");
    }

    #[test]
    fn lr_mix_matches_dispatcher_selectivity() {
        let mut g = LrGenerator::new(11, 1000);
        let mut pos = 0usize;
        let mut bal = 0usize;
        let mut exp = 0usize;
        for _ in 0..100_000 {
            match g.next_event() {
                LrEvent::Position { .. } => pos += 1,
                LrEvent::AccountBalance { .. } => bal += 1,
                LrEvent::DailyExpenditure { .. } => exp += 1,
            }
        }
        let pos_frac = pos as f64 / 100_000.0;
        assert!(
            (pos_frac - 0.99).abs() < 0.005,
            "position fraction {pos_frac}"
        );
        assert!(bal > 100 && exp > 100);
    }
}
