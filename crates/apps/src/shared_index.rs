//! Shared Index (SI) — one arranged index, maintained once, read by two
//! queries, after Shared Arrangements (McSherry et al., PAPERS.md).
//!
//! ```text
//! update_spout ─KeyBy─▶ arrange ─"arranged" Broadcast─▶ point_query ─▶ sink
//!                              └─"arranged" Broadcast─▶ window_agg ──▶ sink
//! query_spout ──────────"queries" Shuffle─────────────▶ point_query
//! ```
//!
//! The `arrange` bolt maintains the authoritative keyed index (latest
//! value per key) and republishes every accepted update on the
//! `arranged` stream. Both downstream queries *subscribe to the same
//! stream*: a point-lookup answering probes from a second spout, and a
//! sliding-window per-key aggregate. Because the two `arranged` edges
//! share one slab-backed batch builder in the collector (the shared-
//! arrangement path of the data plane), attaching the second query does
//! not double the maintainer's seal count — consumers hold refcounted
//! slab handles, not copies. The conformance tier pins this: with
//! `jumbo_size(1)` every push seals, so total slab checkouts stay at
//! "one maintainer's worth" (`3·updates + 2·queries`) instead of the
//! `4·updates + 2·queries` a per-edge copy would cost.

use crate::CALIBRATION_GHZ;
use brisk_dag::{CostProfile, LogicalTopology, Partitioning, TopologyBuilder, DEFAULT_STREAM};
use brisk_runtime::{AppRuntime, Collector, DynBolt, DynSpout, SpoutStatus, StateEntry, TupleView};
use std::collections::{HashMap, VecDeque};

/// Operator names. `arrange` sits at index 1 so harness knobs that drift
/// "the first bolt" target the index maintainer.
pub const OPERATORS: [&str; 6] = [
    "update_spout",
    "arrange",
    "query_spout",
    "point_query",
    "window_agg",
    "sink",
];

/// Key domain of the arranged index.
pub const NUM_KEYS: u64 = 64;

/// Logical time per update index.
pub const TICK_NS: u64 = 1_000;

/// Aggregation window of `window_agg` in event-time nanoseconds.
pub const WINDOW_NS: u64 = 128 * TICK_NS;

/// Updates per probe: the query spout carries 1/4 of a sized budget.
pub const UPDATES_PER_QUERY: u64 = 3;

/// How a sized input budget splits into (updates, queries).
pub fn side_totals(total_events: u64) -> (u64, u64) {
    let queries = total_events / (UPDATES_PER_QUERY + 1);
    (total_events - queries, queries)
}

fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Key of the `index`-th update (pure function).
pub fn update_key(index: u64) -> u64 {
    mix64(index ^ 0x5550_4454) % NUM_KEYS
}

/// Value of the `index`-th update (pure function).
pub fn update_value(index: u64) -> u64 {
    mix64(index.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

/// Key probed by the `index`-th query (pure function).
pub fn query_key(index: u64) -> u64 {
    mix64(index ^ 0x5052_4f42) % NUM_KEYS
}

/// One index update flowing `update_spout → arrange → queries`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexUpdate {
    /// Index key.
    pub key: u64,
    /// New value.
    pub value: u64,
    /// Global update sequence number.
    pub seq: u64,
}

/// One point-lookup probe from the query spout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Key to look up.
    pub key: u64,
    /// Global probe sequence number.
    pub seq: u64,
}

/// Point-lookup answer (exactly one per probe; misses carry `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryResult {
    /// The probed key.
    pub key: u64,
    /// Probe sequence this answers.
    pub probe_seq: u64,
    /// Latest arranged value, if the key was present.
    pub value: Option<u64>,
}

/// Windowed per-key aggregate delta (one per arranged update).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggDelta {
    /// The updated key.
    pub key: u64,
    /// Wrapping sum of the key's values inside the sliding window.
    pub window_sum: u64,
    /// Live entries in the key's window.
    pub window_len: u32,
}

/// The SI logical topology with calibrated cost profiles.
pub fn topology() -> LogicalTopology {
    let ghz = CALIBRATION_GHZ;
    let mut b = TopologyBuilder::new("shared_index");
    let updates = b.add_spout(
        "update_spout",
        CostProfile::from_ns_at_ghz(300.0, 45.0, 96.0, 48.0, ghz),
    );
    let arrange = b.add_bolt(
        "arrange",
        // The state term prices the index upsert; Te covers republication.
        CostProfile::from_ns_at_ghz(500.0, 60.0, 160.0, 48.0, ghz).with_state_access(250.0 * ghz),
    );
    let queries = b.add_spout(
        "query_spout",
        CostProfile::from_ns_at_ghz(250.0, 45.0, 64.0, 32.0, ghz),
    );
    let point = b.add_bolt(
        "point_query",
        CostProfile::from_ns_at_ghz(400.0, 55.0, 96.0, 40.0, ghz).with_state_access(150.0 * ghz),
    );
    let agg = b.add_bolt(
        "window_agg",
        CostProfile::from_ns_at_ghz(700.0, 60.0, 128.0, 40.0, ghz).with_state_access(300.0 * ghz),
    );
    let sink = b.add_sink(
        "sink",
        CostProfile::from_ns_at_ghz(45.0, 10.0, 32.0, 16.0, ghz),
    );
    b.connect(updates, DEFAULT_STREAM, arrange, Partitioning::KeyBy);
    // Both queries subscribe to the SAME arranged stream: the collector
    // maintains one shared builder for the two Broadcast edges, so the
    // second subscriber costs a refcount bump per batch, not a copy.
    b.connect(arrange, "arranged", point, Partitioning::Broadcast);
    b.connect(arrange, "arranged", agg, Partitioning::Broadcast);
    b.connect(queries, "queries", point, Partitioning::Shuffle);
    b.connect_shuffle(point, sink);
    b.connect_shuffle(agg, sink);
    // Arrange republishes each accepted update under its input key.
    b.set_key_preserving(arrange);
    b.set_selectivity(arrange, None, "arranged", 1.0);
    // point_query answers probes only; arranged tuples just maintain its
    // mirror of the index.
    b.set_selectivity(point, Some("arranged"), DEFAULT_STREAM, 0.0);
    b.set_selectivity(point, Some("queries"), DEFAULT_STREAM, 1.0);
    b.build().expect("SI topology is valid")
}

struct SiSpout<F: FnMut(u64, &mut Collector)> {
    replica: u64,
    stride: u64,
    next_index: u64,
    emitted: u64,
    remaining: u64,
    emit: F,
}

impl<F: FnMut(u64, &mut Collector) + Send> DynSpout for SiSpout<F> {
    fn next(&mut self, collector: &mut Collector) -> SpoutStatus {
        if self.remaining == 0 {
            return SpoutStatus::Exhausted;
        }
        self.remaining -= 1;
        self.emitted += 1;
        let idx = self.next_index;
        self.next_index += self.stride;
        (self.emit)(idx, collector);
        SpoutStatus::Emitted(1)
    }

    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        Some(vec![(
            self.replica,
            crate::spout_state::encode(self.next_index, self.emitted, self.remaining),
        )])
    }

    fn install_state(&mut self, entries: Vec<StateEntry>) {
        if let Some((next_index, emitted, remaining)) = crate::spout_state::merge(&entries) {
            self.next_index = next_index;
            self.emitted = emitted;
            self.remaining = remaining;
        } else {
            self.remaining = 0;
        }
    }
}

/// The index maintainer: latest value per key, republished downstream.
struct Arrange {
    latest: HashMap<u64, (u64, u64)>,
}

impl DynBolt for Arrange {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(u) = tuple.value::<IndexUpdate>() else {
            return;
        };
        // Last-writer-wins by sequence number, so replays and migrations
        // converge on the same arrangement regardless of interleaving.
        let slot = self.latest.entry(u.key).or_insert((0, 0));
        if u.seq >= slot.0 {
            *slot = (u.seq, u.value);
        }
        collector.send("arranged", *u, tuple.event_ns, u.key);
    }

    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        Some(
            self.latest
                .iter()
                .map(|(&key, &(seq, value))| {
                    let mut b = Vec::with_capacity(16);
                    b.extend_from_slice(&seq.to_le_bytes());
                    b.extend_from_slice(&value.to_le_bytes());
                    (key, b)
                })
                .collect(),
        )
    }

    fn install_state(&mut self, entries: Vec<StateEntry>) {
        for (key, bytes) in entries {
            if bytes.len() != 16 {
                continue;
            }
            let seq = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
            let value = u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes"));
            let slot = self.latest.entry(key).or_insert((0, 0));
            if seq >= slot.0 {
                *slot = (seq, value);
            }
        }
    }
}

/// Point lookup over a broadcast mirror of the arrangement.
struct PointQuery {
    mirror: HashMap<u64, (u64, u64)>,
}

impl DynBolt for PointQuery {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        if let Some(u) = tuple.value::<IndexUpdate>() {
            let slot = self.mirror.entry(u.key).or_insert((0, 0));
            if u.seq >= slot.0 {
                *slot = (u.seq, u.value);
            }
        } else if let Some(p) = tuple.value::<Probe>() {
            collector.send_default(
                QueryResult {
                    key: p.key,
                    probe_seq: p.seq,
                    value: self.mirror.get(&p.key).map(|&(_, v)| v),
                },
                tuple.event_ns,
                p.key,
            );
        }
    }
}

/// Sliding-window per-key sum over the arranged stream.
struct WindowAgg {
    windows: HashMap<u64, VecDeque<(u64, u64)>>,
}

impl DynBolt for WindowAgg {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(u) = tuple.value::<IndexUpdate>() else {
            return;
        };
        let window = self.windows.entry(u.key).or_default();
        window.push_back((tuple.event_ns, u.value));
        // Updates for one key arrive in event-time order from the single
        // logical update stream, so the front is always the oldest.
        while let Some(&(ts, _)) = window.front() {
            if ts + WINDOW_NS <= tuple.event_ns {
                window.pop_front();
            } else {
                break;
            }
        }
        collector.send_default(
            AggDelta {
                key: u.key,
                window_sum: window.iter().fold(0u64, |a, &(_, v)| a.wrapping_add(v)),
                window_len: window.len() as u32,
            },
            tuple.event_ns,
            u.key,
        );
    }
}

struct SiSink;

impl DynBolt for SiSink {
    fn execute(&mut self, _tuple: &TupleView<'_>, _collector: &mut Collector) {}
}

/// The runnable SI application, streaming until stopped.
pub fn app() -> AppRuntime {
    app_sized(u64::MAX)
}

/// The runnable SI application with a deterministic input budget of
/// `total_events` events split 3:1 between index updates and probes.
pub fn app_sized(total_events: u64) -> AppRuntime {
    let t = topology();
    let ids: Vec<_> = OPERATORS
        .iter()
        .map(|n| t.find(n).expect("operator exists"))
        .collect();
    let (update_total, query_total) = side_totals(total_events);
    AppRuntime::new(t)
        .spout(ids[0], move |ctx| SiSpout {
            replica: ctx.replica as u64,
            stride: ctx.replicas as u64,
            next_index: ctx.replica as u64,
            emitted: 0,
            remaining: crate::replica_share(update_total, ctx.replica, ctx.replicas),
            emit: |idx, c: &mut Collector| {
                let u = IndexUpdate {
                    key: update_key(idx),
                    value: update_value(idx),
                    seq: idx,
                };
                c.send_default(u, (idx + 1) * TICK_NS, u.key);
            },
        })
        .bolt(ids[1], |_| Arrange {
            latest: HashMap::new(),
        })
        .spout(ids[2], move |ctx| SiSpout {
            replica: ctx.replica as u64,
            stride: ctx.replicas as u64,
            next_index: ctx.replica as u64,
            emitted: 0,
            remaining: crate::replica_share(query_total, ctx.replica, ctx.replicas),
            emit: |idx, c: &mut Collector| {
                let p = Probe {
                    key: query_key(idx),
                    seq: idx,
                };
                c.send("queries", p, (idx + 1) * TICK_NS, p.key);
            },
        })
        .bolt(ids[3], |_| PointQuery {
            mirror: HashMap::new(),
        })
        .bolt(ids[4], |_| WindowAgg {
            windows: HashMap::new(),
        })
        .sink(ids[5], |_| SiSink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shape() {
        let t = topology();
        assert_eq!(t.operator_count(), 6);
        let arrange = t.find("arrange").expect("exists");
        // The arranged stream fans out to BOTH queries via Broadcast.
        let arranged: Vec<_> = t
            .outgoing_edges(arrange)
            .filter(|e| e.stream == "arranged")
            .collect();
        assert_eq!(arranged.len(), 2);
        assert!(arranged
            .iter()
            .all(|e| e.partitioning == Partitioning::Broadcast));
        assert!(t.operator(arrange).cost.state_cycles > 0.0);
    }

    #[test]
    fn side_totals_conserve_the_budget() {
        for total in [0u64, 1, 4, 7, 1000] {
            let (u, q) = side_totals(total);
            assert_eq!(u + q, total);
            assert!(u >= q * UPDATES_PER_QUERY);
        }
    }

    #[test]
    fn point_query_answers_every_probe_exactly_once() {
        let t = topology();
        let point = t.find("point_query").expect("exists");
        let (mut collector, taps) = Collector::capture(&t, point, 1024);
        let mut bolt = PointQuery {
            mirror: HashMap::new(),
        };
        // Interleave updates and probes; count answers.
        for i in 0..60u64 {
            let u = IndexUpdate {
                key: update_key(i),
                value: update_value(i),
                seq: i,
            };
            bolt.execute(
                &TupleView::of_value(&u, (i + 1) * TICK_NS, u.key),
                &mut collector,
            );
            if i % 3 == 0 {
                let p = Probe {
                    key: query_key(i),
                    seq: i,
                };
                bolt.execute(
                    &TupleView::of_value(&p, (i + 1) * TICK_NS, p.key),
                    &mut collector,
                );
            }
        }
        collector.flush_all();
        let mut answers = 0usize;
        for (_, queue) in taps {
            while let Some(jumbo) = queue.try_pop() {
                answers += jumbo.batch.len();
            }
        }
        assert_eq!(answers, 20, "one result per probe, none per update");
    }

    #[test]
    fn window_agg_evicts_by_event_time() {
        let t = topology();
        let agg = t.find("window_agg").expect("exists");
        let (mut collector, _taps) = Collector::capture(&t, agg, 1024);
        let mut bolt = WindowAgg {
            windows: HashMap::new(),
        };
        // Same key repeatedly: the window must cap at WINDOW_NS/TICK_NS.
        for i in 0..400u64 {
            let u = IndexUpdate {
                key: 7,
                value: 1,
                seq: i,
            };
            bolt.execute(
                &TupleView::of_value(&u, (i + 1) * TICK_NS, 7),
                &mut collector,
            );
        }
        let len = bolt.windows[&7].len() as u64;
        assert_eq!(len, WINDOW_NS / TICK_NS);
        collector.flush_all();
    }

    #[test]
    fn app_validates() {
        assert!(app().validate().is_ok());
    }
}
