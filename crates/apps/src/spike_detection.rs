//! Spike Detection (SD) — Figure 18b of the paper.
//!
//! `spout → parser → moving-average → spike-detect → sink`, all
//! selectivities 1 ("a signal is passed to Sink in the Spike detection
//! operator of SD regardless of whether detection is triggered",
//! Appendix B). The moving average keeps a per-device sliding window; the
//! detector compares each reading against its device's average.

use crate::generators::{SensorGenerator, SensorReading};
use crate::CALIBRATION_GHZ;
use brisk_dag::{CostProfile, LogicalTopology, Partitioning, TopologyBuilder, DEFAULT_STREAM};
use brisk_runtime::{AppRuntime, Collector, DynBolt, DynSpout, SpoutStatus, StateEntry, TupleView};
use std::collections::{HashMap, VecDeque};

/// Operator names, in pipeline order.
pub const OPERATORS: [&str; 5] = ["spout", "parser", "moving_average", "spike_detect", "sink"];

/// Sliding-window length per device.
pub const WINDOW: usize = 16;

/// Spike threshold: reading > `THRESHOLD` × window average.
pub const THRESHOLD: f64 = 3.0;

/// The SD logical topology with calibrated cost profiles.
pub fn topology() -> LogicalTopology {
    let ghz = CALIBRATION_GHZ;
    let mut b = TopologyBuilder::new("spike_detection");
    let spout = b.add_spout(
        "spout",
        CostProfile::from_ns_at_ghz(350.0, 45.0, 120.0, 64.0, ghz),
    );
    let parser = b.add_bolt(
        "parser",
        CostProfile::from_ns_at_ghz(200.0, 40.0, 96.0, 64.0, ghz),
    );
    let moving_average = b.add_bolt(
        "moving_average",
        CostProfile::from_ns_at_ghz(6200.0, 80.0, 260.0, 72.0, ghz),
    );
    let spike_detect = b.add_bolt(
        "spike_detect",
        CostProfile::from_ns_at_ghz(3800.0, 80.0, 180.0, 32.0, ghz),
    );
    let sink = b.add_sink(
        "sink",
        CostProfile::from_ns_at_ghz(45.0, 10.0, 32.0, 16.0, ghz),
    );
    b.connect_shuffle(spout, parser);
    // Window state is per device: key partitioning.
    b.connect(parser, DEFAULT_STREAM, moving_average, Partitioning::KeyBy);
    b.connect(
        moving_average,
        DEFAULT_STREAM,
        spike_detect,
        Partitioning::KeyBy,
    );
    b.connect_shuffle(spike_detect, sink);
    // Both bolts emit under the device id their input arrived with, so
    // the back-to-back KeyBy edges are *aligned*: at equal replica counts
    // every moving-average replica feeds its own spike-detect twin, and
    // the pair fuses into one executor (pairwise operator fusion).
    b.set_key_preserving(parser);
    b.set_key_preserving(moving_average);
    b.build().expect("SD topology is valid")
}

/// A reading paired with its device's current moving average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AveragedReading {
    /// The raw reading.
    pub reading: SensorReading,
    /// Moving average over the device's window.
    pub average: f64,
}

/// Spike verdict (emitted for every reading; selectivity 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeSignal {
    /// Device that produced the reading.
    pub device: u32,
    /// The reading value.
    pub value: f64,
    /// Whether the value exceeded `THRESHOLD` × average.
    pub spike: bool,
}

struct SdSpout {
    replica: u64,
    seed: u64,
    emitted: u64,
    generator: SensorGenerator,
    remaining: u64,
}

impl DynSpout for SdSpout {
    fn next(&mut self, collector: &mut Collector) -> SpoutStatus {
        if self.remaining == 0 {
            return SpoutStatus::Exhausted;
        }
        self.remaining -= 1;
        self.emitted += 1;
        let r = self.generator.next_reading();
        let now = collector.now_ns();
        collector.send_default(r, now, r.device as u64);
        SpoutStatus::Emitted(1)
    }

    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        Some(vec![(
            self.replica,
            crate::spout_state::encode(self.seed, self.emitted, self.remaining),
        )])
    }

    fn install_state(&mut self, entries: Vec<StateEntry>) {
        if let Some((seed, emitted, remaining)) = crate::spout_state::merge(&entries) {
            self.seed = seed;
            self.emitted = emitted;
            self.generator = SensorGenerator::new(seed, 256);
            self.generator.skip_readings(emitted);
            self.remaining = remaining;
        } else {
            // Empty hand-off: this replica got no share of the migrated
            // budget. Keeping the factory default would emit it twice.
            self.remaining = 0;
        }
    }
}

struct SdParser;

impl DynBolt for SdParser {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(r) = tuple.value::<SensorReading>() else {
            return;
        };
        if r.value.is_finite() {
            collector.send_default(*r, tuple.event_ns, tuple.key);
        }
    }
}

struct SdMovingAverage {
    windows: HashMap<u32, VecDeque<f64>>,
}

impl DynBolt for SdMovingAverage {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(r) = tuple.value::<SensorReading>() else {
            return;
        };
        let window = self.windows.entry(r.device).or_default();
        window.push_back(r.value);
        if window.len() > WINDOW {
            window.pop_front();
        }
        let average = window.iter().sum::<f64>() / window.len() as f64;
        collector.send_default(
            AveragedReading {
                reading: *r,
                average,
            },
            tuple.event_ns,
            r.device as u64,
        );
    }
}

struct SdSpikeDetect;

impl DynBolt for SdSpikeDetect {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        let Some(a) = tuple.value::<AveragedReading>() else {
            return;
        };
        collector.send_default(
            SpikeSignal {
                device: a.reading.device,
                value: a.reading.value,
                spike: a.reading.value > THRESHOLD * a.average,
            },
            tuple.event_ns,
            a.reading.device as u64,
        );
    }
}

struct SdSink;

impl DynBolt for SdSink {
    fn execute(&mut self, _tuple: &TupleView<'_>, _collector: &mut Collector) {}
}

/// The runnable SD application, generating readings until stopped.
pub fn app() -> AppRuntime {
    app_sized(u64::MAX)
}

/// The runnable SD application with a deterministic input budget of
/// `total_events` sensor readings split across spout replicas.
pub fn app_sized(total_events: u64) -> AppRuntime {
    let t = topology();
    let ids: Vec<_> = OPERATORS
        .iter()
        .map(|n| t.find(n).expect("operator exists"))
        .collect();
    AppRuntime::new(t)
        .spout(ids[0], move |ctx| {
            let seed = 0x5D ^ ctx.replica as u64;
            SdSpout {
                replica: ctx.replica as u64,
                seed,
                emitted: 0,
                generator: SensorGenerator::new(seed, 256),
                remaining: crate::replica_share(total_events, ctx.replica, ctx.replicas),
            }
        })
        .bolt(ids[1], |_| SdParser)
        .bolt(ids[2], |_| SdMovingAverage {
            windows: HashMap::new(),
        })
        .bolt(ids[3], |_| SdSpikeDetect)
        .sink(ids[4], |_| SdSink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shape() {
        let t = topology();
        assert_eq!(t.operator_count(), 5);
        let ma = t.find("moving_average").expect("exists");
        assert_eq!(t.producers_of(ma).len(), 1);
    }

    #[test]
    fn moving_average_window_math() {
        let mut windows: HashMap<u32, VecDeque<f64>> = HashMap::new();
        let w = windows.entry(7).or_default();
        for v in [10.0, 20.0, 30.0] {
            w.push_back(v);
        }
        let avg = w.iter().sum::<f64>() / w.len() as f64;
        assert!((avg - 20.0).abs() < 1e-12);
    }

    #[test]
    fn spike_threshold_semantics() {
        let quiet = SpikeSignal {
            device: 0,
            value: 25.0,
            spike: 25.0 > THRESHOLD * 25.0,
        };
        assert!(!quiet.spike);
        let loud = SpikeSignal {
            device: 0,
            value: 250.0,
            spike: 250.0 > THRESHOLD * 25.0,
        };
        assert!(loud.spike);
    }

    #[test]
    fn app_validates() {
        assert!(app().validate().is_ok());
    }
}
