//! Property tests for [`brisk_dag::FusionPlan`] invariants.
//!
//! Random linear pipelines with random partitionings, replica counts,
//! key-preserving flags and per-replica socket assignments; the plan must
//! always satisfy:
//!
//! * a fused edge never crosses a replica-count mismatch — producer and
//!   consumer counts are equal (the aligned pairwise rule subsumes the old
//!   1:1 rule);
//! * at counts above one, a fused edge is Forward or KeyBy (the only
//!   strategies that can pin the `i → i` pairing);
//! * fused edges only connect per-replica-collocated pairs;
//! * spouts never fuse away;
//! * chains are acyclic: following `direct_host_of` reaches a fixed point
//!   within `operator_count` hops, and `root_host_of` agrees with it;
//! * fused sets are disjoint across hosts: every fused-away operator
//!   appears in exactly one chain, hosts appear only as chain roots.

use brisk_dag::{CostProfile, FusionPlan, OperatorId, Partitioning, TopologyBuilder};
use brisk_numa::SocketId;
use proptest::prelude::*;

const STRATEGIES: [Partitioning; 5] = [
    Partitioning::Shuffle,
    Partitioning::KeyBy,
    Partitioning::Broadcast,
    Partitioning::Global,
    Partitioning::Forward,
];

/// Deterministically expand the drawn parameters into a pipeline topology.
fn pipeline(
    n_ops: usize,
    strategy_picks: &[usize],
    preserving_picks: &[bool],
) -> brisk_dag::LogicalTopology {
    let mut b = TopologyBuilder::new("prop");
    let mut prev = b.add_spout("op0", CostProfile::trivial());
    for i in 1..n_ops {
        let op = if i + 1 == n_ops {
            b.add_sink(format!("op{i}"), CostProfile::trivial())
        } else {
            b.add_bolt(format!("op{i}"), CostProfile::trivial())
        };
        let strategy = STRATEGIES[strategy_picks[i - 1] % STRATEGIES.len()];
        b.connect(prev, brisk_dag::DEFAULT_STREAM, op, strategy);
        if preserving_picks[i - 1] {
            b.set_key_preserving(op);
        }
        prev = op;
    }
    b.build().expect("valid pipeline")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fusion_plan_invariants_hold(
        n_ops in 3usize..7,
        strategy_picks in prop::collection::vec(0usize..5, 6),
        preserving_picks in prop::collection::vec(0usize..2, 6),
        replication_picks in prop::collection::vec(1usize..4, 7),
        socket_picks in prop::collection::vec(0usize..2, 24),
    ) {
        let preserving: Vec<bool> = preserving_picks.iter().map(|&p| p == 1).collect();
        let topology = pipeline(n_ops, &strategy_picks, &preserving);
        let replication: Vec<usize> = (0..n_ops).map(|i| replication_picks[i]).collect();
        let total: usize = replication.iter().sum();
        let sockets: Vec<SocketId> =
            (0..total).map(|i| SocketId(socket_picks[i % 24])).collect();
        let plan = FusionPlan::compute(&topology, &replication, Some(&sockets));

        let replica_base: Vec<usize> = {
            let mut base = vec![0usize; n_ops];
            let mut acc = 0;
            for (op, b) in base.iter_mut().enumerate() {
                *b = acc;
                acc += replication[op];
            }
            base
        };

        // Per-edge invariants.
        for (lei, edge) in topology.edges().iter().enumerate() {
            if !plan.is_edge_fused(lei) {
                continue;
            }
            let (u, v) = (edge.from.0, edge.to.0);
            prop_assert!(
                replication[u] == replication[v],
                "fused edge {} crosses a replica-count mismatch", lei
            );
            if replication[v] > 1 {
                prop_assert!(
                    matches!(edge.partitioning, Partitioning::Forward | Partitioning::KeyBy),
                    "pairwise-fused edge {} uses {:?}", lei, edge.partitioning
                );
            }
            for r in 0..replication[v] {
                prop_assert!(
                    sockets[replica_base[u] + r] == sockets[replica_base[v] + r],
                    "fused edge {} pairs replicas across sockets", lei
                );
            }
            prop_assert!(
                plan.is_fused_away(edge.to),
                "edge {} fused but consumer keeps its executor", lei
            );
        }

        // Spouts never fuse away; chains terminate and stay consistent.
        let mut seen_in_chains = vec![0usize; n_ops];
        for (op, spec) in topology.operators() {
            if spec.kind == brisk_dag::OperatorKind::Spout {
                prop_assert!(!plan.is_fused_away(op), "spout fused away");
            }
            // Following direct hosts must reach a fixed point within n hops.
            let mut cur = op;
            for _ in 0..n_ops {
                let next = plan.direct_host_of(cur);
                if next == cur {
                    break;
                }
                cur = next;
            }
            prop_assert!(plan.direct_host_of(cur) == cur, "host chain cycles");
            prop_assert!(plan.root_host_of(op) == cur, "root disagrees with walk");
            prop_assert!(!plan.is_fused_away(cur), "chain root must keep its executor");
        }
        for chain in plan.chains() {
            prop_assert!(chain.len() > 1);
            prop_assert_eq!(plan.root_host_of(chain[0]), chain[0]);
            for &member in &chain {
                seen_in_chains[member.0] += 1;
            }
        }
        for (op, _) in topology.operators() {
            // Fused-away operators are listed by exactly one chain; a host
            // appears only as its own chain's root; everyone else nowhere.
            let is_root = plan.chains().iter().any(|c| c[0] == op);
            let expected = usize::from(plan.is_fused_away(op) || is_root);
            prop_assert!(
                seen_in_chains[op.0] == expected,
                "operator {:?} appears in the wrong number of chains", op
            );
        }

        // Executor accounting: spawned + fused-away replicas == total.
        let fused_replicas: usize = (0..n_ops)
            .filter(|&i| plan.is_fused_away(OperatorId(i)))
            .map(|i| replication[i])
            .sum();
        prop_assert_eq!(plan.spawned_executors(&replication) + fused_replicas, total);
    }

    /// The all-collocated relaxation (`replica_sockets = None`) fuses a
    /// superset of what any concrete socket assignment allows.
    #[test]
    fn unplaced_relaxation_is_a_superset(
        n_ops in 3usize..7,
        strategy_picks in prop::collection::vec(0usize..5, 6),
        preserving_picks in prop::collection::vec(0usize..2, 6),
        replication_picks in prop::collection::vec(1usize..4, 7),
        socket_picks in prop::collection::vec(0usize..2, 24),
    ) {
        let preserving: Vec<bool> = preserving_picks.iter().map(|&p| p == 1).collect();
        let topology = pipeline(n_ops, &strategy_picks, &preserving);
        let replication: Vec<usize> = (0..n_ops).map(|i| replication_picks[i]).collect();
        let total: usize = replication.iter().sum();
        let sockets: Vec<SocketId> =
            (0..total).map(|i| SocketId(socket_picks[i % 24])).collect();
        let placed = FusionPlan::compute(&topology, &replication, Some(&sockets));
        let relaxed = FusionPlan::compute(&topology, &replication, None);
        for lei in 0..topology.edges().len() {
            if placed.is_edge_fused(lei) {
                prop_assert!(relaxed.is_edge_fused(lei), "placement fused more than the relaxation");
            }
        }
        prop_assert!(relaxed.fused_op_count() >= placed.fused_op_count());
        prop_assert!(
            relaxed.spawned_executors(&replication) <= placed.spawned_executors(&replication)
        );
    }
}
