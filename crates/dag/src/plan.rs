//! Execution plans: replication + placement.
//!
//! "A streaming execution plan determines the number of replicas of each
//! operator (operator replication), as well as the way of allocating each
//! operator to the underlying CPU cores (operator placement)." — Section 1.
//!
//! Placement here is at socket granularity, matching the paper's model
//! (within a socket, replicas are spread across cores round-robin by the
//! executor/simulator).

use crate::graph::{ExecutionGraph, VertexId};
use brisk_numa::SocketId;

/// Socket assignment of every execution vertex; `None` = not yet placed
/// (B&B works on partial placements).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Placement {
    sockets: Vec<Option<SocketId>>,
}

impl Placement {
    /// A placement with every vertex unplaced.
    pub fn empty(vertex_count: usize) -> Placement {
        Placement {
            sockets: vec![None; vertex_count],
        }
    }

    /// A placement with every vertex on the same socket.
    pub fn all_on(vertex_count: usize, socket: SocketId) -> Placement {
        Placement {
            sockets: vec![Some(socket); vertex_count],
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.sockets.len()
    }

    /// True when no vertices are covered.
    pub fn is_empty(&self) -> bool {
        self.sockets.is_empty()
    }

    /// Socket of a vertex, if placed.
    pub fn socket_of(&self, v: VertexId) -> Option<SocketId> {
        self.sockets[v.0]
    }

    /// Place vertex `v` on `socket`.
    pub fn place(&mut self, v: VertexId, socket: SocketId) {
        self.sockets[v.0] = Some(socket);
    }

    /// Remove vertex `v`'s assignment.
    pub fn unplace(&mut self, v: VertexId) {
        self.sockets[v.0] = None;
    }

    /// Whether every vertex is placed.
    pub fn is_complete(&self) -> bool {
        self.sockets.iter().all(Option::is_some)
    }

    /// Number of placed vertices.
    pub fn placed_count(&self) -> usize {
        self.sockets.iter().filter(|s| s.is_some()).count()
    }

    /// Whether both vertices are placed on the same socket.
    pub fn collocated(&self, a: VertexId, b: VertexId) -> bool {
        match (self.sockets[a.0], self.sockets[b.0]) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Vertices placed on `socket`.
    pub fn vertices_on(&self, socket: SocketId) -> impl Iterator<Item = VertexId> + '_ {
        self.sockets
            .iter()
            .enumerate()
            .filter(move |(_, s)| **s == Some(socket))
            .map(|(i, _)| VertexId(i))
    }

    /// Distinct sockets in use.
    pub fn sockets_used(&self) -> Vec<SocketId> {
        let mut v: Vec<SocketId> = self.sockets.iter().flatten().copied().collect();
        v.sort();
        v.dedup();
        v
    }
}

/// A complete execution plan: per-operator replication, the compression
/// ratio the placement was computed at, and the placement itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// Replicas per operator (indexed by `OperatorId`).
    pub replication: Vec<usize>,
    /// Compression ratio of the placed execution graph.
    pub compress_ratio: usize,
    /// Socket assignment per execution vertex.
    pub placement: Placement,
}

impl ExecutionPlan {
    /// Plan with replication 1 everywhere and every vertex on socket 0 —
    /// the starting point of the scaling algorithm (Figure 4, label (0)).
    pub fn singleton(operator_count: usize) -> ExecutionPlan {
        ExecutionPlan {
            replication: vec![1; operator_count],
            compress_ratio: 1,
            placement: Placement::all_on(operator_count, SocketId(0)),
        }
    }

    /// Total number of replicas.
    pub fn total_replicas(&self) -> usize {
        self.replication.iter().sum()
    }

    /// Number of replicas (counting vertex multiplicity) on `socket`.
    pub fn replicas_on(&self, graph: &ExecutionGraph<'_>, socket: SocketId) -> usize {
        self.placement
            .vertices_on(socket)
            .map(|v| graph.vertex(v).multiplicity)
            .sum()
    }

    /// Pretty multi-line description (used by examples and experiments).
    pub fn describe(&self, graph: &ExecutionGraph<'_>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan: {} replicas in {} vertices (compress ratio {})",
            self.total_replicas(),
            graph.vertex_count(),
            self.compress_ratio
        );
        for (op, spec) in graph.topology().operators() {
            let homes: Vec<String> = graph
                .vertices_of(op)
                .iter()
                .map(|&v| match self.placement.socket_of(v) {
                    Some(s) => format!("{}x{}", s, graph.vertex(v).multiplicity),
                    None => "unplaced".to_string(),
                })
                .collect();
            let _ = writeln!(
                out,
                "  {:<16} x{:<3} -> [{}]",
                spec.name,
                self.replication[op.0],
                homes.join(", ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostProfile;
    use crate::topology::TopologyBuilder;

    fn graph_fixture(topology: &crate::topology::LogicalTopology) -> ExecutionGraph<'_> {
        ExecutionGraph::new(topology, &[2, 3, 1], 1)
    }

    fn linear3() -> crate::topology::LogicalTopology {
        let mut b = TopologyBuilder::new("lin");
        let s = b.add_spout("s", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        b.build().expect("valid")
    }

    #[test]
    fn placement_lifecycle() {
        let mut p = Placement::empty(4);
        assert!(!p.is_complete());
        assert_eq!(p.placed_count(), 0);
        p.place(VertexId(0), SocketId(1));
        p.place(VertexId(1), SocketId(1));
        assert!(p.collocated(VertexId(0), VertexId(1)));
        assert!(!p.collocated(VertexId(0), VertexId(2)));
        p.place(VertexId(2), SocketId(0));
        p.place(VertexId(3), SocketId(2));
        assert!(p.is_complete());
        assert_eq!(
            p.sockets_used(),
            vec![SocketId(0), SocketId(1), SocketId(2)]
        );
        p.unplace(VertexId(3));
        assert!(!p.is_complete());
    }

    #[test]
    fn vertices_on_socket() {
        let mut p = Placement::empty(3);
        p.place(VertexId(0), SocketId(0));
        p.place(VertexId(2), SocketId(0));
        let on0: Vec<VertexId> = p.vertices_on(SocketId(0)).collect();
        assert_eq!(on0, vec![VertexId(0), VertexId(2)]);
    }

    #[test]
    fn replicas_on_socket_counts_multiplicity() {
        let t = linear3();
        let g = ExecutionGraph::new(&t, &[2, 5, 1], 3);
        // Vertices: s#0(2) | x#0(3) x#1(2) | k#0(1) = 4 vertices.
        assert_eq!(g.vertex_count(), 4);
        let mut plan = ExecutionPlan {
            replication: vec![2, 5, 1],
            compress_ratio: 3,
            placement: Placement::empty(g.vertex_count()),
        };
        for (v, _) in g.vertices() {
            plan.placement.place(v, SocketId(0));
        }
        assert_eq!(plan.replicas_on(&g, SocketId(0)), 8);
        assert_eq!(plan.total_replicas(), 8);
    }

    #[test]
    fn describe_mentions_operators() {
        let t = linear3();
        let g = graph_fixture(&t);
        let plan = ExecutionPlan {
            replication: vec![2, 3, 1],
            compress_ratio: 1,
            placement: Placement::all_on(g.vertex_count(), SocketId(0)),
        };
        let d = plan.describe(&g);
        assert!(d.contains("x"));
        assert!(d.contains("S0"));
    }

    #[test]
    fn singleton_plan() {
        let p = ExecutionPlan::singleton(3);
        assert_eq!(p.total_replicas(), 3);
        assert!(p.placement.is_complete());
    }
}
