//! Operator cost profiles — the *operator specification* inputs of the
//! performance model (Table 1 of the paper).
//!
//! The paper profiles each operator in isolation (one profiling thread per
//! operator, sample tuples resident in local memory) and records:
//!
//! * `Te` — average execution time per tuple (function execution + emission),
//! * `M`  — average memory traffic per tuple,
//! * `N`  — average size of the operator's output tuples,
//!
//! plus the engine-dependent "Others" overhead (queue access, temporary
//! object creation, context switching) isolated in the Figure 8 breakdown.
//!
//! Execution cost is stored in **CPU cycles** so that a profile calibrated on
//! one machine (the paper profiles on Server A's 1.2 GHz parts) transfers to
//! machines with different clocks; the model converts to wall time with the
//! target machine's clock.

/// Per-tuple cost profile of one operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// `Te`: execution cycles per input tuple (user function + emit).
    pub exec_cycles: f64,
    /// "Others": engine overhead cycles per input tuple in BriskStream
    /// (communication queue access, bookkeeping). Baseline engines scale
    /// this up via their engine cost configs.
    pub overhead_cycles: f64,
    /// `M`: memory traffic in bytes generated per input tuple.
    pub mem_bytes_per_tuple: f64,
    /// `N`: average size in bytes of the tuples this operator **emits**.
    /// A downstream operator placed on a remote socket pays
    /// `ceil(N / S) * L(i,j)` nanoseconds to fetch each of them (Formula 2).
    pub output_bytes: f64,
    /// State-access cycles per input tuple for operators that maintain an
    /// index or window: the hash probe/insert plus the *amortized* share
    /// of periodic eviction sweeps. Charged identically under every
    /// placement (state lives with its replica), so it tightens the
    /// model's capacity estimate without perturbing the B&B bound's
    /// admissibility. Zero for stateless operators.
    pub state_cycles: f64,
}

impl CostProfile {
    /// Profile from cycle counts.
    pub fn new(
        exec_cycles: f64,
        overhead_cycles: f64,
        mem_bytes_per_tuple: f64,
        output_bytes: f64,
    ) -> CostProfile {
        assert!(exec_cycles >= 0.0, "negative execution cost");
        assert!(overhead_cycles >= 0.0, "negative overhead cost");
        assert!(mem_bytes_per_tuple >= 0.0, "negative memory traffic");
        assert!(output_bytes >= 0.0, "negative tuple size");
        CostProfile {
            exec_cycles,
            overhead_cycles,
            mem_bytes_per_tuple,
            output_bytes,
            state_cycles: 0.0,
        }
    }

    /// Attach a per-tuple state-access cost (probe + amortized eviction
    /// cycles) to this profile — builder-style, so stateless call sites
    /// keep the four-argument constructor.
    pub fn with_state_access(mut self, state_cycles: f64) -> CostProfile {
        assert!(state_cycles >= 0.0, "negative state-access cost");
        self.state_cycles = state_cycles;
        self
    }

    /// Profile from nanosecond measurements taken on a machine running at
    /// `ghz` GHz (the paper's published numbers were measured on Server A's
    /// 1.2 GHz cores).
    pub fn from_ns_at_ghz(
        exec_ns: f64,
        overhead_ns: f64,
        mem_bytes_per_tuple: f64,
        output_bytes: f64,
        ghz: f64,
    ) -> CostProfile {
        assert!(ghz > 0.0, "clock must be positive");
        CostProfile::new(
            exec_ns * ghz,
            overhead_ns * ghz,
            mem_bytes_per_tuple,
            output_bytes,
        )
    }

    /// A negligible-cost profile (useful in tests).
    pub fn trivial() -> CostProfile {
        CostProfile::new(1.0, 0.0, 1.0, 8.0)
    }

    /// Total per-tuple CPU cycles excluding any remote-fetch penalty:
    /// `Te + Others + state access`.
    pub fn local_cycles(&self) -> f64 {
        self.exec_cycles + self.overhead_cycles + self.state_cycles
    }

    /// Execution time `Te` in nanoseconds at the given clock.
    pub fn exec_ns(&self, clock_hz: f64) -> f64 {
        self.exec_cycles / clock_hz * 1e9
    }

    /// Overhead ("Others") in nanoseconds at the given clock.
    pub fn overhead_ns(&self, clock_hz: f64) -> f64 {
        self.overhead_cycles / clock_hz * 1e9
    }

    /// Scale execution and overhead cost by a factor (used by the baseline
    /// engine cost configs: serialization, duplicated headers, instruction
    /// cache stalls all inflate per-tuple cycles).
    pub fn scaled(&self, exec_factor: f64, overhead_factor: f64) -> CostProfile {
        CostProfile::new(
            self.exec_cycles * exec_factor,
            self.overhead_cycles * overhead_factor,
            self.mem_bytes_per_tuple,
            self.output_bytes,
        )
        .with_state_access(self.state_cycles * exec_factor)
    }

    /// Add flat per-tuple cycles (e.g. per-tuple serialization cost).
    pub fn with_extra_overhead(&self, extra_cycles: f64) -> CostProfile {
        CostProfile::new(
            self.exec_cycles,
            self.overhead_cycles + extra_cycles,
            self.mem_bytes_per_tuple,
            self.output_bytes,
        )
        .with_state_access(self.state_cycles)
    }

    /// Add flat per-tuple cycles to the *execution* component (e.g. the
    /// fixed engine instruction footprint a heavier runtime drags through
    /// the i-cache on every invocation).
    pub fn with_extra_exec(&self, extra_cycles: f64) -> CostProfile {
        CostProfile::new(
            self.exec_cycles + extra_cycles,
            self.overhead_cycles,
            self.mem_bytes_per_tuple,
            self.output_bytes,
        )
        .with_state_access(self.state_cycles)
    }

    /// State-access time in nanoseconds at the given clock.
    pub fn state_ns(&self, clock_hz: f64) -> f64 {
        self.state_cycles / clock_hz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip_at_clock() {
        // Splitter's local time on Server A: 1612.8 ns at 1.2 GHz.
        let p = CostProfile::from_ns_at_ghz(1612.8, 0.0, 100.0, 60.0, 1.2);
        assert!((p.exec_cycles - 1935.36).abs() < 1e-9);
        assert!((p.exec_ns(1.2e9) - 1612.8).abs() < 1e-9);
        // On Server B's 2.27 GHz clock the same work takes fewer ns.
        assert!(p.exec_ns(2.27e9) < 1612.8);
    }

    #[test]
    fn local_cycles_sums_components() {
        let p = CostProfile::new(100.0, 20.0, 0.0, 0.0);
        assert_eq!(p.local_cycles(), 120.0);
    }

    #[test]
    fn scaling_factors() {
        let p = CostProfile::new(100.0, 10.0, 5.0, 64.0);
        let s = p.scaled(4.0, 10.0);
        assert_eq!(s.exec_cycles, 400.0);
        assert_eq!(s.overhead_cycles, 100.0);
        assert_eq!(s.mem_bytes_per_tuple, 5.0);
        let e = p.with_extra_overhead(7.0);
        assert_eq!(e.overhead_cycles, 17.0);
    }

    #[test]
    #[should_panic]
    fn negative_cost_rejected() {
        CostProfile::new(-1.0, 0.0, 0.0, 0.0);
    }

    #[test]
    fn state_access_survives_every_builder() {
        let p = CostProfile::new(100.0, 10.0, 5.0, 64.0).with_state_access(30.0);
        assert_eq!(p.state_cycles, 30.0);
        assert_eq!(p.local_cycles(), 140.0);
        assert!((p.state_ns(1.2e9) - 25.0).abs() < 1e-9);
        // Every derived profile keeps (or consistently scales) the term.
        assert_eq!(p.scaled(2.0, 1.0).state_cycles, 60.0);
        assert_eq!(p.with_extra_overhead(7.0).state_cycles, 30.0);
        assert_eq!(p.with_extra_exec(7.0).state_cycles, 30.0);
        // Stateless call sites are unchanged.
        assert_eq!(CostProfile::trivial().state_cycles, 0.0);
    }
}
