//! The execution graph: a logical topology expanded by a replication
//! configuration.
//!
//! Each operator is replicated into one or more replicas running in parallel
//! threads (Section 2.2). For placement purposes RLAS optionally *compresses*
//! the graph (heuristic 3, Section 4): up to `compress_ratio` replicas of the
//! same operator fuse into one **execution vertex** (scheduling unit) that is
//! placed atomically. A vertex therefore has a `multiplicity` — the number
//! of replicas it bundles — and ratio 1 recovers the most fine-grained graph.

use crate::topology::{LogicalTopology, OperatorId, OperatorSpec, Partitioning};

/// Index of a vertex within an [`ExecutionGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub usize);

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One scheduling unit: `multiplicity` replicas of operator `op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecVertex {
    /// The logical operator this vertex replicates.
    pub op: OperatorId,
    /// Position of this vertex among the operator's vertices.
    pub group_index: usize,
    /// Number of fused replicas (1 unless the graph is compressed).
    pub multiplicity: usize,
}

/// A producer→consumer connection between two execution vertices, tagged
/// with the logical edge it instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecEdge {
    /// Producer vertex.
    pub from: VertexId,
    /// Consumer vertex.
    pub to: VertexId,
    /// Index into [`LogicalTopology::edges`].
    pub logical_edge: usize,
}

/// Borrowed view of an edge with its endpoints resolved.
#[derive(Debug, Clone, Copy)]
pub struct EdgeRef<'g> {
    /// The underlying edge.
    pub edge: &'g ExecEdge,
    /// Index of this edge in the graph's edge list.
    pub index: usize,
}

/// The expanded (and possibly compressed) execution graph.
#[derive(Debug, Clone)]
pub struct ExecutionGraph<'t> {
    topology: &'t LogicalTopology,
    replication: Vec<usize>,
    compress_ratio: usize,
    vertices: Vec<ExecVertex>,
    edges: Vec<ExecEdge>,
    incoming: Vec<Vec<usize>>,
    outgoing: Vec<Vec<usize>>,
    op_vertices: Vec<Vec<VertexId>>,
    topo_order: Vec<VertexId>,
}

impl<'t> ExecutionGraph<'t> {
    /// Expand `topology` with `replication[op]` replicas per operator,
    /// fusing up to `compress_ratio` replicas per vertex.
    ///
    /// # Panics
    /// Panics if `replication` has the wrong length, any level is zero, or
    /// `compress_ratio` is zero.
    pub fn new(
        topology: &'t LogicalTopology,
        replication: &[usize],
        compress_ratio: usize,
    ) -> ExecutionGraph<'t> {
        assert_eq!(
            replication.len(),
            topology.operator_count(),
            "replication must cover every operator"
        );
        assert!(
            replication.iter().all(|&r| r > 0),
            "replication level must be at least 1"
        );
        assert!(compress_ratio > 0, "compress ratio must be at least 1");

        let mut vertices = Vec::new();
        let mut op_vertices = vec![Vec::new(); topology.operator_count()];
        for (op, _) in topology.operators() {
            let mut remaining = replication[op.0];
            let mut group_index = 0;
            while remaining > 0 {
                let m = remaining.min(compress_ratio);
                let vid = VertexId(vertices.len());
                vertices.push(ExecVertex {
                    op,
                    group_index,
                    multiplicity: m,
                });
                op_vertices[op.0].push(vid);
                remaining -= m;
                group_index += 1;
            }
        }

        let mut edges = Vec::new();
        let mut incoming = vec![Vec::new(); vertices.len()];
        let mut outgoing = vec![Vec::new(); vertices.len()];
        for (lei, le) in topology.edges().iter().enumerate() {
            let producers = &op_vertices[le.from.0];
            let consumers: &[VertexId] = match le.partitioning {
                Partitioning::Global => &op_vertices[le.to.0][..1],
                _ => &op_vertices[le.to.0],
            };
            for &pv in producers {
                for &cv in consumers {
                    let ei = edges.len();
                    edges.push(ExecEdge {
                        from: pv,
                        to: cv,
                        logical_edge: lei,
                    });
                    outgoing[pv.0].push(ei);
                    incoming[cv.0].push(ei);
                }
            }
        }

        // Vertices inherit the operator topological order; within an
        // operator, group order is arbitrary but deterministic.
        let mut topo_order = Vec::with_capacity(vertices.len());
        for &op in topology.topological_order() {
            topo_order.extend(op_vertices[op.0].iter().copied());
        }

        ExecutionGraph {
            topology,
            replication: replication.to_vec(),
            compress_ratio,
            vertices,
            edges,
            incoming,
            outgoing,
            op_vertices,
            topo_order,
        }
    }

    /// The underlying logical topology.
    pub fn topology(&self) -> &'t LogicalTopology {
        self.topology
    }

    /// Replication level per operator.
    pub fn replication(&self) -> &[usize] {
        &self.replication
    }

    /// The compression ratio the graph was built with.
    pub fn compress_ratio(&self) -> usize {
        self.compress_ratio
    }

    /// Total replicas across all operators (n in the paper's complexity
    /// analysis).
    pub fn total_replicas(&self) -> usize {
        self.replication.iter().sum()
    }

    /// Number of scheduling units.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Vertex by id.
    pub fn vertex(&self, id: VertexId) -> &ExecVertex {
        &self.vertices[id.0]
    }

    /// Iterate `(id, vertex)`.
    pub fn vertices(&self) -> impl Iterator<Item = (VertexId, &ExecVertex)> {
        self.vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (VertexId(i), v))
    }

    /// The operator spec behind a vertex.
    pub fn spec_of(&self, id: VertexId) -> &'t OperatorSpec {
        self.topology.operator(self.vertices[id.0].op)
    }

    /// Display name of a vertex, e.g. `splitter#2`.
    pub fn vertex_name(&self, id: VertexId) -> String {
        let v = &self.vertices[id.0];
        format!("{}#{}", self.topology.operator(v.op).name, v.group_index)
    }

    /// All edges.
    pub fn edges(&self) -> &[ExecEdge] {
        &self.edges
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edges entering `id`.
    pub fn incoming_edges(&self, id: VertexId) -> impl Iterator<Item = EdgeRef<'_>> {
        self.incoming[id.0].iter().map(move |&e| EdgeRef {
            edge: &self.edges[e],
            index: e,
        })
    }

    /// Edges leaving `id`.
    pub fn outgoing_edges(&self, id: VertexId) -> impl Iterator<Item = EdgeRef<'_>> {
        self.outgoing[id.0].iter().map(move |&e| EdgeRef {
            edge: &self.edges[e],
            index: e,
        })
    }

    /// Producer vertices of `id` (deduplicated, sorted).
    pub fn producers_of(&self, id: VertexId) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = self.incoming_edges(id).map(|e| e.edge.from).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Consumer vertices of `id` (deduplicated, sorted).
    pub fn consumers_of(&self, id: VertexId) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = self.outgoing_edges(id).map(|e| e.edge.to).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Vertices belonging to operator `op`.
    pub fn vertices_of(&self, op: OperatorId) -> &[VertexId] {
        &self.op_vertices[op.0]
    }

    /// Vertices of sink operators.
    pub fn sink_vertices(&self) -> Vec<VertexId> {
        self.topology
            .sinks()
            .iter()
            .flat_map(|&s| self.op_vertices[s.0].iter().copied())
            .collect()
    }

    /// Vertices of spout operators.
    pub fn spout_vertices(&self) -> Vec<VertexId> {
        self.topology
            .spouts()
            .iter()
            .flat_map(|&s| self.op_vertices[s.0].iter().copied())
            .collect()
    }

    /// Vertices in producer-before-consumer order.
    pub fn topological_order(&self) -> &[VertexId] {
        &self.topo_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostProfile;
    use crate::topology::{TopologyBuilder, DEFAULT_STREAM};

    fn diamond() -> LogicalTopology {
        let mut b = TopologyBuilder::new("diamond");
        let s = b.add_spout("s", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let y = b.add_bolt("y", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, x);
        b.connect_shuffle(s, y);
        b.connect_shuffle(x, k);
        b.connect_shuffle(y, k);
        b.build().expect("valid")
    }

    #[test]
    fn expansion_counts() {
        let t = diamond();
        let g = ExecutionGraph::new(&t, &[1, 2, 3, 1], 1);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.total_replicas(), 7);
        // s->x: 1*2, s->y: 1*3, x->k: 2*1, y->k: 3*1 = 10 edges.
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn compression_groups_replicas() {
        let t = diamond();
        let g = ExecutionGraph::new(&t, &[1, 7, 1, 1], 3);
        // 7 replicas at ratio 3 -> groups of 3,3,1.
        let xs = g.vertices_of(OperatorId(1));
        assert_eq!(xs.len(), 3);
        let mult: Vec<usize> = xs.iter().map(|&v| g.vertex(v).multiplicity).collect();
        assert_eq!(mult, vec![3, 3, 1]);
        assert_eq!(g.total_replicas(), 10);
    }

    #[test]
    fn compression_ratio_one_is_identity() {
        let t = diamond();
        let g = ExecutionGraph::new(&t, &[2, 2, 2, 2], 1);
        assert!(g.vertices().all(|(_, v)| v.multiplicity == 1));
        assert_eq!(g.vertex_count(), 8);
    }

    #[test]
    fn global_partitioning_funnels_to_first_vertex() {
        let mut b = TopologyBuilder::new("glob");
        let s = b.add_spout("s", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, k, Partitioning::Global);
        let t = b.build().expect("valid");
        let g = ExecutionGraph::new(&t, &[3, 2], 1);
        // All three spout vertices connect only to the sink's first vertex.
        let sink_first = g.vertices_of(OperatorId(1))[0];
        assert_eq!(g.edge_count(), 3);
        assert!(g.edges().iter().all(|e| e.to == sink_first));
    }

    #[test]
    fn topological_order_is_consistent() {
        let t = diamond();
        let g = ExecutionGraph::new(&t, &[2, 3, 1, 2], 2);
        let order = g.topological_order();
        assert_eq!(order.len(), g.vertex_count());
        let pos = |v: VertexId| order.iter().position(|&o| o == v).expect("present");
        for e in g.edges() {
            assert!(pos(e.from) < pos(e.to), "edge order violated");
        }
    }

    #[test]
    fn producers_consumers_dedup() {
        let t = diamond();
        let g = ExecutionGraph::new(&t, &[1, 1, 1, 1], 1);
        let k = g.vertices_of(OperatorId(3))[0];
        assert_eq!(g.producers_of(k).len(), 2);
        let s = g.vertices_of(OperatorId(0))[0];
        assert_eq!(g.consumers_of(s).len(), 2);
    }

    #[test]
    fn vertex_names() {
        let t = diamond();
        let g = ExecutionGraph::new(&t, &[1, 2, 1, 1], 1);
        let xs = g.vertices_of(OperatorId(1));
        assert_eq!(g.vertex_name(xs[0]), "x#0");
        assert_eq!(g.vertex_name(xs[1]), "x#1");
    }

    #[test]
    #[should_panic]
    fn zero_replication_rejected() {
        let t = diamond();
        ExecutionGraph::new(&t, &[1, 0, 1, 1], 1);
    }

    #[test]
    #[should_panic]
    fn wrong_replication_len_rejected() {
        let t = diamond();
        ExecutionGraph::new(&t, &[1, 1], 1);
    }
}
