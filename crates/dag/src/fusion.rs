//! Operator-chain fusion groups.
//!
//! The paper's execution-graph compression (heuristic 3) groups co-located
//! replicas to shrink the placement search space; fusion takes the same
//! idea to the *execution* layer. When a producer→consumer pair is wired
//! 1:1 at the replica level — one producer replica feeding one consumer
//! replica — and both replicas sit on the same (virtual) socket, the queue
//! crossing between them buys nothing: the engine can run the consumer
//! *inline* inside the producer's executor, eliminating the per-jumbo
//! push/pop, the consumer's poll/back-off loop, and the fetch-cost
//! injection on that edge.
//!
//! A [`FusionPlan`] is the plan-level answer to "which edges collapse":
//! it is derived from a topology plus a replication configuration (and,
//! when available, the per-replica socket assignment of an
//! [`crate::ExecutionPlan`]), and is consumed by both the runtime (to
//! rewire executors) and the model (to drop the Formula-2 communication
//! term on fused edges).
//!
//! # Eligibility
//!
//! An operator `v` fuses into its producer `u` when **all** of:
//!
//! * every incoming edge of `v` originates at `u` (single upstream
//!   operator — otherwise `v` would need to live in two executors);
//! * `u` and `v` run the **same replica count** `n`, and every `u → v`
//!   edge routes replica `i` to replica `i` — a genuine 1:1 replica
//!   pairing, so the engine can run `v`'s replica `i` inline inside `u`'s
//!   replica `i`:
//!   * `n == 1`: every partitioning strategy (Shuffle, KeyBy, Broadcast,
//!     Global, Forward) degenerates to "deliver to replica 0";
//!   * `n > 1` (**pairwise fusion**): the edge must be
//!     [`Partitioning::Forward`] (`i → i` by definition), or an **aligned
//!     KeyBy**: `u` is *key-confined* — each of its replicas only ever
//!     holds tuples whose key hashes to its own index, because every path
//!     into `u` is KeyBy (or Forward from an equally-replicated, confined,
//!     key-preserving producer) — and `u` is declared
//!     [key-preserving](crate::topology::OperatorSpec::is_key_preserving),
//!     so its emissions re-hash to the same index under the consumer's
//!     identical `mix_key(key) % n` router;
//! * every replica pair `(u_i, v_i)` shares a socket (unplaced replicas
//!   count as collocated, matching the model's bounding relaxation).
//!
//! Chains compose transitively: if `s → a` and `a → b` both fuse, the
//! three operators form one executor (per replica pair) rooted at `s`
//! (the chain *host*); a fused edge requires equal replica counts, so a
//! whole chain shares one count and pairs index-wise end to end.
//! Spouts are never fused away (they have no producer); sinks may be.

use crate::graph::ExecutionGraph;
use crate::plan::Placement;
use crate::topology::{LogicalTopology, OperatorId, Partitioning};
use brisk_numa::SocketId;

/// Which operators fuse into which producers, and which logical edges
/// consequently carry no queue. See the [module docs](self) for the
/// eligibility rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionPlan {
    /// Direct host per operator: the producer an operator fuses into, or
    /// itself when it keeps its own executor.
    host: Vec<usize>,
    /// Per logical edge: whether the edge is fused (inline, no queue).
    fused_edges: Vec<bool>,
}

impl FusionPlan {
    /// The identity plan: nothing fuses (fusion disabled).
    pub fn disabled(topology: &LogicalTopology) -> FusionPlan {
        FusionPlan {
            host: (0..topology.operator_count()).collect(),
            fused_edges: vec![false; topology.edges().len()],
        }
    }

    /// Compute fusion groups for `topology` under `replication`.
    ///
    /// `replica_sockets`, when given, assigns a socket to every global
    /// replica index (operator-major, as produced by the runtime's
    /// `plan_replica_sockets`); `None` means placement is unknown and all
    /// replicas count as collocated.
    ///
    /// # Panics
    /// Panics if `replication` does not cover every operator or
    /// `replica_sockets` (when given) does not cover every replica.
    pub fn compute(
        topology: &LogicalTopology,
        replication: &[usize],
        replica_sockets: Option<&[SocketId]>,
    ) -> FusionPlan {
        let known: Option<Vec<Option<SocketId>>> =
            replica_sockets.map(|sockets| sockets.iter().map(|&s| Some(s)).collect());
        FusionPlan::compute_partial(topology, replication, known.as_deref())
    }

    /// [`FusionPlan::compute`] for *partially known* placements: `None`
    /// entries are replicas whose socket is undecided and count as
    /// collocated with anything (the bounding relaxation) — but replica
    /// pairs whose sockets are both known and **differ** still block
    /// fusion, unlike the all-or-nothing `compute` wrapper.
    pub fn compute_partial(
        topology: &LogicalTopology,
        replication: &[usize],
        replica_sockets: Option<&[Option<SocketId>]>,
    ) -> FusionPlan {
        assert_eq!(
            replication.len(),
            topology.operator_count(),
            "replication must cover every operator"
        );
        let total: usize = replication.iter().sum();
        if let Some(sockets) = replica_sockets {
            assert_eq!(sockets.len(), total, "sockets must cover every replica");
        }
        let mut replica_base = vec![0usize; replication.len()];
        let mut acc = 0;
        for (op, base) in replica_base.iter_mut().enumerate() {
            *base = acc;
            acc += replication[op];
        }

        // Key confinement per operator (see module docs): replica `i` only
        // ever holds tuples with `mix_key(key) % n == i`. True when every
        // incoming edge is KeyBy (the router itself partitions the key
        // space over the operator's n replicas), or Forward from an
        // equally-replicated producer that is itself confined and
        // key-preserving (the pairing relays the confinement unchanged).
        // Computed in topological order so producers resolve first.
        let mut confined = vec![false; replication.len()];
        for &op in topology.topological_order() {
            let mut edges = topology.incoming_edges(op).peekable();
            if edges.peek().is_none() {
                continue; // spouts emit arbitrary keys
            }
            confined[op.0] = edges.all(|e| match e.partitioning {
                Partitioning::KeyBy => true,
                Partitioning::Forward => {
                    replication[e.from.0] == replication[op.0]
                        && confined[e.from.0]
                        && topology.operator(e.from).is_key_preserving()
                }
                _ => false,
            });
        }

        let mut plan = FusionPlan::disabled(topology);
        for (v, _) in topology.operators() {
            let mut incoming = topology
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.to == v);
            let Some((first_lei, first)) = incoming.next() else {
                continue; // spout: no producer to fuse into
            };
            let u = first.from;
            let mut edge_indices = vec![first_lei];
            let mut single_upstream = true;
            for (lei, e) in incoming {
                if e.from != u {
                    single_upstream = false;
                    break;
                }
                edge_indices.push(lei);
            }
            let n = replication[v.0];
            if !single_upstream || replication[u.0] != n {
                continue;
            }
            // With one replica pair every strategy delivers to replica 0;
            // at n > 1 only Forward and aligned KeyBy pin the i -> i map.
            let pairs_one_to_one = n == 1
                || edge_indices
                    .iter()
                    .all(|&lei| match topology.edges()[lei].partitioning {
                        Partitioning::Forward => true,
                        Partitioning::KeyBy => {
                            confined[u.0] && topology.operator(u).is_key_preserving()
                        }
                        _ => false,
                    });
            if !pairs_one_to_one {
                continue;
            }
            // Same-socket check per replica pair; a pair is collocated
            // unless both sockets are known and differ (unplaced/unknown
            // counts as collocated).
            if let Some(sockets) = replica_sockets {
                let collocated = (0..n).all(|r| {
                    match (
                        sockets[replica_base[u.0] + r],
                        sockets[replica_base[v.0] + r],
                    ) {
                        (Some(a), Some(b)) => a == b,
                        _ => true,
                    }
                });
                if !collocated {
                    continue;
                }
            }
            plan.host[v.0] = u.0;
            for lei in edge_indices {
                plan.fused_edges[lei] = true;
            }
        }
        plan
    }

    /// Compute fusion groups from a (possibly compressed, possibly
    /// partially placed) execution graph — the model-side entry point.
    /// Unplaced vertices count as collocated (the bounding relaxation),
    /// but pairs the placement explicitly splits across sockets still
    /// block fusion even when other vertices remain unplaced.
    pub fn from_graph(graph: &ExecutionGraph<'_>, placement: &Placement) -> FusionPlan {
        let topology = graph.topology();
        let mut sockets: Vec<Option<SocketId>> = Vec::with_capacity(graph.total_replicas());
        for (op, _) in topology.operators() {
            for &v in graph.vertices_of(op) {
                let socket = placement.socket_of(v);
                for _ in 0..graph.vertex(v).multiplicity {
                    sockets.push(socket);
                }
            }
        }
        FusionPlan::compute_partial(topology, graph.replication(), Some(&sockets))
    }

    /// Whether logical edge `lei` is fused (travels inline, no queue).
    pub fn is_edge_fused(&self, lei: usize) -> bool {
        self.fused_edges[lei]
    }

    /// Whether `op` was fused away into a producer (it spawns no executor
    /// of its own).
    pub fn is_fused_away(&self, op: OperatorId) -> bool {
        self.host[op.0] != op.0
    }

    /// The direct producer hosting `op` (itself when not fused away).
    pub fn direct_host_of(&self, op: OperatorId) -> OperatorId {
        OperatorId(self.host[op.0])
    }

    /// The executor that ultimately runs `op`: the root of its fusion
    /// chain (itself when not fused away).
    pub fn root_host_of(&self, op: OperatorId) -> OperatorId {
        let mut cur = op.0;
        while self.host[cur] != cur {
            cur = self.host[cur];
        }
        OperatorId(cur)
    }

    /// Number of operators fused away (executors saved).
    pub fn fused_op_count(&self) -> usize {
        self.host
            .iter()
            .enumerate()
            .filter(|&(i, &h)| h != i)
            .count()
    }

    /// Number of logical edges carried inline.
    pub fn fused_edge_count(&self) -> usize {
        self.fused_edges.iter().filter(|&&f| f).count()
    }

    /// Executor threads the engine spawns under `replication` with this
    /// plan: fused-away operators ride their hosts' threads, so each of
    /// their replicas is one thread saved. This is the quantity the RLAS
    /// replica budget constrains — fusion frees budget that can buy
    /// replication elsewhere.
    ///
    /// # Panics
    /// Panics if `replication` does not cover every operator.
    pub fn spawned_executors(&self, replication: &[usize]) -> usize {
        assert_eq!(
            replication.len(),
            self.host.len(),
            "replication must cover every operator"
        );
        self.host
            .iter()
            .enumerate()
            .filter(|&(op, &h)| h == op)
            .map(|(op, _)| replication[op])
            .sum()
    }

    /// Fusion chains with more than one operator, each listed root-first.
    pub fn chains(&self) -> Vec<Vec<OperatorId>> {
        let n = self.host.len();
        let mut members: Vec<Vec<OperatorId>> = vec![Vec::new(); n];
        for op in 0..n {
            if self.host[op] != op {
                members[self.root_host_of(OperatorId(op)).0].push(OperatorId(op));
            }
        }
        members
            .into_iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(root, mut m)| {
                m.sort();
                let mut chain = vec![OperatorId(root)];
                chain.append(&mut m);
                chain
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostProfile;
    use crate::plan::ExecutionPlan;
    use crate::topology::{Partitioning, TopologyBuilder, DEFAULT_STREAM};
    use crate::VertexId;

    /// spout -> a -> b -> sink, all shuffle.
    fn linear4() -> LogicalTopology {
        let mut b = TopologyBuilder::new("lin");
        let s = b.add_spout("s", CostProfile::trivial());
        let a = b.add_bolt("a", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, a);
        b.connect_shuffle(a, x);
        b.connect_shuffle(x, k);
        b.build().expect("valid")
    }

    #[test]
    fn single_replica_chain_fuses_end_to_end() {
        let t = linear4();
        let plan = FusionPlan::compute(&t, &[1, 1, 1, 1], None);
        assert_eq!(plan.fused_op_count(), 3);
        assert_eq!(plan.fused_edge_count(), 3);
        assert!(!plan.is_fused_away(OperatorId(0)), "spouts never fuse away");
        for op in 1..4 {
            assert!(plan.is_fused_away(OperatorId(op)));
            assert_eq!(plan.root_host_of(OperatorId(op)), OperatorId(0));
        }
        assert_eq!(plan.direct_host_of(OperatorId(2)), OperatorId(1));
        assert_eq!(
            plan.chains(),
            vec![vec![
                OperatorId(0),
                OperatorId(1),
                OperatorId(2),
                OperatorId(3)
            ]]
        );
    }

    #[test]
    fn replication_breaks_the_chain() {
        let t = linear4();
        // a has 2 replicas: s->a (1:2) and a->x (2:1) both stay queued; the
        // x->k tail (1:1) still fuses.
        let plan = FusionPlan::compute(&t, &[1, 2, 1, 1], None);
        assert!(!plan.is_fused_away(OperatorId(1)));
        assert!(!plan.is_fused_away(OperatorId(2)));
        assert!(plan.is_fused_away(OperatorId(3)));
        assert_eq!(plan.direct_host_of(OperatorId(3)), OperatorId(2));
        assert_eq!(plan.fused_edge_count(), 1);
        assert!(plan.is_edge_fused(2));
        assert!(!plan.is_edge_fused(0));
    }

    #[test]
    fn cross_socket_placement_blocks_fusion() {
        use brisk_numa::SocketId;
        let t = linear4();
        // s,a on socket 0; x,k on socket 1: only s->a and x->k collocate.
        let sockets = [0, 0, 1, 1].map(SocketId);
        let plan = FusionPlan::compute(&t, &[1, 1, 1, 1], Some(&sockets));
        assert!(plan.is_fused_away(OperatorId(1)));
        assert!(!plan.is_fused_away(OperatorId(2)), "a->x crosses sockets");
        assert!(plan.is_fused_away(OperatorId(3)));
        assert_eq!(
            plan.chains(),
            vec![
                vec![OperatorId(0), OperatorId(1)],
                vec![OperatorId(2), OperatorId(3)]
            ]
        );
    }

    #[test]
    fn multi_upstream_consumer_never_fuses() {
        // diamond: s -> {a, b} -> k; k has two upstream operators.
        let mut b = TopologyBuilder::new("dia");
        let s = b.add_spout("s", CostProfile::trivial());
        let a = b.add_bolt("a", CostProfile::trivial());
        let x = b.add_bolt("b", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, a);
        b.connect_shuffle(s, x);
        b.connect_shuffle(a, k);
        b.connect_shuffle(x, k);
        let t = b.build().expect("valid");
        let plan = FusionPlan::compute(&t, &[1, 1, 1, 1], None);
        assert!(plan.is_fused_away(a));
        assert!(plan.is_fused_away(x));
        assert!(!plan.is_fused_away(k), "two upstream operators");
        assert_eq!(plan.fused_edge_count(), 2);
    }

    #[test]
    fn global_edge_fuses_only_from_a_single_producer_replica() {
        let mut b = TopologyBuilder::new("glob");
        let s = b.add_spout("s", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, k, Partitioning::Global);
        let t = b.build().expect("valid");
        let fused = FusionPlan::compute(&t, &[1, 1], None);
        assert!(fused.is_fused_away(t.find("k").expect("k")));
        // Three spout replicas funnel into one sink replica: 3:1, not 1:1.
        let unfused = FusionPlan::compute(&t, &[3, 1], None);
        assert_eq!(unfused.fused_op_count(), 0);
    }

    /// spout -> a (Forward) -> sink, replication [n, n, 1].
    fn forward3() -> LogicalTopology {
        let mut b = TopologyBuilder::new("fwd");
        let s = b.add_spout("s", CostProfile::trivial());
        let a = b.add_bolt("a", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, a, Partitioning::Forward);
        b.connect_shuffle(a, k);
        b.build().expect("valid")
    }

    #[test]
    fn forward_edge_fuses_pairwise_at_equal_counts() {
        let t = forward3();
        let plan = FusionPlan::compute(&t, &[3, 3, 1], None);
        assert!(plan.is_fused_away(OperatorId(1)), "3:3 Forward pairs fuse");
        assert!(plan.is_edge_fused(0));
        assert!(!plan.is_fused_away(OperatorId(2)), "3:1 shuffle tail stays");
        assert_eq!(plan.spawned_executors(&[3, 3, 1]), 4, "3 hosts + 1 sink");
        // Count mismatch breaks the pairing even on a Forward edge.
        let unequal = FusionPlan::compute(&t, &[3, 2, 1], None);
        assert_eq!(unequal.fused_op_count(), 0);
        // Any split replica pair blocks the whole fusion.
        let sockets = [0, 0, 1, 0, 1, 0, 0].map(SocketId);
        let split = FusionPlan::compute(&t, &[3, 3, 1], Some(&sockets));
        assert!(
            !split.is_fused_away(OperatorId(1)),
            "pair 1 crosses sockets"
        );
        // Pairwise-collocated placement fuses even across busy sockets.
        let paired = [0, 1, 0, 0, 1, 0, 1].map(SocketId);
        let ok = FusionPlan::compute(&t, &[3, 3, 1], Some(&paired));
        assert!(ok.is_fused_away(OperatorId(1)));
    }

    /// spout -> a (KeyBy) -> b (KeyBy) -> sink; `a` optionally
    /// key-preserving.
    fn keyed4(preserving: bool) -> LogicalTopology {
        let mut b = TopologyBuilder::new("keyed");
        let s = b.add_spout("s", CostProfile::trivial());
        let a = b.add_bolt("a", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, a, Partitioning::KeyBy);
        b.connect(a, DEFAULT_STREAM, x, Partitioning::KeyBy);
        b.connect_shuffle(x, k);
        if preserving {
            b.set_key_preserving(a);
        }
        b.build().expect("valid")
    }

    #[test]
    fn aligned_keyby_fuses_only_when_confined_and_preserving() {
        // a's replicas are key-confined (its only input is KeyBy over the
        // same 2 replicas) and a preserves keys: a -> x pairs i -> i.
        let plan = FusionPlan::compute(&keyed4(true), &[1, 2, 2, 1], None);
        assert!(plan.is_fused_away(OperatorId(2)), "aligned KeyBy fuses");
        assert!(plan.is_edge_fused(1));
        assert!(!plan.is_fused_away(OperatorId(1)), "1:2 head stays queued");
        // Without the key-preserving promise the alignment cannot be proven.
        let unproven = FusionPlan::compute(&keyed4(false), &[1, 2, 2, 1], None);
        assert!(!unproven.is_fused_away(OperatorId(2)));
        // A shuffled input breaks confinement even with the promise.
        let mut b = TopologyBuilder::new("shuffled");
        let s = b.add_spout("s", CostProfile::trivial());
        let a = b.add_bolt("a", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, a);
        b.connect(a, DEFAULT_STREAM, x, Partitioning::KeyBy);
        b.connect_shuffle(x, k);
        b.set_key_preserving(a);
        let t = b.build().expect("valid");
        let plan = FusionPlan::compute(&t, &[1, 2, 2, 1], None);
        assert!(!plan.is_fused_away(OperatorId(2)), "unconfined producer");
    }

    #[test]
    fn join_shaped_keyby_confluence_is_confined_and_fuses_downstream() {
        // Join shape: two spouts KeyBy into one index-maintaining op. The
        // op itself can never fuse away (two upstream operators), but both
        // of its inputs are KeyBy over the same replica set, so it IS
        // key-confined — and when it preserves keys, its aligned-KeyBy
        // downstream edge fuses pairwise at equal counts.
        let build = |preserving: bool| {
            let mut b = TopologyBuilder::new("join");
            let l = b.add_spout("left", CostProfile::trivial());
            let r = b.add_spout("right", CostProfile::trivial());
            let j = b.add_bolt("join", CostProfile::trivial().with_state_access(50.0));
            let k = b.add_sink("sink", CostProfile::trivial());
            b.connect(l, "left", j, Partitioning::KeyBy);
            b.connect(r, "right", j, Partitioning::KeyBy);
            b.connect(j, DEFAULT_STREAM, k, Partitioning::KeyBy);
            if preserving {
                b.set_key_preserving(j);
            }
            b.build().expect("valid")
        };
        let t = build(true);
        let j = t.find("join").expect("join");
        let k = t.find("sink").expect("sink");
        let plan = FusionPlan::compute(&t, &[2, 2, 3, 3], None);
        assert!(!plan.is_fused_away(j), "two upstream operators");
        assert!(plan.is_fused_away(k), "aligned KeyBy below the join fuses");
        assert!(plan.is_edge_fused(2));
        assert_eq!(plan.direct_host_of(k), j);
        // Without the key-preserving promise the confluence stays queued.
        let unproven = FusionPlan::compute(&build(false), &[2, 2, 3, 3], None);
        assert!(!unproven.is_fused_away(k));
    }

    #[test]
    fn forward_relays_confinement_through_a_fused_pair() {
        // s -> a (KeyBy) -> x (Forward) -> y (KeyBy) -> k: x receives a's
        // confined keys 1:1 and preserves them, so x -> y is aligned too
        // and the whole a-chain fuses pairwise.
        let mut b = TopologyBuilder::new("relay");
        let s = b.add_spout("s", CostProfile::trivial());
        let a = b.add_bolt("a", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let y = b.add_bolt("y", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, a, Partitioning::KeyBy);
        b.connect(a, DEFAULT_STREAM, x, Partitioning::Forward);
        b.connect(x, DEFAULT_STREAM, y, Partitioning::KeyBy);
        b.connect_shuffle(y, k);
        b.set_key_preserving(a);
        b.set_key_preserving(x);
        let t = b.build().expect("valid");
        let plan = FusionPlan::compute(&t, &[1, 2, 2, 2, 1], None);
        assert!(plan.is_fused_away(OperatorId(2)));
        assert!(plan.is_fused_away(OperatorId(3)), "confinement relayed");
        assert_eq!(plan.root_host_of(OperatorId(3)), OperatorId(1));
        assert_eq!(plan.spawned_executors(&[1, 2, 2, 2, 1]), 4);
    }

    #[test]
    fn disabled_plan_is_identity() {
        let t = linear4();
        let plan = FusionPlan::disabled(&t);
        assert_eq!(plan.fused_op_count(), 0);
        assert_eq!(plan.fused_edge_count(), 0);
        assert!(plan.chains().is_empty());
        for op in 0..4 {
            assert_eq!(plan.root_host_of(OperatorId(op)), OperatorId(op));
        }
    }

    #[test]
    fn from_graph_matches_compute_and_respects_partial_placements() {
        use brisk_numa::SocketId;
        let t = linear4();
        let graph = ExecutionGraph::new(&t, &[1, 1, 1, 1], 1);
        let mut placement = Placement::all_on(graph.vertex_count(), SocketId(0));
        placement.place(VertexId(2), SocketId(1));
        let plan = FusionPlan::from_graph(&graph, &placement);
        let sockets = [0, 0, 1, 0].map(SocketId);
        assert_eq!(plan, FusionPlan::compute(&t, &[1, 1, 1, 1], Some(&sockets)));
        // Partial placement: unplaced vertices count as collocated.
        let partial = Placement::empty(graph.vertex_count());
        let relaxed = FusionPlan::from_graph(&graph, &partial);
        assert_eq!(relaxed.fused_op_count(), 3);
        // ... but a pair the placement explicitly splits must NOT fuse,
        // even while unrelated vertices remain unplaced: s on socket 0,
        // a on socket 1, x/k undecided -> only s->a is blocked.
        let mut mixed = Placement::empty(graph.vertex_count());
        mixed.place(VertexId(0), SocketId(0));
        mixed.place(VertexId(1), SocketId(1));
        let strict = FusionPlan::from_graph(&graph, &mixed);
        assert!(!strict.is_fused_away(OperatorId(1)), "split pair blocked");
        assert!(strict.is_fused_away(OperatorId(2)), "a->x relaxed");
        assert!(strict.is_fused_away(OperatorId(3)));
        // Round-trip via an ExecutionPlan, multiplicity > 1 on one op.
        let graph2 = ExecutionGraph::new(&t, &[1, 3, 1, 1], 3);
        let plan2 = ExecutionPlan {
            replication: vec![1, 3, 1, 1],
            compress_ratio: 3,
            placement: Placement::all_on(graph2.vertex_count(), SocketId(0)),
        };
        let fused2 = FusionPlan::from_graph(&graph2, &plan2.placement);
        assert!(!fused2.is_fused_away(OperatorId(1)));
        assert!(!fused2.is_fused_away(OperatorId(2)));
        assert!(fused2.is_fused_away(OperatorId(3)));
    }
}
