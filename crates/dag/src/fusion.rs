//! Operator-chain fusion groups.
//!
//! The paper's execution-graph compression (heuristic 3) groups co-located
//! replicas to shrink the placement search space; fusion takes the same
//! idea to the *execution* layer. When a producer→consumer pair is wired
//! 1:1 at the replica level — one producer replica feeding one consumer
//! replica — and both replicas sit on the same (virtual) socket, the queue
//! crossing between them buys nothing: the engine can run the consumer
//! *inline* inside the producer's executor, eliminating the per-jumbo
//! push/pop, the consumer's poll/back-off loop, and the fetch-cost
//! injection on that edge.
//!
//! A [`FusionPlan`] is the plan-level answer to "which edges collapse":
//! it is derived from a topology plus a replication configuration (and,
//! when available, the per-replica socket assignment of an
//! [`crate::ExecutionPlan`]), and is consumed by both the runtime (to
//! rewire executors) and the model (to drop the Formula-2 communication
//! term on fused edges).
//!
//! # Eligibility
//!
//! An operator `v` fuses into its producer `u` when **all** of:
//!
//! * every incoming edge of `v` originates at `u` (single upstream
//!   operator — otherwise `v` would need to live in two executors);
//! * `u` and `v` both run exactly one replica, so each fused edge is a
//!   genuine 1:1 replica pairing. With one consumer replica every
//!   partitioning strategy (Shuffle, KeyBy, Broadcast, Global) degenerates
//!   to "deliver to replica 0", so routing semantics are preserved
//!   verbatim;
//! * the two replicas are placed on the same socket (unplaced replicas
//!   count as collocated, matching the model's bounding relaxation).
//!
//! Chains compose transitively: if `s → a` and `a → b` both fuse, the
//! three operators form one executor rooted at `s` (the chain *host*).
//! Spouts are never fused away (they have no producer); sinks may be.

use crate::graph::ExecutionGraph;
use crate::plan::Placement;
use crate::topology::{LogicalTopology, OperatorId};
use brisk_numa::SocketId;

/// Which operators fuse into which producers, and which logical edges
/// consequently carry no queue. See the [module docs](self) for the
/// eligibility rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionPlan {
    /// Direct host per operator: the producer an operator fuses into, or
    /// itself when it keeps its own executor.
    host: Vec<usize>,
    /// Per logical edge: whether the edge is fused (inline, no queue).
    fused_edges: Vec<bool>,
}

impl FusionPlan {
    /// The identity plan: nothing fuses (fusion disabled).
    pub fn disabled(topology: &LogicalTopology) -> FusionPlan {
        FusionPlan {
            host: (0..topology.operator_count()).collect(),
            fused_edges: vec![false; topology.edges().len()],
        }
    }

    /// Compute fusion groups for `topology` under `replication`.
    ///
    /// `replica_sockets`, when given, assigns a socket to every global
    /// replica index (operator-major, as produced by the runtime's
    /// `plan_replica_sockets`); `None` means placement is unknown and all
    /// replicas count as collocated.
    ///
    /// # Panics
    /// Panics if `replication` does not cover every operator or
    /// `replica_sockets` (when given) does not cover every replica.
    pub fn compute(
        topology: &LogicalTopology,
        replication: &[usize],
        replica_sockets: Option<&[SocketId]>,
    ) -> FusionPlan {
        assert_eq!(
            replication.len(),
            topology.operator_count(),
            "replication must cover every operator"
        );
        let total: usize = replication.iter().sum();
        if let Some(sockets) = replica_sockets {
            assert_eq!(sockets.len(), total, "sockets must cover every replica");
        }
        let mut replica_base = vec![0usize; replication.len()];
        let mut acc = 0;
        for (op, base) in replica_base.iter_mut().enumerate() {
            *base = acc;
            acc += replication[op];
        }
        // Socket of an operator's replica 0 (only queried for single-replica
        // operators below).
        let socket_of = |op: usize| -> Option<SocketId> {
            replica_sockets.map(|sockets| sockets[replica_base[op]])
        };

        let mut plan = FusionPlan::disabled(topology);
        for (v, _) in topology.operators() {
            let mut incoming = topology
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.to == v);
            let Some((first_lei, first)) = incoming.next() else {
                continue; // spout: no producer to fuse into
            };
            let u = first.from;
            let mut edge_indices = vec![first_lei];
            let mut single_upstream = true;
            for (lei, e) in incoming {
                if e.from != u {
                    single_upstream = false;
                    break;
                }
                edge_indices.push(lei);
            }
            if !single_upstream || replication[u.0] != 1 || replication[v.0] != 1 {
                continue;
            }
            // Same-socket check; unplaced/unknown counts as collocated.
            if let (Some(su), Some(sv)) = (socket_of(u.0), socket_of(v.0)) {
                if su != sv {
                    continue;
                }
            }
            plan.host[v.0] = u.0;
            for lei in edge_indices {
                plan.fused_edges[lei] = true;
            }
        }
        plan
    }

    /// Compute fusion groups from a (possibly compressed, possibly
    /// partially placed) execution graph — the model-side entry point.
    /// Unplaced vertices count as collocated, matching the evaluator's
    /// bounding relaxation.
    pub fn from_graph(graph: &ExecutionGraph<'_>, placement: &Placement) -> FusionPlan {
        let topology = graph.topology();
        let sockets: Option<Vec<SocketId>> = {
            // Per-replica sockets exist only when every single-replica
            // operator's vertex is placed; rather than require that, map
            // unplaced vertices to a sentinel handled as collocated by
            // running the per-operator check here and passing `None`
            // upward when anything is unplaced.
            let mut sockets = Vec::with_capacity(graph.total_replicas());
            let mut all_placed = true;
            for (op, _) in topology.operators() {
                for &v in graph.vertices_of(op) {
                    match placement.socket_of(v) {
                        Some(s) => {
                            for _ in 0..graph.vertex(v).multiplicity {
                                sockets.push(s);
                            }
                        }
                        None => {
                            all_placed = false;
                            for _ in 0..graph.vertex(v).multiplicity {
                                sockets.push(SocketId(0));
                            }
                        }
                    }
                }
            }
            all_placed.then_some(sockets)
        };
        FusionPlan::compute(topology, graph.replication(), sockets.as_deref())
    }

    /// Whether logical edge `lei` is fused (travels inline, no queue).
    pub fn is_edge_fused(&self, lei: usize) -> bool {
        self.fused_edges[lei]
    }

    /// Whether `op` was fused away into a producer (it spawns no executor
    /// of its own).
    pub fn is_fused_away(&self, op: OperatorId) -> bool {
        self.host[op.0] != op.0
    }

    /// The direct producer hosting `op` (itself when not fused away).
    pub fn direct_host_of(&self, op: OperatorId) -> OperatorId {
        OperatorId(self.host[op.0])
    }

    /// The executor that ultimately runs `op`: the root of its fusion
    /// chain (itself when not fused away).
    pub fn root_host_of(&self, op: OperatorId) -> OperatorId {
        let mut cur = op.0;
        while self.host[cur] != cur {
            cur = self.host[cur];
        }
        OperatorId(cur)
    }

    /// Number of operators fused away (executors saved).
    pub fn fused_op_count(&self) -> usize {
        self.host
            .iter()
            .enumerate()
            .filter(|&(i, &h)| h != i)
            .count()
    }

    /// Number of logical edges carried inline.
    pub fn fused_edge_count(&self) -> usize {
        self.fused_edges.iter().filter(|&&f| f).count()
    }

    /// Fusion chains with more than one operator, each listed root-first.
    pub fn chains(&self) -> Vec<Vec<OperatorId>> {
        let n = self.host.len();
        let mut members: Vec<Vec<OperatorId>> = vec![Vec::new(); n];
        for op in 0..n {
            if self.host[op] != op {
                members[self.root_host_of(OperatorId(op)).0].push(OperatorId(op));
            }
        }
        members
            .into_iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(root, mut m)| {
                m.sort();
                let mut chain = vec![OperatorId(root)];
                chain.append(&mut m);
                chain
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostProfile;
    use crate::plan::ExecutionPlan;
    use crate::topology::{Partitioning, TopologyBuilder, DEFAULT_STREAM};
    use crate::VertexId;

    /// spout -> a -> b -> sink, all shuffle.
    fn linear4() -> LogicalTopology {
        let mut b = TopologyBuilder::new("lin");
        let s = b.add_spout("s", CostProfile::trivial());
        let a = b.add_bolt("a", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, a);
        b.connect_shuffle(a, x);
        b.connect_shuffle(x, k);
        b.build().expect("valid")
    }

    #[test]
    fn single_replica_chain_fuses_end_to_end() {
        let t = linear4();
        let plan = FusionPlan::compute(&t, &[1, 1, 1, 1], None);
        assert_eq!(plan.fused_op_count(), 3);
        assert_eq!(plan.fused_edge_count(), 3);
        assert!(!plan.is_fused_away(OperatorId(0)), "spouts never fuse away");
        for op in 1..4 {
            assert!(plan.is_fused_away(OperatorId(op)));
            assert_eq!(plan.root_host_of(OperatorId(op)), OperatorId(0));
        }
        assert_eq!(plan.direct_host_of(OperatorId(2)), OperatorId(1));
        assert_eq!(
            plan.chains(),
            vec![vec![
                OperatorId(0),
                OperatorId(1),
                OperatorId(2),
                OperatorId(3)
            ]]
        );
    }

    #[test]
    fn replication_breaks_the_chain() {
        let t = linear4();
        // a has 2 replicas: s->a (1:2) and a->x (2:1) both stay queued; the
        // x->k tail (1:1) still fuses.
        let plan = FusionPlan::compute(&t, &[1, 2, 1, 1], None);
        assert!(!plan.is_fused_away(OperatorId(1)));
        assert!(!plan.is_fused_away(OperatorId(2)));
        assert!(plan.is_fused_away(OperatorId(3)));
        assert_eq!(plan.direct_host_of(OperatorId(3)), OperatorId(2));
        assert_eq!(plan.fused_edge_count(), 1);
        assert!(plan.is_edge_fused(2));
        assert!(!plan.is_edge_fused(0));
    }

    #[test]
    fn cross_socket_placement_blocks_fusion() {
        use brisk_numa::SocketId;
        let t = linear4();
        // s,a on socket 0; x,k on socket 1: only s->a and x->k collocate.
        let sockets = [0, 0, 1, 1].map(SocketId);
        let plan = FusionPlan::compute(&t, &[1, 1, 1, 1], Some(&sockets));
        assert!(plan.is_fused_away(OperatorId(1)));
        assert!(!plan.is_fused_away(OperatorId(2)), "a->x crosses sockets");
        assert!(plan.is_fused_away(OperatorId(3)));
        assert_eq!(
            plan.chains(),
            vec![
                vec![OperatorId(0), OperatorId(1)],
                vec![OperatorId(2), OperatorId(3)]
            ]
        );
    }

    #[test]
    fn multi_upstream_consumer_never_fuses() {
        // diamond: s -> {a, b} -> k; k has two upstream operators.
        let mut b = TopologyBuilder::new("dia");
        let s = b.add_spout("s", CostProfile::trivial());
        let a = b.add_bolt("a", CostProfile::trivial());
        let x = b.add_bolt("b", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, a);
        b.connect_shuffle(s, x);
        b.connect_shuffle(a, k);
        b.connect_shuffle(x, k);
        let t = b.build().expect("valid");
        let plan = FusionPlan::compute(&t, &[1, 1, 1, 1], None);
        assert!(plan.is_fused_away(a));
        assert!(plan.is_fused_away(x));
        assert!(!plan.is_fused_away(k), "two upstream operators");
        assert_eq!(plan.fused_edge_count(), 2);
    }

    #[test]
    fn global_edge_fuses_only_from_a_single_producer_replica() {
        let mut b = TopologyBuilder::new("glob");
        let s = b.add_spout("s", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, k, Partitioning::Global);
        let t = b.build().expect("valid");
        let fused = FusionPlan::compute(&t, &[1, 1], None);
        assert!(fused.is_fused_away(t.find("k").expect("k")));
        // Three spout replicas funnel into one sink replica: 3:1, not 1:1.
        let unfused = FusionPlan::compute(&t, &[3, 1], None);
        assert_eq!(unfused.fused_op_count(), 0);
    }

    #[test]
    fn disabled_plan_is_identity() {
        let t = linear4();
        let plan = FusionPlan::disabled(&t);
        assert_eq!(plan.fused_op_count(), 0);
        assert_eq!(plan.fused_edge_count(), 0);
        assert!(plan.chains().is_empty());
        for op in 0..4 {
            assert_eq!(plan.root_host_of(OperatorId(op)), OperatorId(op));
        }
    }

    #[test]
    fn from_graph_matches_compute_and_respects_partial_placements() {
        use brisk_numa::SocketId;
        let t = linear4();
        let graph = ExecutionGraph::new(&t, &[1, 1, 1, 1], 1);
        let mut placement = Placement::all_on(graph.vertex_count(), SocketId(0));
        placement.place(VertexId(2), SocketId(1));
        let plan = FusionPlan::from_graph(&graph, &placement);
        let sockets = [0, 0, 1, 0].map(SocketId);
        assert_eq!(plan, FusionPlan::compute(&t, &[1, 1, 1, 1], Some(&sockets)));
        // Partial placement: unplaced vertices count as collocated.
        let partial = Placement::empty(graph.vertex_count());
        let relaxed = FusionPlan::from_graph(&graph, &partial);
        assert_eq!(relaxed.fused_op_count(), 3);
        // Round-trip via an ExecutionPlan, multiplicity > 1 on one op.
        let graph2 = ExecutionGraph::new(&t, &[1, 3, 1, 1], 3);
        let plan2 = ExecutionPlan {
            replication: vec![1, 3, 1, 1],
            compress_ratio: 3,
            placement: Placement::all_on(graph2.vertex_count(), SocketId(0)),
        };
        let fused2 = FusionPlan::from_graph(&graph2, &plan2.placement);
        assert!(!fused2.is_fused_away(OperatorId(1)));
        assert!(!fused2.is_fused_away(OperatorId(2)));
        assert!(fused2.is_fused_away(OperatorId(3)));
    }
}
