//! Logical streaming topologies.
//!
//! A streaming application is a DAG where vertices are continuously running
//! operators and edges are named data streams (Section 2.2). Operators are
//! one of three kinds: **spouts** (sources), **bolts** (transformations) and
//! **sinks** (terminal consumers whose output rate defines application
//! throughput). Each edge carries a partitioning strategy deciding how
//! tuples spread across the consumer's replicas, and each operator carries
//! per-(input stream, output stream) selectivities (Appendix B, Table 8).

use crate::cost::CostProfile;

/// Name of the implicit stream used when an operator has a single output.
pub const DEFAULT_STREAM: &str = "default";

/// Index of an operator within its [`LogicalTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatorId(pub usize);

impl std::fmt::Display for OperatorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The role of an operator in the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Source operator; ingests the external stream at rate `I`.
    Spout,
    /// Intermediate operator.
    Bolt,
    /// Terminal operator; the sum of sink output rates is the application
    /// throughput `R`.
    Sink,
}

/// How tuples on an edge are distributed across consumer replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partitioning {
    /// Round-robin / random spread; every consumer replica receives an equal
    /// share.
    Shuffle,
    /// Hash partitioning on a key (e.g. the word in WC). Under the uniform
    /// key assumption each replica receives an equal share, but the mapping
    /// is sticky, which matters to executors that keep keyed state.
    KeyBy,
    /// Every tuple is duplicated to every consumer replica.
    Broadcast,
    /// All tuples funnel into replica 0 of the consumer.
    Global,
    /// Local forwarding: with **equal replica counts**, producer replica
    /// `i` delivers to consumer replica `i` — a strict 1:1 pairing, the
    /// shape pairwise operator fusion collapses (see
    /// `brisk_dag::FusionPlan`). With unequal counts the pairing is
    /// meaningless, so the edge **degrades to Shuffle** (engine,
    /// simulator and model all treat it identically, keeping the
    /// work-conserving capacity pooling exact). Only meaningful where the
    /// consumer is indifferent to which replica sees a tuple (stateless,
    /// or state keyed the same way the producer already is).
    Forward,
}

/// A selectivity rule: tuples arriving on `input_stream` produce
/// `ratio` tuples on `output_stream` (Table 8 lists these per LR operator).
/// `input_stream = None` matches any input (and is the only form that makes
/// sense for spouts).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectivityRule {
    /// Matching input stream; `None` matches all inputs.
    pub input_stream: Option<String>,
    /// Output stream the rule applies to.
    pub output_stream: String,
    /// Output tuples emitted per matching input tuple.
    pub ratio: f64,
}

/// Static description of one operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSpec {
    /// Unique operator name.
    pub name: String,
    /// Spout / bolt / sink.
    pub kind: OperatorKind,
    /// Profiled cost (Te, Others, M, N).
    pub cost: CostProfile,
    selectivity: Vec<SelectivityRule>,
    key_preserving: bool,
}

impl OperatorSpec {
    /// Selectivity from `input_stream` to `output_stream`.
    ///
    /// Resolution order: an exact input-stream match wins, then a wildcard
    /// (`None`) rule, then the default of `1.0`.
    pub fn selectivity(&self, input_stream: Option<&str>, output_stream: &str) -> f64 {
        let mut wildcard = None;
        for rule in &self.selectivity {
            if rule.output_stream != output_stream {
                continue;
            }
            match (&rule.input_stream, input_stream) {
                (Some(rs), Some(is)) if rs == is => return rule.ratio,
                (None, _) => wildcard = Some(rule.ratio),
                _ => {}
            }
        }
        wildcard.unwrap_or(1.0)
    }

    /// All explicit selectivity rules.
    pub fn selectivity_rules(&self) -> &[SelectivityRule] {
        &self.selectivity
    }

    /// Whether the application promises this operator emits every output
    /// tuple under the **same key** as the input tuple that produced it
    /// (declared via [`TopologyBuilder::set_key_preserving`]). Pairwise
    /// fusion relies on this to prove that consecutive KeyBy edges with
    /// equal replica counts route every tuple `i → i` ("aligned KeyBy").
    pub fn is_key_preserving(&self) -> bool {
        self.key_preserving
    }
}

/// A directed edge: `from`'s output stream `stream` feeds `to`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalEdge {
    /// Producer operator.
    pub from: OperatorId,
    /// Name of the producer's output stream carried by this edge.
    pub stream: String,
    /// Consumer operator.
    pub to: OperatorId,
    /// Distribution of tuples across the consumer's replicas.
    pub partitioning: Partitioning,
}

/// Errors detected while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Two operators share a name.
    DuplicateName(String),
    /// The DAG contains a directed cycle through the named operator.
    Cycle(String),
    /// A spout has an incoming edge.
    SpoutWithInput(String),
    /// A sink has an outgoing edge.
    SinkWithOutput(String),
    /// A non-spout operator has no producers.
    Unreachable(String),
    /// No spout present.
    NoSpout,
    /// No sink present.
    NoSink,
    /// Self-loop edge.
    SelfLoop(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateName(n) => write!(f, "duplicate operator name '{n}'"),
            TopologyError::Cycle(n) => write!(f, "cycle detected through operator '{n}'"),
            TopologyError::SpoutWithInput(n) => write!(f, "spout '{n}' has an incoming edge"),
            TopologyError::SinkWithOutput(n) => write!(f, "sink '{n}' has an outgoing edge"),
            TopologyError::Unreachable(n) => write!(f, "operator '{n}' has no producers"),
            TopologyError::NoSpout => write!(f, "topology has no spout"),
            TopologyError::NoSink => write!(f, "topology has no sink"),
            TopologyError::SelfLoop(n) => write!(f, "operator '{n}' feeds itself"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated logical topology.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalTopology {
    name: String,
    operators: Vec<OperatorSpec>,
    edges: Vec<LogicalEdge>,
    /// Edge indices entering each operator.
    incoming: Vec<Vec<usize>>,
    /// Edge indices leaving each operator.
    outgoing: Vec<Vec<usize>>,
    topo_order: Vec<OperatorId>,
}

impl LogicalTopology {
    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operators.
    pub fn operator_count(&self) -> usize {
        self.operators.len()
    }

    /// Operator spec by id.
    pub fn operator(&self, id: OperatorId) -> &OperatorSpec {
        &self.operators[id.0]
    }

    /// Iterate `(id, spec)` pairs.
    pub fn operators(&self) -> impl Iterator<Item = (OperatorId, &OperatorSpec)> {
        self.operators
            .iter()
            .enumerate()
            .map(|(i, s)| (OperatorId(i), s))
    }

    /// All edges.
    pub fn edges(&self) -> &[LogicalEdge] {
        &self.edges
    }

    /// Edges entering `id`.
    pub fn incoming_edges(&self, id: OperatorId) -> impl Iterator<Item = &LogicalEdge> {
        self.incoming[id.0].iter().map(|&e| &self.edges[e])
    }

    /// Edges leaving `id`.
    pub fn outgoing_edges(&self, id: OperatorId) -> impl Iterator<Item = &LogicalEdge> {
        self.outgoing[id.0].iter().map(|&e| &self.edges[e])
    }

    /// Edges leaving `id`, with their indices into [`LogicalTopology::edges`].
    pub fn outgoing_edge_refs(
        &self,
        id: OperatorId,
    ) -> impl Iterator<Item = (usize, &LogicalEdge)> {
        self.outgoing[id.0].iter().map(|&e| (e, &self.edges[e]))
    }

    /// Producer operators of `id` (deduplicated).
    pub fn producers_of(&self, id: OperatorId) -> Vec<OperatorId> {
        let mut v: Vec<OperatorId> = self.incoming_edges(id).map(|e| e.from).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Consumer operators of `id` (deduplicated).
    pub fn consumers_of(&self, id: OperatorId) -> Vec<OperatorId> {
        let mut v: Vec<OperatorId> = self.outgoing_edges(id).map(|e| e.to).collect();
        v.sort();
        v.dedup();
        v
    }

    /// All spouts.
    pub fn spouts(&self) -> Vec<OperatorId> {
        self.operators()
            .filter(|(_, s)| s.kind == OperatorKind::Spout)
            .map(|(i, _)| i)
            .collect()
    }

    /// All sinks.
    pub fn sinks(&self) -> Vec<OperatorId> {
        self.operators()
            .filter(|(_, s)| s.kind == OperatorKind::Sink)
            .map(|(i, _)| i)
            .collect()
    }

    /// Operators in a topological order (producers before consumers).
    pub fn topological_order(&self) -> &[OperatorId] {
        &self.topo_order
    }

    /// Look up an operator by name.
    pub fn find(&self, name: &str) -> Option<OperatorId> {
        self.operators()
            .find(|(_, s)| s.name == name)
            .map(|(i, _)| i)
    }

    /// Replace an operator's cost profile (used by profiling, which fills in
    /// measured statistics, and by baseline engine configs, which inflate
    /// costs).
    pub fn set_cost(&mut self, id: OperatorId, cost: CostProfile) {
        self.operators[id.0].cost = cost;
    }

    /// A copy with every operator's cost transformed by `f` — baseline
    /// engines derive their topologies this way.
    pub fn map_costs(&self, mut f: impl FnMut(&OperatorSpec) -> CostProfile) -> LogicalTopology {
        let mut t = self.clone();
        for i in 0..t.operators.len() {
            t.operators[i].cost = f(&self.operators[i]);
        }
        t
    }
}

/// Storm-style builder for [`LogicalTopology`].
///
/// ```
/// use brisk_dag::{TopologyBuilder, CostProfile, Partitioning, DEFAULT_STREAM};
///
/// let mut b = TopologyBuilder::new("demo");
/// let spout = b.add_spout("spout", CostProfile::trivial());
/// let sink = b.add_sink("sink", CostProfile::trivial());
/// b.connect(spout, DEFAULT_STREAM, sink, Partitioning::Shuffle);
/// let topology = b.build().expect("valid DAG");
/// assert_eq!(topology.operator_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    operators: Vec<OperatorSpec>,
    edges: Vec<LogicalEdge>,
}

impl TopologyBuilder {
    /// Start a topology named `name`.
    pub fn new(name: impl Into<String>) -> TopologyBuilder {
        TopologyBuilder {
            name: name.into(),
            operators: Vec::new(),
            edges: Vec::new(),
        }
    }

    fn add(
        &mut self,
        name: impl Into<String>,
        kind: OperatorKind,
        cost: CostProfile,
    ) -> OperatorId {
        let id = OperatorId(self.operators.len());
        self.operators.push(OperatorSpec {
            name: name.into(),
            kind,
            cost,
            selectivity: Vec::new(),
            key_preserving: false,
        });
        id
    }

    /// Add a source operator.
    pub fn add_spout(&mut self, name: impl Into<String>, cost: CostProfile) -> OperatorId {
        self.add(name, OperatorKind::Spout, cost)
    }

    /// Add an intermediate operator.
    pub fn add_bolt(&mut self, name: impl Into<String>, cost: CostProfile) -> OperatorId {
        self.add(name, OperatorKind::Bolt, cost)
    }

    /// Add a terminal operator.
    pub fn add_sink(&mut self, name: impl Into<String>, cost: CostProfile) -> OperatorId {
        self.add(name, OperatorKind::Sink, cost)
    }

    /// Declare that `ratio` tuples leave on `output_stream` per tuple
    /// arriving on `input_stream` (`None` = any input).
    pub fn set_selectivity(
        &mut self,
        op: OperatorId,
        input_stream: Option<&str>,
        output_stream: &str,
        ratio: f64,
    ) -> &mut Self {
        assert!(ratio >= 0.0, "selectivity cannot be negative");
        self.operators[op.0].selectivity.push(SelectivityRule {
            input_stream: input_stream.map(str::to_string),
            output_stream: output_stream.to_string(),
            ratio,
        });
        self
    }

    /// Promise that `op` emits each output tuple under the same key as the
    /// input tuple that produced it (e.g. a filter that re-emits its input,
    /// or a per-key aggregate keyed identically). This is an application
    /// assertion the builder cannot verify; it unlocks aligned-KeyBy
    /// pairwise fusion (see `brisk_dag::FusionPlan`) and is ignored
    /// otherwise. Spouts have no input key, so the flag is meaningless
    /// (and harmless) on them.
    pub fn set_key_preserving(&mut self, op: OperatorId) -> &mut Self {
        self.operators[op.0].key_preserving = true;
        self
    }

    /// Connect `from`'s output stream `stream` to `to`.
    pub fn connect(
        &mut self,
        from: OperatorId,
        stream: &str,
        to: OperatorId,
        partitioning: Partitioning,
    ) -> &mut Self {
        self.edges.push(LogicalEdge {
            from,
            stream: stream.to_string(),
            to,
            partitioning,
        });
        self
    }

    /// Shorthand: connect on the default stream with shuffle partitioning.
    pub fn connect_shuffle(&mut self, from: OperatorId, to: OperatorId) -> &mut Self {
        self.connect(from, DEFAULT_STREAM, to, Partitioning::Shuffle)
    }

    /// Validate and freeze the topology.
    pub fn build(self) -> Result<LogicalTopology, TopologyError> {
        let n = self.operators.len();
        // Unique names.
        for (i, a) in self.operators.iter().enumerate() {
            for b in &self.operators[i + 1..] {
                if a.name == b.name {
                    return Err(TopologyError::DuplicateName(a.name.clone()));
                }
            }
        }
        let mut incoming = vec![Vec::new(); n];
        let mut outgoing = vec![Vec::new(); n];
        for (ei, e) in self.edges.iter().enumerate() {
            if e.from == e.to {
                return Err(TopologyError::SelfLoop(
                    self.operators[e.from.0].name.clone(),
                ));
            }
            outgoing[e.from.0].push(ei);
            incoming[e.to.0].push(ei);
        }
        let mut has_spout = false;
        let mut has_sink = false;
        for (i, op) in self.operators.iter().enumerate() {
            match op.kind {
                OperatorKind::Spout => {
                    has_spout = true;
                    if !incoming[i].is_empty() {
                        return Err(TopologyError::SpoutWithInput(op.name.clone()));
                    }
                }
                OperatorKind::Sink => {
                    has_sink = true;
                    if !outgoing[i].is_empty() {
                        return Err(TopologyError::SinkWithOutput(op.name.clone()));
                    }
                    if incoming[i].is_empty() {
                        return Err(TopologyError::Unreachable(op.name.clone()));
                    }
                }
                OperatorKind::Bolt => {
                    if incoming[i].is_empty() {
                        return Err(TopologyError::Unreachable(op.name.clone()));
                    }
                }
            }
        }
        if !has_spout {
            return Err(TopologyError::NoSpout);
        }
        if !has_sink {
            return Err(TopologyError::NoSink);
        }
        // Kahn's algorithm for topological order / cycle detection.
        let mut indegree: Vec<usize> = incoming.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(OperatorId(u));
            for &ei in &outgoing[u] {
                let v = self.edges[ei].to.0;
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.operators[i].name.clone())
                .unwrap_or_default();
            return Err(TopologyError::Cycle(stuck));
        }
        Ok(LogicalTopology {
            name: self.name,
            operators: self.operators,
            edges: self.edges,
            incoming,
            outgoing,
            topo_order: order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear3() -> LogicalTopology {
        let mut b = TopologyBuilder::new("lin");
        let s = b.add_spout("spout", CostProfile::trivial());
        let m = b.add_bolt("mid", CostProfile::trivial());
        let k = b.add_sink("sink", CostProfile::trivial());
        b.connect_shuffle(s, m);
        b.connect_shuffle(m, k);
        b.build().expect("valid")
    }

    #[test]
    fn linear_topology_builds() {
        let t = linear3();
        assert_eq!(t.operator_count(), 3);
        assert_eq!(t.spouts(), vec![OperatorId(0)]);
        assert_eq!(t.sinks(), vec![OperatorId(2)]);
        assert_eq!(t.producers_of(OperatorId(1)), vec![OperatorId(0)]);
        assert_eq!(t.consumers_of(OperatorId(1)), vec![OperatorId(2)]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let t = linear3();
        let order = t.topological_order();
        let pos = |id: OperatorId| order.iter().position(|&o| o == id).expect("present");
        for e in t.edges() {
            assert!(pos(e.from) < pos(e.to));
        }
    }

    #[test]
    fn cycle_detected() {
        let mut b = TopologyBuilder::new("cyc");
        let s = b.add_spout("spout", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let y = b.add_bolt("y", CostProfile::trivial());
        let k = b.add_sink("sink", CostProfile::trivial());
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, y);
        b.connect_shuffle(y, x); // cycle x -> y -> x
        b.connect_shuffle(y, k);
        assert!(matches!(b.build(), Err(TopologyError::Cycle(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = TopologyBuilder::new("dup");
        b.add_spout("a", CostProfile::trivial());
        b.add_sink("a", CostProfile::trivial());
        assert!(matches!(b.build(), Err(TopologyError::DuplicateName(_))));
    }

    #[test]
    fn spout_with_input_rejected() {
        let mut b = TopologyBuilder::new("bad");
        let s1 = b.add_spout("s1", CostProfile::trivial());
        let s2 = b.add_spout("s2", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s1, s2);
        b.connect_shuffle(s2, k);
        assert!(matches!(b.build(), Err(TopologyError::SpoutWithInput(_))));
    }

    #[test]
    fn orphan_bolt_rejected() {
        let mut b = TopologyBuilder::new("orphan");
        let s = b.add_spout("s", CostProfile::trivial());
        b.add_bolt("floating", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, k);
        assert!(matches!(b.build(), Err(TopologyError::Unreachable(_))));
    }

    #[test]
    fn no_sink_rejected() {
        let mut b = TopologyBuilder::new("nosink");
        b.add_spout("s", CostProfile::trivial());
        assert!(matches!(b.build(), Err(TopologyError::NoSink)));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new("loop");
        let s = b.add_spout("s", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, x);
        b.connect_shuffle(x, k);
        assert!(matches!(b.build(), Err(TopologyError::SelfLoop(_))));
    }

    #[test]
    fn selectivity_resolution_order() {
        let mut b = TopologyBuilder::new("sel");
        let s = b.add_spout("s", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, "reports", x, Partitioning::Shuffle);
        b.connect(x, "out", k, Partitioning::Shuffle);
        b.set_selectivity(x, Some("reports"), "out", 0.25);
        b.set_selectivity(x, None, "out", 0.5);
        let t = b.build().expect("valid");
        let xo = t.find("x").expect("exists");
        // Exact match wins over wildcard.
        assert_eq!(t.operator(xo).selectivity(Some("reports"), "out"), 0.25);
        // Unknown input falls to wildcard.
        assert_eq!(t.operator(xo).selectivity(Some("other"), "out"), 0.5);
        // Unknown output defaults to 1.
        assert_eq!(t.operator(xo).selectivity(Some("reports"), "nope"), 1.0);
    }

    #[test]
    fn multi_stream_lookup() {
        let t = linear3();
        assert!(t.find("mid").is_some());
        assert!(t.find("nothere").is_none());
    }

    #[test]
    fn map_costs_produces_copy() {
        let t = linear3();
        let t2 = t.map_costs(|spec| spec.cost.scaled(10.0, 1.0));
        let before = t.operator(OperatorId(0)).cost.exec_cycles;
        let after = t2.operator(OperatorId(0)).cost.exec_cycles;
        assert_eq!(after, before * 10.0);
    }
}
