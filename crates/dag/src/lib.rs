//! # brisk-dag
//!
//! The streaming application data model shared by every BriskStream
//! component:
//!
//! * [`topology`] — the **logical topology**: a DAG of operators (spouts,
//!   bolts, sinks) connected by named streams with per-stream selectivities
//!   and partitioning strategies, built through a Storm-style
//!   [`TopologyBuilder`].
//! * [`cost`] — per-operator **cost profiles** (`Te`, `Others`, `M`, `N` from
//!   Table 1), the operator-specification inputs of the performance model.
//! * [`graph`] — the **execution graph**: the logical DAG expanded by a
//!   replication configuration, optionally *compressed* by grouping several
//!   replicas of one operator into a single scheduling unit (heuristic 3 of
//!   the RLAS placement algorithm).
//! * [`plan`] — **execution plans**: replication + placement of every
//!   execution vertex onto CPU sockets.
//! * [`fusion`] — **operator-chain fusion groups**: which 1:1 collocated
//!   producer→consumer edges collapse into a single executor, shared by
//!   the runtime (executor rewiring) and the model (communication terms).
//!
//! Nothing here executes tuples; the runtime, model, optimizer and simulator
//! all build on these types.

pub mod cost;
pub mod fusion;
pub mod graph;
pub mod plan;
pub mod topology;

pub use cost::CostProfile;
pub use fusion::FusionPlan;
pub use graph::{EdgeRef, ExecEdge, ExecVertex, ExecutionGraph, VertexId};
pub use plan::{ExecutionPlan, Placement};
pub use topology::{
    LogicalEdge, LogicalTopology, OperatorId, OperatorKind, OperatorSpec, Partitioning,
    TopologyBuilder, TopologyError, DEFAULT_STREAM,
};
