//! # brisk-core
//!
//! The BriskStream system facade: the piece a user actually touches.
//!
//! Submitting a topology runs the paper's full pipeline:
//!
//! 1. **Model instantiation** — operator specifications (`Te`, `M`, `N`)
//!    come with the topology's cost profiles; [`profiler`] can regenerate
//!    them, either synthetically (the Figure 3 CDFs) or by timing the real
//!    Rust operators in isolation on pre-computed sample input, exactly the
//!    paper's profiling methodology.
//! 2. **RLAS optimization** — iterative scaling + branch-and-bound placement
//!    against the machine's NUMA matrices.
//! 3. **Execution** — either *simulated* on the virtual machine (the
//!    measurement substrate for paper-scale experiments) or *threaded* on
//!    the host via the real engine, with the plan's NUMA fetch penalties
//!    injected.
//!
//! ```
//! use brisk_core::BriskStream;
//! use brisk_numa::Machine;
//!
//! let machine = Machine::server_a().restrict_sockets(2);
//! let topology = brisk_core::profiler::demo_pipeline();
//! let mut system = BriskStream::new(machine);
//! let report = system.submit(&topology).expect("feasible plan");
//! assert!(report.predicted_throughput > 0.0);
//! ```

pub mod profiler;
pub mod system;

pub use system::{BriskStream, PlanError, PlanReport};
