//! The `BriskStream` system object: submit → optimize → execute.

use brisk_dag::{ExecutionGraph, ExecutionPlan, LogicalTopology};
use brisk_model::{Evaluation, Evaluator};
use brisk_numa::Machine;
use brisk_rlas::{optimize, OptimizedPlan, ScalingOptions};
use brisk_runtime::{AppRuntime, Engine, EngineConfig, RunReport};
use brisk_sim::{SimConfig, SimReport, Simulator};
use std::time::Duration;

/// Failure modes of plan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No placement satisfies the resource constraints even at replication
    /// one — the topology cannot run on this machine.
    NoFeasiblePlan,
    /// The threaded engine rejected the plan (e.g. too many replicas for
    /// host execution).
    Engine(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoFeasiblePlan => write!(f, "no feasible execution plan"),
            PlanError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// An optimized plan plus its predicted performance.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Replication + placement chosen by RLAS.
    pub plan: ExecutionPlan,
    /// Modelled application throughput, tuples/sec.
    pub predicted_throughput: f64,
    /// The full model evaluation backing the prediction.
    pub evaluation: Evaluation,
    /// Scaling iterations RLAS ran.
    pub iterations: usize,
}

impl From<OptimizedPlan> for PlanReport {
    fn from(p: OptimizedPlan) -> PlanReport {
        PlanReport {
            plan: p.plan,
            predicted_throughput: p.throughput,
            evaluation: p.evaluation,
            iterations: p.iterations,
        }
    }
}

/// The system facade: a machine plus optimizer settings.
#[derive(Debug, Clone)]
pub struct BriskStream {
    machine: Machine,
    options: ScalingOptions,
}

impl BriskStream {
    /// A system over `machine` with default RLAS settings (compression
    /// ratio 5, replica budget = total cores).
    pub fn new(machine: Machine) -> BriskStream {
        BriskStream {
            machine,
            options: ScalingOptions::default(),
        }
    }

    /// Override the optimizer settings.
    pub fn with_options(machine: Machine, options: ScalingOptions) -> BriskStream {
        BriskStream { machine, options }
    }

    /// The machine plans are optimized for.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The active optimizer settings.
    pub fn options(&self) -> &ScalingOptions {
        &self.options
    }

    /// Optimize an execution plan for `topology` (profile-driven RLAS).
    pub fn submit(&mut self, topology: &LogicalTopology) -> Result<PlanReport, PlanError> {
        optimize(&self.machine, topology, &self.options)
            .map(PlanReport::from)
            .ok_or(PlanError::NoFeasiblePlan)
    }

    /// Evaluate an arbitrary plan (not necessarily RLAS's) under the model
    /// — the same fusion-aware objective [`BriskStream::submit`] optimizes
    /// (serialized fused chains, queue-crossing costs on unfused edges).
    pub fn evaluate(&self, topology: &LogicalTopology, plan: &ExecutionPlan) -> Evaluation {
        let graph = ExecutionGraph::new(topology, &plan.replication, plan.compress_ratio);
        Evaluator::saturated(&self.machine)
            .fused_engine()
            .evaluate(&graph, &plan.placement)
    }

    /// "Measure" a plan by simulating it on the virtual machine.
    ///
    /// With `config.fusion` set, the discrete-event simulator collapses
    /// the plan's fusion chains exactly like the engine does (fused
    /// members run serialized inside their host's executor, no queue or
    /// fetch stall on fused edges), so the simulated rate tracks the
    /// fusion-aware prediction from [`BriskStream::submit`]/
    /// [`BriskStream::evaluate`]. With it clear (the default), every
    /// replica is its own pipelined executor with real queues — the
    /// engine with `EngineConfig::fusion` disabled — and the simulated
    /// rate can exceed the fusion-aware prediction on fusable plans
    /// (pipelined chains out-run serialized ones, queue costs aside).
    pub fn simulate(
        &self,
        topology: &LogicalTopology,
        plan: &ExecutionPlan,
        config: SimConfig,
    ) -> Result<SimReport, String> {
        let graph = ExecutionGraph::new(topology, &plan.replication, plan.compress_ratio);
        Ok(Simulator::new(&self.machine, &graph, &plan.placement, config)?.run())
    }

    /// Execute a real application under the plan on the host's threaded
    /// engine for `duration`, with the plan's NUMA fetch costs injected.
    pub fn execute(
        &self,
        app: AppRuntime,
        plan: &ExecutionPlan,
        config: EngineConfig,
        duration: Duration,
    ) -> Result<RunReport, PlanError> {
        let engine =
            Engine::with_plan(app, plan, &self.machine, config).map_err(PlanError::Engine)?;
        Ok(engine.run_for(duration))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_dag::{CostProfile, TopologyBuilder};

    fn pipeline() -> LogicalTopology {
        let mut b = TopologyBuilder::new("p");
        let s = b.add_spout("s", CostProfile::new(150.0, 20.0, 32.0, 64.0));
        let x = b.add_bolt("x", CostProfile::new(450.0, 30.0, 32.0, 64.0));
        let k = b.add_sink("k", CostProfile::new(50.0, 10.0, 16.0, 16.0));
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        b.build().expect("valid")
    }

    #[test]
    fn submit_produces_feasible_plan() {
        let machine = Machine::server_b().restrict_sockets(2);
        let mut sys = BriskStream::new(machine);
        let t = pipeline();
        let report = sys.submit(&t).expect("feasible");
        assert!(report.plan.placement.is_complete());
        assert!(report.predicted_throughput > 0.0);
        assert!(report.plan.total_replicas() <= sys.machine().total_cores());
    }

    #[test]
    fn evaluate_matches_submit_prediction() {
        let machine = Machine::server_b().restrict_sockets(2);
        let mut sys = BriskStream::new(machine);
        let t = pipeline();
        let report = sys.submit(&t).expect("feasible");
        let eval = sys.evaluate(&t, &report.plan);
        assert!((eval.throughput - report.predicted_throughput).abs() < 1.0);
    }

    #[test]
    fn simulate_lands_near_prediction() {
        let machine = Machine::server_b().restrict_sockets(2);
        let mut sys = BriskStream::with_options(
            Machine::server_b().restrict_sockets(2),
            ScalingOptions {
                compress_ratio: 2,
                ..ScalingOptions::default()
            },
        );
        let _ = machine;
        let t = pipeline();
        let report = sys.submit(&t).expect("feasible");
        let sim = sys
            .simulate(
                &t,
                &report.plan,
                SimConfig {
                    noise_sigma: 0.0,
                    horizon_ns: 50_000_000,
                    warmup_ns: 10_000_000,
                    ..SimConfig::default()
                },
            )
            .expect("simulates");
        let rel =
            (sim.throughput - report.predicted_throughput).abs() / report.predicted_throughput;
        assert!(
            rel < 0.15,
            "sim {} vs predicted {} (rel {rel})",
            sim.throughput,
            report.predicted_throughput
        );
    }

    #[test]
    fn fused_simulation_tracks_the_fused_prediction() {
        // submit() scores plans with the fused-engine objective; a
        // simulation that collapses the same chains must land near that
        // prediction even when the plan fuses aggressively (compression 1
        // keeps single-replica chains fusable).
        let mut sys = BriskStream::with_options(
            Machine::server_b().restrict_sockets(2),
            ScalingOptions {
                compress_ratio: 2,
                ..ScalingOptions::default()
            },
        );
        let t = pipeline();
        let report = sys.submit(&t).expect("feasible");
        let sim = sys
            .simulate(
                &t,
                &report.plan,
                SimConfig {
                    noise_sigma: 0.0,
                    horizon_ns: 50_000_000,
                    warmup_ns: 10_000_000,
                    fusion: true,
                    ..SimConfig::default()
                },
            )
            .expect("simulates");
        let rel =
            (sim.throughput - report.predicted_throughput).abs() / report.predicted_throughput;
        assert!(
            rel < 0.15,
            "fused sim {} vs predicted {} (rel {rel})",
            sim.throughput,
            report.predicted_throughput
        );
    }

    #[test]
    fn infeasible_topology_reports_error() {
        // One-core machine cannot host a three-operator pipeline.
        let machine = brisk_numa::MachineBuilder::new("tiny")
            .sockets(1)
            .cores_per_socket(1)
            .clock_ghz(1.0)
            .build();
        let mut sys = BriskStream::new(machine);
        let t = pipeline();
        assert!(matches!(sys.submit(&t), Err(PlanError::NoFeasiblePlan)));
    }
}
