//! Operator profiling — model instantiation (Section 3.1, Figure 3).
//!
//! The paper instantiates its model by profiling each operator **in
//! isolation**: a single profiling thread, sample input tuples resident in
//! local memory (prepared by pre-executing all upstream operators), and
//! per-tuple statistics gathered over many executions. The profiled `Te`
//! distributions are stable (Figure 3); the 50th percentile feeds the model.
//!
//! Two profilers live here:
//!
//! * [`synthetic_profile`] — draws per-tuple costs from the calibrated cost
//!   profile with lognormal dispersion, reproducing the Figure 3 CDFs for
//!   the virtual machine whose "hardware" is the simulator.
//! * [`live_profile`] — times the *real* Rust operators of an
//!   [`AppRuntime`] on the host: upstream operators pre-execute to produce
//!   the sample input, then the target operator runs alone while wall-clock
//!   per-tuple times are recorded. The median can be written back into the
//!   topology (`instantiate`), closing the profile → model → plan loop on
//!   real hardware.

use brisk_dag::{CostProfile, LogicalTopology, OperatorId, OperatorKind, TopologyBuilder};
use brisk_metrics::Cdf;
use brisk_runtime::{AppRuntime, Collector, OperatorRuntime, SpoutStatus, Tuple, TupleView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Profiled distribution of one operator's per-tuple execution time.
#[derive(Debug, Clone)]
pub struct OperatorProfile {
    /// Operator name.
    pub name: String,
    /// Per-tuple `Te` samples in nanoseconds.
    pub te_ns: Cdf,
}

impl OperatorProfile {
    /// The model input the paper uses: the 50th percentile.
    pub fn median_ns(&mut self) -> f64 {
        self.te_ns.quantile(0.5)
    }
}

/// Draw `samples` synthetic per-tuple execution times for every operator of
/// `topology` at the machine clock `clock_hz`, with lognormal dispersion
/// `sigma` (Figure 3 shows this shape for WC's operators).
pub fn synthetic_profile(
    topology: &LogicalTopology,
    clock_hz: f64,
    samples: usize,
    sigma: f64,
    seed: u64,
) -> Vec<OperatorProfile> {
    let mut rng = StdRng::seed_from_u64(seed);
    topology
        .operators()
        .map(|(_, spec)| {
            let base = spec.cost.exec_cycles / clock_hz * 1e9;
            let mut cdf = Cdf::new();
            for _ in 0..samples {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                cdf.add(base * (sigma * z - sigma * sigma / 2.0).exp());
            }
            OperatorProfile {
                name: spec.name.clone(),
                te_ns: cdf,
            }
        })
        .collect()
}

/// Time the real operators of `app` on the host, one at a time.
///
/// Sample input for each operator is prepared by pre-executing all upstream
/// operators on the spout's output (the paper's exact methodology), so the
/// profiled operator runs alone with its input already materialized in local
/// memory.
pub fn live_profile(app: &AppRuntime, samples: usize) -> Vec<OperatorProfile> {
    let topology = &app.topology;
    // Materialize per-operator input tuples in topological order.
    let mut inputs: Vec<Vec<Tuple>> = vec![Vec::new(); topology.operator_count()];
    let mut profiles: Vec<Option<OperatorProfile>> =
        (0..topology.operator_count()).map(|_| None).collect();

    for &op in topology.topological_order() {
        let spec = topology.operator(op);
        let ctx = brisk_runtime::BoltContext {
            replica: 0,
            replicas: 1,
        };
        let (mut collector, taps) = Collector::capture(topology, op, samples * 16 + 16);
        let mut cdf = Cdf::new();
        match app.runtime(op) {
            OperatorRuntime::Spout(factory) => {
                let mut spout = factory(ctx);
                let mut produced = 0usize;
                while produced < samples {
                    let t0 = std::time::Instant::now();
                    match spout.next(&mut collector) {
                        SpoutStatus::Emitted(n) => {
                            cdf.add(t0.elapsed().as_nanos() as f64);
                            produced += n;
                        }
                        SpoutStatus::Idle => continue,
                        SpoutStatus::Exhausted => break,
                    }
                }
            }
            OperatorRuntime::Bolt(factory) | OperatorRuntime::Sink(factory) => {
                let mut bolt = factory(ctx);
                let sample_input = &inputs[op.0];
                for tuple in sample_input.iter().take(samples) {
                    let view = TupleView::of_tuple(tuple);
                    let t0 = std::time::Instant::now();
                    bolt.execute(&view, &mut collector);
                    cdf.add(t0.elapsed().as_nanos() as f64);
                }
            }
        }
        collector.flush_all();
        // Captured emissions become downstream sample inputs.
        for (stream, queue) in taps {
            let consumers: Vec<OperatorId> = topology
                .outgoing_edges(op)
                .filter(|e| e.stream == stream)
                .map(|e| e.to)
                .collect();
            while let Some(jumbo) = queue.try_pop() {
                for c in &consumers {
                    inputs[c.0].extend((0..jumbo.batch.len()).map(|i| jumbo.batch.to_tuple(i)));
                }
            }
        }
        profiles[op.0] = Some(OperatorProfile {
            name: spec.name.clone(),
            te_ns: cdf,
        });
    }
    profiles.into_iter().map(|p| p.expect("profiled")).collect()
}

/// Write live-profiled medians back into a topology's cost profiles
/// (overriding `Te` while keeping overheads, `M` and `N`), expressed at the
/// target machine's clock.
pub fn instantiate(
    topology: &LogicalTopology,
    profiles: &mut [OperatorProfile],
    clock_hz: f64,
) -> LogicalTopology {
    let mut out = topology.clone();
    for (i, (op, spec)) in topology.operators().enumerate() {
        if profiles[i].te_ns.is_empty() {
            continue;
        }
        let te_ns = profiles[i].median_ns();
        // The measured median replaces Te only; the declared overhead and
        // state-access terms survive the calibration.
        let cost = CostProfile::new(
            te_ns * clock_hz / 1e9,
            spec.cost.overhead_cycles,
            spec.cost.mem_bytes_per_tuple,
            spec.cost.output_bytes,
        )
        .with_state_access(spec.cost.state_cycles);
        out.set_cost(op, cost);
    }
    out
}

/// A small three-operator pipeline used by doctests and examples.
pub fn demo_pipeline() -> LogicalTopology {
    let mut b = TopologyBuilder::new("demo");
    let s = b.add_spout("source", CostProfile::new(150.0, 20.0, 32.0, 64.0));
    let x = b.add_bolt("transform", CostProfile::new(450.0, 30.0, 32.0, 64.0));
    let k = b.add_sink("sink", CostProfile::new(50.0, 10.0, 16.0, 16.0));
    b.connect_shuffle(s, x);
    b.connect_shuffle(x, k);
    b.build().expect("demo pipeline is valid")
}

/// Kind of an operator by name, for experiment display.
pub fn operator_kind(topology: &LogicalTopology, name: &str) -> Option<OperatorKind> {
    topology.find(name).map(|id| topology.operator(id).kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_profiles_center_on_spec() {
        let t = demo_pipeline();
        let mut profiles = synthetic_profile(&t, 1e9, 2000, 0.1, 42);
        // transform: 450 cycles @ 1 GHz = 450 ns median (±10%).
        let median = profiles[1].median_ns();
        assert!(
            (median - 450.0).abs() / 450.0 < 0.1,
            "median {median} should be near 450"
        );
        assert_eq!(profiles[1].name, "transform");
    }

    #[test]
    fn synthetic_profiles_are_deterministic() {
        let t = demo_pipeline();
        let mut a = synthetic_profile(&t, 1e9, 100, 0.1, 7);
        let mut b = synthetic_profile(&t, 1e9, 100, 0.1, 7);
        assert_eq!(a[0].median_ns(), b[0].median_ns());
    }

    #[test]
    fn live_profile_times_real_operators() {
        let app = brisk_apps::word_count::app();
        let mut profiles = live_profile(&app, 200);
        assert_eq!(profiles.len(), 5);
        // Every operator that received input produced samples; the splitter
        // (heaviest WC bolt) must be measurably slower than the sink.
        let by_name = |ps: &mut [OperatorProfile], n: &str| -> f64 {
            let i = ps.iter().position(|p| p.name == n).expect("present");
            ps[i].median_ns()
        };
        let split = by_name(&mut profiles, "splitter");
        let sink = by_name(&mut profiles, "sink");
        assert!(split > 0.0 && sink >= 0.0);
        assert!(
            split > sink,
            "splitter ({split} ns) should out-cost sink ({sink} ns)"
        );
    }

    #[test]
    fn instantiate_overrides_te() {
        let app = brisk_apps::word_count::app();
        let mut profiles = live_profile(&app, 100);
        let t = instantiate(&app.topology, &mut profiles, 1.2e9);
        // Te now reflects host timing, while N (tuple bytes) is untouched.
        for (id, spec) in t.operators() {
            let original = app.topology.operator(id);
            assert_eq!(spec.cost.output_bytes, original.cost.output_bytes);
        }
    }
}
