//! StreamBox-like morsel-driven engine model (Figure 11 comparison).
//!
//! StreamBox executes *morsels* pulled from a centralized task queue rather
//! than pinned operator pipelines. The paper identifies two reasons it
//! scales poorly past one socket on WC:
//!
//! 1. a **centralized task scheduling/distribution mechanism with locking
//!    primitives** — contention on the dispatcher grows with core count;
//! 2. **data shuffling** for keyed aggregation (the same word must reach the
//!    same counter), which issues heavy remote memory traffic when workers
//!    span sockets (the paper's VTune numbers: ~67× BriskStream's remote
//!    cache misses per k events).
//!
//! Both effects are modeled on top of the shared simulator: the dispatch
//! cost per batch scales linearly with the number of active cores (a
//! queue-lock whose critical section every worker crosses), placement
//! spreads workers across all enabled sockets (morsel stealing is
//! locality-oblivious), and the ordered mode adds the epoch-sequencing cost
//! per batch that the paper's out-of-order variant removes.

use brisk_dag::{ExecutionGraph, LogicalTopology, Placement};
use brisk_numa::Machine;
use brisk_sim::{SimConfig, Simulator};

/// Tuning of the StreamBox model.
#[derive(Debug, Clone, Copy)]
pub struct StreamBoxOptions {
    /// Per-core contribution to the per-batch dispatch (lock) cost, ns.
    pub lock_ns_per_core: f64,
    /// Extra per-batch cost of the order-guaranteeing container, ns.
    pub ordering_ns_per_batch: f64,
    /// Whether the ordered (default) pipeline is used; the paper also
    /// measures a modified out-of-order build.
    pub ordered: bool,
}

impl Default for StreamBoxOptions {
    fn default() -> Self {
        StreamBoxOptions {
            lock_ns_per_core: 55.0,
            ordering_ns_per_batch: 9_000.0,
            ordered: true,
        }
    }
}

/// Simulate a StreamBox-like run of `topology` on the first `cores` cores of
/// `machine`. Replication fills the enabled cores evenly across operators
/// (morsel engines keep every worker busy on whatever stage has data).
pub fn streambox_run(
    machine: &Machine,
    topology: &LogicalTopology,
    cores: usize,
    options: StreamBoxOptions,
    base: SimConfig,
) -> f64 {
    let (restricted, last_usable) = machine.restrict_cores(cores);
    let mut usable = vec![restricted.cores_per_socket(); restricted.sockets()];
    if let Some(last) = usable.last_mut() {
        *last = last_usable;
    }
    let total_cores: usize = usable.iter().sum();

    // Spread worker replicas over operators proportionally to their cost, as
    // a work-conserving morsel scheduler effectively does. At least one
    // replica per operator; cap at the core budget.
    let replication = proportional_replication(topology, total_cores);
    let graph = ExecutionGraph::new(topology, &replication, 1);

    // Locality-oblivious spread over sockets.
    let placement = round_robin(&graph, &restricted);

    let dispatch = options.lock_ns_per_core * total_cores as f64
        + if options.ordered {
            options.ordering_ns_per_batch
        } else {
            0.0
        };
    let config = SimConfig {
        usable_cores: Some(usable),
        dispatch_overhead_ns: dispatch,
        ..base
    };
    Simulator::new(&restricted, &graph, &placement, config)
        .expect("streambox simulation is well-formed")
        .run()
        .throughput
}

/// Distribute `cores` replicas across operators proportionally to their
/// per-tuple cost × relative rate, minimum one each.
pub fn proportional_replication(topology: &LogicalTopology, cores: usize) -> Vec<usize> {
    let n = topology.operator_count();
    let mut replication = vec![1usize; n];
    if cores <= n {
        return replication;
    }
    // Estimate relative input rate of each operator with selectivity
    // propagation (unit spout rate).
    let mut rate = vec![0.0f64; n];
    for &op in topology.topological_order() {
        let spec = topology.operator(op);
        if topology.incoming_edges(op).next().is_none() {
            rate[op.0] = 1.0;
        }
        for edge in topology.outgoing_edges(op) {
            let sel = spec.selectivity(None, &edge.stream);
            rate[edge.to.0] += rate[op.0] * sel;
        }
    }
    let weight: Vec<f64> = topology
        .operators()
        .map(|(id, spec)| rate[id.0] * spec.cost.local_cycles().max(1.0))
        .collect();
    let total_weight: f64 = weight.iter().sum();
    let extra = cores - n;
    let mut assigned = 0usize;
    for i in 0..n {
        let share = (extra as f64 * weight[i] / total_weight).floor() as usize;
        replication[i] += share;
        assigned += share;
    }
    // Leftovers to the heaviest operators.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weight[b].partial_cmp(&weight[a]).expect("finite"));
    let mut i = 0;
    while assigned < extra {
        replication[order[i % n]] += 1;
        assigned += 1;
        i += 1;
    }
    replication
}

fn round_robin(graph: &ExecutionGraph<'_>, machine: &Machine) -> Placement {
    brisk_rlas::place_with_strategy(graph, machine, brisk_rlas::PlacementStrategy::RoundRobin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_dag::{CostProfile, Partitioning, TopologyBuilder, DEFAULT_STREAM};

    fn keyed_count() -> LogicalTopology {
        let mut b = TopologyBuilder::new("kc");
        let s = b.add_spout("s", CostProfile::new(200.0, 20.0, 32.0, 100.0));
        let c = b.add_bolt("count", CostProfile::new(600.0, 60.0, 64.0, 32.0));
        let k = b.add_sink("k", CostProfile::new(50.0, 5.0, 16.0, 16.0));
        b.connect(s, DEFAULT_STREAM, c, Partitioning::KeyBy);
        b.connect_shuffle(c, k);
        b.build().expect("valid")
    }

    fn fast_config() -> SimConfig {
        SimConfig {
            horizon_ns: 30_000_000,
            warmup_ns: 5_000_000,
            noise_sigma: 0.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn proportional_replication_respects_budget() {
        let t = keyed_count();
        for cores in [3usize, 8, 16, 64] {
            let r = proportional_replication(&t, cores);
            assert!(r.iter().all(|&x| x >= 1));
            assert_eq!(r.iter().sum::<usize>(), cores.max(3));
        }
    }

    #[test]
    fn out_of_order_outperforms_ordered() {
        let m = brisk_numa::Machine::server_a();
        let t = keyed_count();
        let ordered = streambox_run(&m, &t, 16, StreamBoxOptions::default(), fast_config());
        let ooo = streambox_run(
            &m,
            &t,
            16,
            StreamBoxOptions {
                ordered: false,
                ..StreamBoxOptions::default()
            },
            fast_config(),
        );
        assert!(
            ooo > ordered,
            "out-of-order {ooo} must beat ordered {ordered}"
        );
    }

    #[test]
    fn scaling_saturates_at_high_core_counts() {
        // The dispatch lock must prevent linear scaling from 16 to 144
        // cores: speedup well below the 9x core increase.
        let m = brisk_numa::Machine::server_a();
        let t = keyed_count();
        let opts = StreamBoxOptions::default();
        let t16 = streambox_run(&m, &t, 16, opts, fast_config());
        let t144 = streambox_run(&m, &t, 144, opts, fast_config());
        assert!(
            t144 < t16 * 5.0,
            "lock contention should cap scaling: {t16} -> {t144}"
        );
    }
}
