//! # brisk-baselines
//!
//! Models of the systems the paper compares against. Apache Storm 1.1.1,
//! Apache Flink 1.3.2 and StreamBox cannot be run here, so each is recreated
//! as a *cost profile + scheduler + engine configuration* over the same DAG
//! machinery, calibrated against what the paper measured about them:
//!
//! * **Storm-like** — Figure 8 shows Storm spending 4–20× BriskStream's time
//!   in function execution (instruction-cache misses dominate: >40%
//!   front-end stalls) and ~10× in "Others" (temporary objects, queue
//!   overheads); on top, each tuple pays (de)serialization and duplicated
//!   per-tuple headers. Storm's *even scheduler* spreads executors
//!   round-robin with no NUMA awareness, and its unbounded-ish buffering
//!   yields multi-second tail latencies under saturation (Table 5: 37.9 s
//!   p99 on WC).
//! * **Flink-like** — lighter per-tuple costs than Storm, NUMA-aware only to
//!   the extent of one task manager per socket (slot spreading). Operators
//!   with multiple input streams pay a stream-merger (co-flat-map) cost —
//!   the paper's explanation for Flink's poor LR throughput.
//! * **StreamBox-like** — a morsel-driven engine: efficient per-tuple costs,
//!   but every batch dispatch goes through a centralized lock whose cost
//!   grows with core count, and keyed aggregation requires a data shuffle
//!   whose remote misses the paper measured at ~67× BriskStream's. Its
//!   ordered mode adds per-batch epoch sequencing on top (the paper also
//!   measures an out-of-order variant with that cost removed).
//!
//! Every knob is expressed relative to the BriskStream topology, so a
//! baseline run is: transform the topology costs → pick the system's
//! scheduler placement → simulate with the system's engine configuration.

pub mod streambox;
pub mod systems;

pub use streambox::{streambox_run, StreamBoxOptions};
pub use systems::{baseline_run, BaselineOutcome, System};
