//! Storm-like and Flink-like system models.

use brisk_dag::{ExecutionGraph, LogicalTopology, Placement};
use brisk_metrics::Histogram;
use brisk_numa::Machine;
use brisk_sim::{SimConfig, Simulator};

/// Which distributed-style DSPS to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// Apache Storm 1.1.1-like cost profile + even scheduler.
    Storm,
    /// Apache Flink 1.3.2-like cost profile + slot-spread scheduler.
    Flink,
}

impl System {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            System::Storm => "Storm",
            System::Flink => "Flink",
        }
    }

    /// Multiplier on `Te` (instruction footprint / front-end stalls —
    /// Section 5.1 removes these in BriskStream). Kept moderate because the
    /// additive part below models the *fixed* engine footprint that
    /// dominates light operators (Figure 8: Storm's Execute is 4–20× on
    /// WC's sub-2µs operators but user functions themselves run the same
    /// bytecode).
    fn exec_factor(&self) -> f64 {
        match self {
            System::Storm => 1.6,
            System::Flink => 1.35,
        }
    }

    /// Flat per-tuple *execution* cost in ns: the engine code dragged
    /// through the instruction cache on every invocation.
    fn exec_add_ns(&self) -> f64 {
        match self {
            System::Storm => 4500.0,
            System::Flink => 2600.0,
        }
    }

    /// Multiplier on "Others" (queue access, temporary objects, condition
    /// checking — Figure 8 shows BriskStream cutting these to ~10%).
    fn overhead_factor(&self) -> f64 {
        match self {
            System::Storm => 12.0,
            System::Flink => 8.0,
        }
    }

    /// Flat per-tuple cost in ns at the calibration clock:
    /// (de)serialization, duplicated tuple headers, cross-process queue
    /// copies — the components Section 5.1/5.2 eliminates.
    fn flat_ns(&self) -> f64 {
        match self {
            System::Storm => 3000.0,
            System::Flink => 1800.0,
        }
    }

    /// Extra per-tuple cost for operators with more than one distinct input
    /// stream: Flink inserts a stream-merger (co-flat-map) in front of
    /// multi-input operators, which the paper blames for its LR results.
    fn multi_input_ns(&self) -> f64 {
        match self {
            System::Storm => 0.0,
            System::Flink => 2600.0,
        }
    }

    /// Effective buffering depth (queue capacity in batches). Storm's deep
    /// buffering under saturation is what produces its multi-second p99
    /// latencies (Table 5).
    fn queue_capacity(&self) -> usize {
        match self {
            System::Storm => 8192,
            System::Flink => 1024,
        }
    }

    /// Inflate `topology`'s cost profiles to this system's per-tuple costs.
    pub fn transform(&self, topology: &LogicalTopology, calibration_ghz: f64) -> LogicalTopology {
        let flat_cycles = self.flat_ns() * calibration_ghz;
        let exec_add_cycles = self.exec_add_ns() * calibration_ghz;
        let merger_cycles = self.multi_input_ns() * calibration_ghz;
        let multi_input: Vec<bool> = topology
            .operators()
            .map(|(id, _)| {
                let mut streams: Vec<&str> = topology
                    .incoming_edges(id)
                    .map(|e| e.stream.as_str())
                    .collect();
                streams.sort();
                streams.dedup();
                streams.len() > 1
            })
            .collect();
        let mut i = 0;
        topology.map_costs(|spec| {
            let mut cost = spec
                .cost
                .scaled(self.exec_factor(), self.overhead_factor())
                .with_extra_exec(exec_add_cycles)
                .with_extra_overhead(flat_cycles);
            if multi_input[i] {
                cost = cost.with_extra_overhead(merger_cycles);
            }
            i += 1;
            cost
        })
    }

    /// The system's scheduler, as a placement over `graph`.
    ///
    /// Storm's *even scheduler* round-robins executors over workers; Flink
    /// spreads slots one task manager per socket — both reduce to a
    /// round-robin over sockets at our granularity, which is exactly the RR
    /// strategy of Table 6. Flink's is seeded differently so plans differ.
    pub fn place(&self, graph: &ExecutionGraph<'_>, machine: &Machine) -> Placement {
        match self {
            System::Storm => brisk_rlas_rr(graph, machine),
            System::Flink => brisk_rlas_rr(graph, machine),
        }
    }

    /// Simulator configuration for this system.
    pub fn sim_config(&self, base: SimConfig) -> SimConfig {
        SimConfig {
            queue_capacity: self.queue_capacity(),
            ..base
        }
    }
}

fn brisk_rlas_rr(graph: &ExecutionGraph<'_>, machine: &Machine) -> Placement {
    brisk_rlas::place_with_strategy(graph, machine, brisk_rlas::PlacementStrategy::RoundRobin)
}

/// Outcome of one baseline simulation.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Which system was emulated.
    pub system: System,
    /// Events per second at the sinks.
    pub throughput: f64,
    /// End-to-end latency distribution, ns.
    pub latency_ns: Histogram,
}

/// Transform, place and simulate `topology` under `system` on `machine`.
///
/// The baseline gets its *own* parallelism, sized proportionally to its own
/// per-operator costs over the machine's cores — the paper tunes each
/// system's configuration for best performance before comparing.
pub fn baseline_run(
    system: System,
    machine: &Machine,
    topology: &LogicalTopology,
    calibration_ghz: f64,
    base: SimConfig,
) -> BaselineOutcome {
    let transformed = system.transform(topology, calibration_ghz);
    let replication =
        crate::streambox::proportional_replication(&transformed, machine.total_cores());
    let graph = ExecutionGraph::new(&transformed, &replication, 1);
    let placement = system.place(&graph, machine);
    let config = system.sim_config(base);
    let report = Simulator::new(machine, &graph, &placement, config)
        .expect("baseline simulation is well-formed")
        .run();
    BaselineOutcome {
        system,
        throughput: report.throughput,
        latency_ns: report.latency_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_dag::{CostProfile, Partitioning, TopologyBuilder, DEFAULT_STREAM};

    fn toy() -> LogicalTopology {
        let mut b = TopologyBuilder::new("toy");
        let s = b.add_spout("s", CostProfile::new(120.0, 12.0, 16.0, 64.0));
        let x = b.add_bolt("x", CostProfile::new(240.0, 24.0, 16.0, 64.0));
        let y = b.add_bolt("y", CostProfile::new(240.0, 24.0, 16.0, 64.0));
        let j = b.add_bolt("join", CostProfile::new(240.0, 24.0, 16.0, 64.0));
        let k = b.add_sink("k", CostProfile::new(60.0, 6.0, 16.0, 64.0));
        b.connect(s, "left", x, Partitioning::Shuffle);
        b.connect(s, "right", y, Partitioning::Shuffle);
        b.connect(x, "left", j, Partitioning::Shuffle);
        b.connect(y, "right", j, Partitioning::Shuffle);
        b.connect(j, DEFAULT_STREAM, k, Partitioning::Shuffle);
        b.set_selectivity(s, None, "left", 0.5);
        b.set_selectivity(s, None, "right", 0.5);
        b.build().expect("valid")
    }

    #[test]
    fn storm_inflates_all_components() {
        let t = toy();
        let storm = System::Storm.transform(&t, 1.0);
        for (id, spec) in t.operators() {
            let inflated = storm.operator(id);
            // Hybrid model: factor + flat engine footprint.
            assert!(inflated.cost.exec_cycles >= spec.cost.exec_cycles * 1.6 + 4500.0 - 1e-9);
            assert!(inflated.cost.overhead_cycles > spec.cost.overhead_cycles * 10.0);
            // Tuple sizes and memory traffic are workload properties, not
            // engine properties.
            assert_eq!(inflated.cost.output_bytes, spec.cost.output_bytes);
        }
    }

    #[test]
    fn flink_charges_stream_merger_only_on_multi_input_ops() {
        let t = toy();
        let flink = System::Flink.transform(&t, 1.0);
        let join = t.find("join").expect("exists");
        let x = t.find("x").expect("exists");
        let base_join = t.operator(join).cost;
        let base_x = t.operator(x).cost;
        // x and join have identical base costs; only join (two input
        // streams) pays the merger.
        let dx = flink.operator(x).cost.overhead_cycles - base_x.overhead_cycles * 8.0;
        let dj = flink.operator(join).cost.overhead_cycles - base_join.overhead_cycles * 8.0;
        assert!(
            (dx - 1800.0).abs() < 1e-9,
            "x pays only the flat cost: {dx}"
        );
        assert!((dj - 4400.0).abs() < 1e-9, "join pays flat + merger: {dj}");
    }

    fn linear() -> LogicalTopology {
        let mut b = TopologyBuilder::new("linear");
        let s = b.add_spout("s", CostProfile::new(120.0, 12.0, 16.0, 64.0));
        let x = b.add_bolt("x", CostProfile::new(240.0, 24.0, 16.0, 64.0));
        let k = b.add_sink("k", CostProfile::new(60.0, 6.0, 16.0, 64.0));
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        b.build().expect("valid")
    }

    #[test]
    fn storm_is_slower_than_flink_than_brisk_on_single_input_pipelines() {
        let m = brisk_numa::MachineBuilder::new("b")
            .sockets(2)
            .cores_per_socket(4)
            .clock_ghz(1.0)
            .build();
        let t = linear();
        let repl = vec![1, 1, 1];
        let base = SimConfig {
            horizon_ns: 30_000_000,
            warmup_ns: 5_000_000,
            noise_sigma: 0.0,
            ..SimConfig::default()
        };
        let storm = baseline_run(System::Storm, &m, &t, 1.0, base.clone());
        let flink = baseline_run(System::Flink, &m, &t, 1.0, base.clone());
        // Simulate plain BriskStream costs under the same placement for
        // reference.
        let graph = ExecutionGraph::new(&t, &repl, 1);
        let placement = System::Storm.place(&graph, &m);
        let brisk = Simulator::new(&m, &graph, &placement, base)
            .expect("valid")
            .run();
        assert!(storm.throughput < flink.throughput);
        assert!(flink.throughput < brisk.throughput);
    }

    #[test]
    fn flink_merger_makes_it_lose_to_storm_on_multi_input_topologies() {
        // The paper's LR observation: Flink needs co-flat-map stream
        // mergers in front of multi-input operators and falls behind Storm.
        let m = brisk_numa::MachineBuilder::new("b")
            .sockets(2)
            .cores_per_socket(4)
            .clock_ghz(1.0)
            .build();
        let t = toy(); // contains a two-input join
        let repl = vec![1, 1, 1, 1, 1];
        let base = SimConfig {
            horizon_ns: 30_000_000,
            warmup_ns: 5_000_000,
            noise_sigma: 0.0,
            ..SimConfig::default()
        };
        let _ = &repl;
        let storm = baseline_run(System::Storm, &m, &t, 1.0, base.clone());
        let flink = baseline_run(System::Flink, &m, &t, 1.0, base);
        assert!(flink.throughput < storm.throughput);
    }

    #[test]
    fn storm_buffers_produce_larger_latency() {
        // Three cores leave exactly one replica per operator, keeping the
        // bolt the bottleneck under every cost profile so the input queues
        // actually fill.
        let m = brisk_numa::MachineBuilder::new("b")
            .sockets(1)
            .cores_per_socket(3)
            .clock_ghz(1.0)
            .build();
        // Deep buffers need virtual seconds to reach their steady state;
        // a clearly bolt-bound pipeline and small batches fill them fast.
        let t = {
            let mut b = TopologyBuilder::new("bound");
            let s = b.add_spout("s", CostProfile::new(120.0, 12.0, 16.0, 64.0));
            let x = b.add_bolt("x", CostProfile::new(2400.0, 24.0, 16.0, 64.0));
            let k = b.add_sink("k", CostProfile::new(60.0, 6.0, 16.0, 64.0));
            b.connect_shuffle(s, x);
            b.connect_shuffle(x, k);
            b.build().expect("valid")
        };
        let repl = vec![1, 1, 1];
        let base = SimConfig {
            horizon_ns: 2_500_000_000,
            warmup_ns: 1_200_000_000,
            noise_sigma: 0.0,
            batch_size: 16,
            ..SimConfig::default()
        };
        let _ = &repl;
        let storm = baseline_run(System::Storm, &m, &t, 1.0, base.clone());
        let flink = baseline_run(System::Flink, &m, &t, 1.0, base);
        let sp99 = storm.latency_ns.percentile(99.0);
        let fp99 = flink.latency_ns.percentile(99.0);
        assert!(
            sp99 > fp99,
            "Storm p99 {sp99} should exceed Flink p99 {fp99}"
        );
    }
}
