//! Fault-injection conformance: supervision must be *execution-shape
//! invariant*. Under the same deterministic injected fault, every cell of
//! the {ThreadPerReplica, CorePool} × {Spsc, Mutex, Mpsc} × {fusion on,
//! fusion off} matrix must produce identical per-operator counter vectors
//! — processed, emitted, quarantined, restarts and sink totals — and obey
//! exactly-once-minus-quarantined conservation on every attributable edge.
//!
//! Word Count pins cross-config equality (all its operators have
//! content-deterministic 1:1-or-derivable arity, so the aggregate effect
//! of quarantining the Nth tuple of a replica is the same whatever fabric
//! or schedule delivered it). Linear Road — multi-stream dispatcher,
//! interleaving-dependent accident path — instead pins the conservation
//! laws, fault attribution and clean termination per cell.
//!
//! Each cell builds its own [`FaultPlan`]: trigger state (the `seen` /
//! `fired` atomics) is shared across every app an instance instruments, by
//! design — restarts must not re-fire a panic — so reusing one plan across
//! cells would fire its faults in the first cell only.

use brisk_apps::app_sized;
use brisk_dag::{CostProfile, Partitioning, TopologyBuilder, DEFAULT_STREAM};
use brisk_runtime::{
    silence_injected_panics, AppRuntime, Collector, DynBolt, DynSpout, Engine, EngineConfig,
    FaultPlan, QueueKind, RestartPolicy, RunReport, Scheduler, SpoutStatus, TupleView,
};
use std::time::Duration;

const KINDS: [QueueKind; 3] = [QueueKind::Spsc, QueueKind::Mutex, QueueKind::Mpsc];
const SCHEDULERS: [Scheduler; 2] = [
    Scheduler::ThreadPerReplica,
    Scheduler::CorePool { workers: 2 },
];

/// WC replication: spout(0) parser(1) splitter(2)x3 counter(3)x2 sink(4).
/// The 3→2 KeyBy edge keeps counter and sink real replicas in every cell;
/// the 1:1 head fuses in the fusion=on cells.
fn wc_replication() -> Vec<usize> {
    vec![1, 1, 3, 2, 1]
}

struct Cell {
    scheduler: Scheduler,
    kind: QueueKind,
    fusion: bool,
    report: RunReport,
}

impl Cell {
    fn label(&self) -> String {
        format!("{} {} fusion={}", self.scheduler, self.kind, self.fusion)
    }
}

/// One run per matrix cell, each with a freshly built plan.
fn run_wc_matrix(plan_for_cell: impl Fn() -> FaultPlan, budget: u64) -> Vec<Cell> {
    silence_injected_panics();
    let mut cells = Vec::new();
    for scheduler in SCHEDULERS {
        for kind in KINDS {
            for fusion in [true, false] {
                let app = plan_for_cell().instrument(app_sized("WC", budget).expect("known app"));
                let config = EngineConfig::builder()
                    .scheduler(scheduler)
                    .queue_kind(kind)
                    .fusion(fusion)
                    .restart(RestartPolicy::Bounded {
                        max_restarts: 3,
                        backoff: Duration::from_millis(5),
                    })
                    .build();
                let engine =
                    Engine::new(app, wc_replication(), config).expect("valid engine config");
                let report = engine.run_until_events(u64::MAX, Duration::from_secs(120));
                cells.push(Cell {
                    scheduler,
                    kind,
                    fusion,
                    report,
                });
            }
        }
    }
    cells
}

/// The five counter vectors conformance compares across cells.
fn vectors(r: &RunReport) -> (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>, u64) {
    let per_op = r.per_operator();
    (
        per_op.iter().map(|o| o.processed).collect(),
        per_op.iter().map(|o| o.emitted).collect(),
        per_op.iter().map(|o| o.quarantined).collect(),
        per_op.iter().map(|o| o.restarts).collect(),
        r.sink_events,
    )
}

/// WC is a pure chain on single streams: every edge is attributable, and
/// each consumer must account for its producer's full output as processed
/// or quarantined.
fn check_wc_conservation(cell: &Cell) {
    let r = &cell.report;
    for op in 1..=4 {
        let upstream = r.operator(op - 1).emitted;
        let me = r.operator(op);
        assert_eq!(
            upstream,
            me.processed + me.quarantined,
            "{}: edge {}→{} must conserve tuples",
            cell.label(),
            op - 1,
            op
        );
    }
}

fn check_identical(cells: &[Cell], what: &str) {
    let reference = vectors(&cells[0].report);
    for cell in &cells[1..] {
        assert_eq!(
            vectors(&cell.report),
            reference,
            "{what}: {} diverged from {}",
            cell.label(),
            cells[0].label()
        );
    }
}

#[test]
fn wc_spout_panic_matches_the_fault_free_baseline() {
    let budget = 600;
    let baseline = run_wc_matrix(FaultPlan::new, budget);
    let injected = run_wc_matrix(|| FaultPlan::new().panic_on_nth(0, 0, 50), budget);
    check_identical(&baseline, "baseline");
    check_identical(&injected, "spout-panic");
    // The spout panics before generating and recovers its cursor: the
    // injected matrix reproduces the fault-free tuple flow exactly.
    let (bp, be, bq, _, bs) = vectors(&baseline[0].report);
    let (ip, ie, iq, ir, is_) = vectors(&injected[0].report);
    assert_eq!(ip, bp, "processed unchanged by a recovered spout fault");
    assert_eq!(ie, be, "emitted unchanged by a recovered spout fault");
    assert_eq!(is_, bs, "sink total unchanged by a recovered spout fault");
    assert_eq!(iq, bq, "nothing quarantined: the fault predates the tuple");
    assert_eq!(ir[0], 1, "exactly one spout restart");
    for cell in &injected {
        check_wc_conservation(cell);
        assert_eq!(cell.report.faults().len(), 1, "{}", cell.label());
        assert!(cell.report.faults()[0].restarted, "{}", cell.label());
    }
}

#[test]
fn wc_mid_bolt_panic_is_identical_across_the_matrix() {
    // Counter (op 3) replica 0 loses its 30th tuple in every cell. The
    // counter is a real (unfused) replica in all twelve cells, so this
    // exercises both schedulers' restart paths over every fabric.
    let cells = run_wc_matrix(|| FaultPlan::new().panic_on_nth(3, 0, 30), 600);
    check_identical(&cells, "mid-bolt-panic");
    for cell in &cells {
        check_wc_conservation(cell);
        let counter = cell.report.operator(3);
        assert_eq!(counter.quarantined, 1, "{}", cell.label());
        assert_eq!(counter.restarts, 1, "{}", cell.label());
        assert_eq!(counter.faults, 1, "{}", cell.label());
        assert_eq!(
            cell.report.operator(2).emitted,
            counter.processed + 1,
            "{}: exactly the poison tuple is missing",
            cell.label()
        );
        assert!(cell.report.sink_events > 0, "{}", cell.label());
    }
}

#[test]
fn wc_sink_panic_is_identical_across_the_matrix() {
    let cells = run_wc_matrix(|| FaultPlan::new().panic_on_nth(4, 0, 40), 600);
    check_identical(&cells, "sink-panic");
    for cell in &cells {
        check_wc_conservation(cell);
        let sink = cell.report.operator(4);
        assert_eq!(sink.quarantined, 1, "{}", cell.label());
        assert_eq!(sink.restarts, 1, "{}", cell.label());
        assert_eq!(
            cell.report.sink_events,
            cell.report.operator(3).emitted - 1,
            "{}: sink total is exactly-once minus the quarantined tuple",
            cell.label()
        );
    }
}

struct SeqSpout {
    next: u64,
    limit: u64,
}
impl DynSpout for SeqSpout {
    fn next(&mut self, c: &mut Collector) -> SpoutStatus {
        if self.next >= self.limit {
            return SpoutStatus::Exhausted;
        }
        let now = c.now_ns();
        c.send_default(self.next, now, self.next);
        self.next += 1;
        SpoutStatus::Emitted(1)
    }
}

struct NullSink;
impl DynBolt for NullSink {
    fn execute(&mut self, _t: &TupleView<'_>, _c: &mut Collector) {}
}

/// spout(1) → sink(3) over Broadcast: every jumbo's slab is shared by all
/// three sink replicas when the fault fires.
fn broadcast_app(budget: u64) -> AppRuntime {
    let mut b = TopologyBuilder::new("bc-fault");
    let s = b.add_spout("src", CostProfile::trivial());
    let k = b.add_sink("out", CostProfile::trivial());
    b.connect(s, DEFAULT_STREAM, k, Partitioning::Broadcast);
    let t = b.build().expect("valid topology");
    let (s, k) = (t.find("src").expect("src"), t.find("out").expect("out"));
    AppRuntime::new(t)
        .spout(s, move |_| SeqSpout {
            next: 0,
            limit: budget,
        })
        .sink(k, |_| NullSink)
}

/// Quarantining a tuple out of a batch whose slab is *shared* across
/// broadcast replicas must stay exact: one copy lost on the faulted
/// replica, every other replica's copies intact, and the counter vectors
/// identical across the whole scheduler × fabric × fusion matrix. This is
/// the shared-batch half of poison-tuple conservation — the quarantine
/// path keeps the un-poisoned remainder as a slice of the shared slab, so
/// any cross-replica interference (or a slab clone that forked the
/// accounting) would break either equality below. The debug slab tripwire
/// at engine teardown also asserts the quarantined tuple's slab handle
/// was released.
#[test]
fn broadcast_quarantine_conserves_shared_batches() {
    silence_injected_panics();
    let budget = 600u64;
    let replicas = 3u64;
    let mut cells = Vec::new();
    for scheduler in SCHEDULERS {
        for kind in KINDS {
            for fusion in [true, false] {
                // Sink replica 0 panics on its 30th delivered copy; the
                // slab under that copy is shared with replicas 1 and 2.
                let plan = FaultPlan::new().panic_on_nth(1, 0, 30);
                let app = plan.instrument(broadcast_app(budget));
                let config = EngineConfig::builder()
                    .scheduler(scheduler)
                    .queue_kind(kind)
                    .fusion(fusion)
                    .restart(RestartPolicy::Bounded {
                        max_restarts: 3,
                        backoff: Duration::from_millis(5),
                    })
                    .build();
                let engine = Engine::new(app, vec![1, 3], config).expect("valid engine config");
                let report = engine.run_until_events(u64::MAX, Duration::from_secs(120));
                cells.push(Cell {
                    scheduler,
                    kind,
                    fusion,
                    report,
                });
            }
        }
    }
    check_identical(&cells, "broadcast-quarantine");
    for cell in &cells {
        let r = &cell.report;
        let sink = r.operator(1);
        assert_eq!(r.operator(0).emitted, budget, "{}", cell.label());
        assert_eq!(
            sink.quarantined,
            1,
            "{}: exactly the poison copy",
            cell.label()
        );
        assert_eq!(
            sink.processed + sink.quarantined,
            budget * replicas,
            "{}: every broadcast copy accounted, none cloned or lost",
            cell.label()
        );
        assert_eq!(sink.restarts, 1, "{}", cell.label());
        assert_eq!(r.sink_events, budget * replicas - 1, "{}", cell.label());
    }
}

#[test]
fn lr_faults_conserve_and_terminate_under_both_schedulers() {
    silence_injected_panics();
    let budget = 800;
    // spout head, fused-chain parser, multi-producer funnel sink.
    for scheduler in SCHEDULERS {
        for (op, nth) in [(0usize, 40u64), (1, 30), (11, 25)] {
            let plan = FaultPlan::new().panic_on_nth(op, 0, nth);
            let app = plan.instrument(app_sized("LR", budget).expect("known app"));
            let config = EngineConfig::builder()
                .scheduler(scheduler)
                .restart(RestartPolicy::Bounded {
                    max_restarts: 3,
                    backoff: Duration::from_millis(5),
                })
                .build();
            let engine = Engine::new(app, vec![1; 12], config).expect("valid engine config");
            let report = engine.run_until_events(u64::MAX, Duration::from_secs(120));
            let ctx = format!("LR {scheduler} op={op}");

            assert!(report.sink_events > 0, "{ctx}: run survived the fault");
            assert_eq!(report.faults().len(), 1, "{ctx}");
            let fault = &report.faults()[0];
            assert_eq!(fault.op_index, op, "{ctx}: fault attributed to op");
            assert!(fault.restarted, "{ctx}");
            assert_eq!(report.operator(op).restarts, 1, "{ctx}");

            // Parser (op 1) emits on a single stream: its edge from the
            // spout stays attributable whatever else the fault disturbed.
            let parser = report.operator(1);
            assert_eq!(
                report.operator(0).emitted,
                parser.processed + parser.quarantined,
                "{ctx}: spout→parser conservation"
            );
            assert_eq!(report.operator(0).emitted, budget, "{ctx}: full budget");
            let quarantined = report.fault_summary().quarantined;
            if op == 0 {
                assert_eq!(quarantined, 0, "{ctx}: spout fault predates the tuple");
            } else {
                assert_eq!(quarantined, 1, "{ctx}: exactly the poison tuple");
            }
        }
    }
}
