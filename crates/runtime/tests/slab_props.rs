//! Property tests for the slab refcount lifecycle behind the zero-copy
//! batch fabric.
//!
//! A random interleaving of builder pushes, seals, clones, slices and
//! drops is replayed against a plain-`Vec` model. Two failure classes are
//! hunted:
//!
//! * **Leaks** — every sealed slab must return to the pool once its last
//!   handle drops: `outstanding` returns to zero at the end of every
//!   sequence, however clones and slices extended the slab's life.
//! * **Use-after-recycle** — a live batch must keep reading its own
//!   payloads and lanes even while *other* slabs are recycled and their
//!   storage is re-filled by later builders. Any aliasing between a
//!   recycled slab's new contents and a live batch's view shows up as a
//!   content mismatch against the model.

use brisk_runtime::{Batch, BatchBuilder, SlabPool};
use proptest::collection::vec;
use proptest::prelude::*;

/// One step of a lifecycle sequence, decoded from fuzzer integers so
/// every random vector is a valid program.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push `n` tuples (1..=8) and seal into a live batch.
    Seal { n: u8, tag: u8 },
    /// Clone live batch `i % live.len()`.
    Clone { i: u8 },
    /// Slice a proper suffix of live batch `i % live.len()`.
    Slice { i: u8 },
    /// Drop live batch `i % live.len()`.
    Drop { i: u8 },
}

fn decode(raw: (u8, u8, u8)) -> Op {
    let (kind, i, tag) = raw;
    match kind % 4 {
        0 => Op::Seal {
            n: (i % 8) + 1,
            tag,
        },
        1 => Op::Clone { i },
        2 => Op::Slice { i },
        _ => Op::Drop { i },
    }
}

/// A live batch paired with the payload/lane contents the model expects
/// it to keep showing until it drops.
struct Live {
    batch: Batch,
    expect: Vec<(u64, u64, u64)>, // (payload, event_ns, key)
}

fn check(live: &Live) {
    let payloads = live.batch.payloads::<u64>().expect("element type is u64");
    assert_eq!(payloads.len(), live.expect.len());
    for (i, &(p, e, k)) in live.expect.iter().enumerate() {
        assert_eq!(payloads[i], p, "payload {i} changed under a live view");
        assert_eq!(live.batch.event_ns(i), e, "event lane {i} changed");
        assert_eq!(live.batch.key(i), k, "key lane {i} changed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No leak, no use-after-recycle, for any alloc/clone/slice/drop
    /// interleaving.
    #[test]
    fn slab_lifecycle_matches_model(
        raw_ops in vec((0u8..=255, 0u8..=255, 0u8..=255), 1..120),
    ) {
        let pool = SlabPool::standalone();
        let mut builder = BatchBuilder::new(std::sync::Arc::clone(&pool));
        let mut live: Vec<Live> = Vec::new();
        let mut serial: u64 = 0;

        for op in raw_ops.into_iter().map(decode) {
            match op {
                Op::Seal { n, tag } => {
                    let mut expect = Vec::new();
                    for _ in 0..n {
                        serial += 1;
                        // Distinct per-seal contents: recycled storage that
                        // leaked into an older live view cannot match.
                        let row = (serial ^ ((tag as u64) << 32), serial * 3, serial * 7);
                        prop_assert!(builder.push(row.0, row.1, row.2).is_none());
                        expect.push(row);
                    }
                    let batch = builder.seal().expect("non-empty seal");
                    live.push(Live { batch, expect });
                }
                Op::Clone { i } => {
                    if live.is_empty() { continue; }
                    let src = &live[i as usize % live.len()];
                    live.push(Live {
                        batch: src.batch.clone(),
                        expect: src.expect.clone(),
                    });
                }
                Op::Slice { i } => {
                    if live.is_empty() { continue; }
                    let src = &live[i as usize % live.len()];
                    if src.expect.len() < 2 { continue; }
                    let start = 1 + (i as usize % (src.expect.len() - 1));
                    let len = src.expect.len() - start;
                    live.push(Live {
                        batch: src.batch.slice(start, len),
                        expect: src.expect[start..].to_vec(),
                    });
                }
                Op::Drop { i } => {
                    if live.is_empty() { continue; }
                    let idx = i as usize % live.len();
                    live.swap_remove(idx);
                }
            }
            // Every live view still reads exactly what the model says,
            // whatever recycling happened on dead slabs meanwhile.
            for l in &live {
                check(l);
            }
            // The pool's leak tripwire never exceeds what is actually
            // reachable: outstanding counts distinct live slabs plus the
            // builder's open slab (none here — every seal closes it).
            let mut slabs: Vec<usize> = live.iter().map(|l| l.batch.slab_id()).collect();
            slabs.sort_unstable();
            slabs.dedup();
            // outstanding must equal the number of distinct live slabs
            prop_assert_eq!(pool.stats().outstanding() as usize, slabs.len());
        }

        let seals = pool.stats().allocated() + pool.stats().recycled();
        drop(live);
        drop(builder);
        prop_assert_eq!(pool.stats().outstanding(), 0); // no slab leaked
        // Sanity: the sequence really exercised the arena.
        prop_assert!(pool.stats().allocated() <= seals);
    }

    /// Dropping handles in any order releases the slab exactly once, and
    /// recycled storage is reused rather than reallocated.
    #[test]
    fn recycle_reuses_storage_without_fresh_allocation(
        clones in 1usize..6,
        rounds in 2usize..10,
    ) {
        let pool = SlabPool::standalone();
        let mut builder = BatchBuilder::new(std::sync::Arc::clone(&pool));
        for round in 0..rounds {
            prop_assert!(builder.push(round as u64, 0, 0).is_none());
            let batch = builder.seal().expect("non-empty");
            let copies: Vec<Batch> = (0..clones).map(|_| batch.clone()).collect();
            prop_assert_eq!(batch.slab_refs(), clones + 1);
            prop_assert_eq!(pool.stats().outstanding(), 1);
            drop(batch);
            drop(copies);
            prop_assert_eq!(pool.stats().outstanding(), 0);
        }
        // Round 1 allocates; every later round reuses that storage.
        prop_assert_eq!(pool.stats().allocated(), 1);
        prop_assert_eq!(pool.stats().recycled(), rounds as u64 - 1);
    }
}
