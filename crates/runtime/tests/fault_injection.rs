//! Supervision behaviour under deterministic injected faults: restart
//! backoff, poison-tuple quarantine and conservation, clean retirement
//! under [`RestartPolicy::Never`], watchdog stall detection (and its
//! back-pressure blind spot staying blind), fused-chain fault attribution,
//! and queue close/drain semantics across abnormal exits.
//!
//! Every test drives a tiny deterministic spout → relay → sink chain with
//! a [`FaultPlan`] so failures land on exactly the same tuple run after
//! run, under either scheduler.

use brisk_dag::{CostProfile, Partitioning, TopologyBuilder, DEFAULT_STREAM};
use brisk_runtime::{
    silence_injected_panics, AppRuntime, Collector, DynBolt, DynSpout, Engine, EngineConfig,
    FaultKind, FaultPlan, RestartPolicy, RunReport, Scheduler, SpoutStatus, TupleView,
};
use std::time::{Duration, Instant};

const SCHEDULERS: [Scheduler; 2] = [
    Scheduler::ThreadPerReplica,
    Scheduler::CorePool { workers: 2 },
];

struct SeqSpout {
    next: u64,
    limit: u64,
}
impl DynSpout for SeqSpout {
    fn next(&mut self, c: &mut Collector) -> SpoutStatus {
        if self.next >= self.limit {
            return SpoutStatus::Exhausted;
        }
        let now = c.now_ns();
        c.send_default(self.next, now, self.next);
        self.next += 1;
        SpoutStatus::Emitted(1)
    }
}

/// 1:1 relay — post-fault aggregate counts stay deterministic whatever
/// tuple the fault lands on.
struct Relay;
impl DynBolt for Relay {
    fn execute(&mut self, t: &TupleView<'_>, c: &mut Collector) {
        let v = *t.value::<u64>().expect("u64 payload");
        c.send_default(v, t.event_ns, t.key);
    }
}

struct NullSink;
impl DynBolt for NullSink {
    fn execute(&mut self, _t: &TupleView<'_>, _c: &mut Collector) {}
}

/// spout(0) → relay(1) → sink(2), all single-replica. `forward` wires
/// Forward edges so the whole chain fuses when fusion is on.
fn chain_app(limit: u64, forward: bool) -> AppRuntime {
    let mut b = TopologyBuilder::new("faulty");
    let s = b.add_spout("src", CostProfile::trivial());
    let r = b.add_bolt("relay", CostProfile::trivial());
    let k = b.add_sink("out", CostProfile::trivial());
    if forward {
        b.connect(s, DEFAULT_STREAM, r, Partitioning::Forward);
        b.connect(r, DEFAULT_STREAM, k, Partitioning::Forward);
    } else {
        b.connect_shuffle(s, r);
        b.connect_shuffle(r, k);
    }
    let t = b.build().expect("valid topology");
    let (s, r, k) = (
        t.find("src").expect("src"),
        t.find("relay").expect("relay"),
        t.find("out").expect("out"),
    );
    AppRuntime::new(t)
        .spout(s, move |_| SeqSpout { next: 0, limit })
        .bolt(r, |_| Relay)
        .sink(k, |_| NullSink)
}

fn run(app: AppRuntime, plan: &FaultPlan, config: EngineConfig) -> RunReport {
    silence_injected_panics();
    let engine = Engine::new(plan.instrument(app), vec![1, 1, 1], config).expect("valid engine");
    engine.run_until_events(u64::MAX, Duration::from_secs(120))
}

fn bounded(max_restarts: u32, backoff: Duration) -> RestartPolicy {
    RestartPolicy::Bounded {
        max_restarts,
        backoff,
    }
}

#[test]
fn bounded_restart_recovers_and_quarantines_the_poison_tuple() {
    for scheduler in SCHEDULERS {
        let config = EngineConfig::builder()
            .scheduler(scheduler)
            .fusion(false)
            .restart(bounded(3, Duration::from_millis(1)))
            .build();
        let plan = FaultPlan::new().panic_on_nth(1, 0, 30);
        let report = run(chain_app(500, false), &plan, config);
        let relay = report.operator(1);
        assert_eq!(
            relay.quarantined, 1,
            "{scheduler}: poison tuple quarantined"
        );
        assert_eq!(relay.restarts, 1, "{scheduler}: one restart");
        assert_eq!(relay.faults, 1, "{scheduler}: one recorded fault");
        assert_eq!(
            relay.processed, 499,
            "{scheduler}: everything else processed"
        );
        assert_eq!(report.sink_events, 499, "{scheduler}: sink sees the rest");
        // Conservation: every tuple emitted upstream is either processed
        // or quarantined downstream — nothing lost, nothing duplicated.
        assert_eq!(
            report.operator(0).emitted,
            relay.processed + relay.quarantined,
            "{scheduler}: spout→relay conservation"
        );
        let sink = report.operator(2);
        assert_eq!(
            relay.emitted,
            sink.processed + sink.quarantined,
            "{scheduler}: relay→sink conservation"
        );
        assert_eq!(report.faults().len(), 1, "{scheduler}");
        let fault = &report.faults()[0];
        assert_eq!(fault.op_index, 1, "{scheduler}");
        assert_eq!(fault.kind, FaultKind::OperatorPanic, "{scheduler}");
        assert!(fault.restarted, "{scheduler}: policy granted the restart");
    }
}

#[test]
fn restart_backoff_doubles_and_is_respected() {
    for scheduler in SCHEDULERS {
        let config = EngineConfig::builder()
            .scheduler(scheduler)
            .fusion(false)
            .restart(bounded(2, Duration::from_millis(100)))
            .build();
        // Two faults: backoff 100ms then 200ms — the run cannot finish in
        // less than their sum.
        let plan = FaultPlan::new()
            .panic_on_nth(1, 0, 20)
            .panic_on_nth(1, 0, 60);
        let start = Instant::now();
        let report = run(chain_app(400, false), &plan, config);
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(280),
            "{scheduler}: 100ms + 200ms backoff must be observed, ran in {elapsed:?}"
        );
        let relay = report.operator(1);
        assert_eq!(relay.restarts, 2, "{scheduler}");
        assert_eq!(relay.quarantined, 2, "{scheduler}");
        assert_eq!(report.sink_events, 398, "{scheduler}");
    }
}

#[test]
fn never_policy_retires_the_replica_and_terminates_cleanly() {
    for scheduler in SCHEDULERS {
        let config = EngineConfig::builder()
            .scheduler(scheduler)
            .fusion(false)
            .build();
        let plan = FaultPlan::new().panic_on_nth(1, 0, 10);
        let start = Instant::now();
        let report = run(chain_app(200_000, false), &plan, config);
        // Clean termination well inside the 120s harness timeout: no hang,
        // no double panic, producers failed fast on the closed queue.
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "{scheduler}: run must wind down promptly after the replica dies"
        );
        assert_eq!(report.fault_summary().restarts, 0, "{scheduler}");
        assert_eq!(report.faults().len(), 1, "{scheduler}");
        assert!(!report.faults()[0].restarted, "{scheduler}: replica died");
        assert!(
            report.operator(0).emitted < 200_000,
            "{scheduler}: spout stopped early once its consumer died"
        );
        assert!(report.sink_events < 200_000, "{scheduler}");
    }
}

#[test]
fn spout_restart_loses_no_input() {
    for scheduler in SCHEDULERS {
        let config = EngineConfig::builder()
            .scheduler(scheduler)
            .fusion(false)
            .restart(bounded(3, Duration::from_millis(1)))
            .build();
        // The injected panic fires *before* the spout generates, and
        // `recover()` keeps the generation cursor: nothing is lost.
        let plan = FaultPlan::new().panic_on_nth(0, 0, 50);
        let report = run(chain_app(500, false), &plan, config);
        assert_eq!(report.operator(0).restarts, 1, "{scheduler}");
        assert_eq!(report.operator(0).emitted, 500, "{scheduler}: full budget");
        assert_eq!(report.sink_events, 500, "{scheduler}: exactly-once held");
        let quarantined: u64 = report.per_operator().iter().map(|o| o.quarantined).sum();
        assert_eq!(quarantined, 0, "{scheduler}: no tuple was in flight");
    }
}

#[test]
fn restart_preserves_rings_under_capacity_pressure() {
    for scheduler in SCHEDULERS {
        // Two-slot single-tuple rings: the spout is parked on a full ring
        // while the relay is down for its backoff. The restart must leave
        // the ring open and intact (closing it would kill the producer;
        // corrupting it would break conservation).
        let config = EngineConfig::builder()
            .scheduler(scheduler)
            .fusion(false)
            .queue_capacity(2)
            .jumbo_size(1)
            .restart(bounded(3, Duration::from_millis(1)))
            .build();
        let plan = FaultPlan::new().panic_on_nth(1, 0, 25);
        let report = run(chain_app(400, false), &plan, config);
        let relay = report.operator(1);
        assert_eq!(relay.restarts, 1, "{scheduler}");
        assert_eq!(relay.quarantined, 1, "{scheduler}");
        assert_eq!(
            report.operator(0).emitted,
            400,
            "{scheduler}: spout ran to exhaustion"
        );
        assert_eq!(
            report.operator(0).emitted,
            relay.processed + relay.quarantined,
            "{scheduler}: conservation across the restart"
        );
        assert_eq!(
            report.sink_events, 399,
            "{scheduler}: restart must not close or corrupt the full ring"
        );
    }
}

#[test]
fn dead_replica_unblocks_parked_producers() {
    // Tiny rings park the spout in a blocking push almost immediately;
    // the relay then dies under `Never`. Closing the dead replica's input
    // queues must wake the parked spout so the run winds down instead of
    // hanging a thread forever.
    let config = EngineConfig::builder()
        .fusion(false)
        .queue_capacity(2)
        .jumbo_size(1)
        .build();
    let plan = FaultPlan::new().panic_on_nth(1, 0, 5);
    let start = Instant::now();
    let report = run(chain_app(100_000, false), &plan, config);
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "parked producer must be unblocked by the dying consumer"
    );
    assert_eq!(report.faults().len(), 1);
    assert!(report.operator(0).emitted < 100_000, "spout stopped early");
}

#[test]
fn watchdog_ignores_back_pressured_replicas() {
    // A deliberately slow sink behind tiny queues back-pressures the
    // relay: long waits, but every one of them excused — the relay's
    // output queue is full (back-pressure, not a stall) and the sink keeps
    // making progress jumbo by jumbo.
    let config = EngineConfig::builder()
        .fusion(false)
        .queue_capacity(2)
        .jumbo_size(4)
        .stall_deadline(Duration::from_millis(100))
        .build();
    let plan = FaultPlan::new().delay_every(2, 0, 1, Duration::from_millis(1));
    let report = run(chain_app(300, false), &plan, config);
    assert_eq!(report.sink_events, 300);
    assert!(
        report.stalls().is_empty(),
        "back-pressured relay and a slow-but-moving sink are not stalls: {:?}",
        report.stalls()
    );
}

#[test]
fn watchdog_flags_a_genuinely_stuck_replica() {
    let config = EngineConfig::builder()
        .fusion(false)
        .stall_deadline(Duration::from_millis(60))
        .build();
    // The sink seizes for 500ms mid-run with input queued behind it and
    // (being a sink) no output queue to blame.
    let plan = FaultPlan::new().delay_on_nth(2, 0, 50, Duration::from_millis(500));
    let report = run(chain_app(2000, false), &plan, config);
    assert_eq!(report.sink_events, 2000, "a stall is flagged, never killed");
    assert!(
        report.stalls().iter().any(|s| s.op_index == 2),
        "sink slept 500ms against a 60ms deadline: {:?}",
        report.stalls()
    );
}

#[test]
fn fused_panic_is_attributed_to_the_fused_operator() {
    let config = EngineConfig::builder()
        .fusion(true)
        .restart(bounded(3, Duration::from_millis(1)))
        .build();
    let plan = FaultPlan::new().panic_on_nth(1, 0, 30);
    let report = run(chain_app(500, true), &plan, config);
    // The Forward chain fused: nothing crossed a queue.
    let total_pushes: u64 = report.per_operator().iter().map(|o| o.queue_pushes).sum();
    assert_eq!(total_pushes, 0, "single-replica Forward chain must fuse");
    let relay = report.operator(1);
    assert_eq!(relay.quarantined, 1);
    assert_eq!(relay.restarts, 1);
    assert_eq!(relay.faults, 1);
    assert_eq!(report.operator(0).faults, 0, "host executor is not charged");
    assert_eq!(report.operator(0).restarts, 0);
    assert_eq!(report.sink_events, 499);
    let fault = &report.faults()[0];
    assert_eq!(
        fault.op_index, 1,
        "attributed to the fused op, not the host"
    );
    assert_eq!(fault.kind, FaultKind::FusedPanic { host_op: 0 });
    assert!(fault.restarted);
}
