//! Property tests for the partition controller.
//!
//! The engine indexes consumer queue arrays with whatever
//! [`Partitioner::route`] returns, so the first property is a memory-safety
//! boundary: every routed index must fall in `0..consumers` for every
//! strategy and any key. On top of that, KeyBy must be a pure function of
//! the key (sticky routing is what lets bolts keep keyed state), and
//! Shuffle must stay fair within ±1 over *any* observation window — the
//! round-robin cursor never favours a replica.

use brisk_dag::Partitioning;
use brisk_runtime::{Partitioner, QueueKind, ReplicaQueue};
use proptest::prelude::*;

const STRATEGIES: [Partitioning; 4] = [
    Partitioning::Shuffle,
    Partitioning::KeyBy,
    Partitioning::Broadcast,
    Partitioning::Global,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every routed index is a valid consumer replica, for every strategy.
    #[test]
    fn routes_stay_in_bounds(
        consumers in 1usize..12,
        keys in prop::collection::vec(0u64..u64::MAX, 1..100),
    ) {
        for strategy in STRATEGIES {
            let mut p = Partitioner::new(strategy, consumers);
            prop_assert_eq!(p.consumers(), consumers);
            for &k in &keys {
                for target in p.route(k).iter() {
                    prop_assert!(
                        target < consumers,
                        "{:?} routed {} with {} consumers",
                        strategy, target, consumers
                    );
                }
            }
        }
    }

    /// KeyBy is deterministic: the same key always lands on the same
    /// replica, regardless of interleaved traffic and router state.
    #[test]
    fn keyby_is_deterministic(
        consumers in 1usize..12,
        key in 0u64..u64::MAX,
        noise in prop::collection::vec(0u64..u64::MAX, 0..50),
    ) {
        let mut p = Partitioner::new(Partitioning::KeyBy, consumers);
        let first: Vec<usize> = p.route(key).iter().collect();
        for &n in &noise {
            p.route(n);
        }
        let again: Vec<usize> = p.route(key).iter().collect();
        prop_assert!(first == again, "key {} moved replicas", key);
        // A fresh router agrees too: routing is a function of the key
        // alone, not of router history.
        let mut fresh = Partitioner::new(Partitioning::KeyBy, consumers);
        let independent: Vec<usize> = fresh.route(key).iter().collect();
        prop_assert_eq!(first, independent);
    }

    /// Shuffle is fair within ±1 over any window: after `n` routed tuples,
    /// every replica has seen either `floor(n/c)` or `ceil(n/c)`.
    #[test]
    fn shuffle_fair_within_one_over_any_window(
        consumers in 1usize..12,
        window in 1usize..500,
    ) {
        let mut p = Partitioner::new(Partitioning::Shuffle, consumers);
        let mut counts = vec![0usize; consumers];
        for i in 0..window {
            for t in p.route(i as u64).iter() {
                counts[t] += 1;
            }
            let lo = counts.iter().min().expect("nonempty");
            let hi = counts.iter().max().expect("nonempty");
            prop_assert!(
                hi - lo <= 1,
                "window {} with {} consumers drifted: {:?}",
                i + 1, consumers, counts
            );
        }
    }

    /// Sanity composition: KeyBy-routed tuples land in per-replica queues
    /// without ever indexing out of bounds, even on strided key spaces
    /// (the regression behind the FNV mix).
    #[test]
    fn strided_keyby_traffic_reaches_real_queues(
        consumers in 2usize..6,
        stride in 1u64..32,
    ) {
        let queues: Vec<ReplicaQueue<u64>> = (0..consumers)
            .map(|_| ReplicaQueue::new(QueueKind::Mpsc, 1024))
            .collect();
        let mut p = Partitioner::new(Partitioning::KeyBy, consumers);
        for i in 0..256u64 {
            let key = i * stride;
            for t in p.route(key).iter() {
                queues[t].push(key).expect("open");
            }
        }
        let total: usize = queues.iter().map(|q| q.len()).sum();
        prop_assert!(total == 256, "every tuple routed somewhere, once");
        let busy = queues.iter().filter(|q| !q.is_empty()).count();
        prop_assert!(
            stride == 0 || busy >= 2 || consumers < 2,
            "stride {} parked all but one of {} replicas",
            stride, consumers
        );
    }
}
