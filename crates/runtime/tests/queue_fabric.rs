//! Property + stress tests for the queue fabrics.
//!
//! All [`QueueKind`]s must agree on the contract the engine depends on:
//! FIFO order, a hard capacity bound (back-pressure), and close/drain
//! semantics (pushes fail after close, queued items still pop). The
//! properties replay randomized push/pop interleavings against a
//! `VecDeque` model; the stress tests move 100k tuples across real
//! producer/consumer threads under each fabric, and the MPSC ring
//! additionally proves exactly-once + FIFO-per-producer under genuine
//! multi-producer contention.

use brisk_runtime::{MpscQueue, QueueKind, ReplicaQueue};
use proptest::prelude::*;
use std::sync::Arc;

const KINDS: [QueueKind; 3] = [QueueKind::Mutex, QueueKind::Spsc, QueueKind::Mpsc];

/// Apply a randomized op sequence to a queue and a `VecDeque` model,
/// checking they agree step by step. Ops: even = try-style push (via
/// `push_timeout` with a zero budget so a full queue refuses instead of
/// blocking), odd = pop.
fn check_against_model(kind: QueueKind, capacity: usize, ops: &[u8]) -> Result<(), TestCaseError> {
    let q: ReplicaQueue<u64> = ReplicaQueue::new(kind, capacity);
    let mut model = std::collections::VecDeque::new();
    let mut next_value = 0u64;
    for &op in ops {
        if op % 2 == 0 {
            let full = model.len() == capacity;
            let outcome = q.push_timeout(next_value, std::time::Duration::ZERO);
            prop_assert!(
                outcome.is_err() == full,
                "push on {} at len {} (capacity {}) returned {:?}",
                kind,
                model.len(),
                capacity,
                outcome.is_err()
            );
            if !full {
                model.push_back(next_value);
                next_value += 1;
            }
        } else {
            prop_assert_eq!(q.try_pop(), model.pop_front());
        }
        prop_assert_eq!(q.len(), model.len());
        prop_assert_eq!(q.is_empty(), model.is_empty());
        prop_assert!(q.len() <= capacity, "capacity bound violated");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO order + exact capacity bound under random interleavings.
    #[test]
    fn fifo_and_capacity_match_model(
        capacity in 1usize..20,
        ops in prop::collection::vec(0u8..4, 1..200),
    ) {
        for kind in KINDS {
            check_against_model(kind, capacity, &ops)?;
        }
    }

    /// Batch push_n/pop_n preserve FIFO order and count every item once.
    #[test]
    fn batch_ops_match_item_ops(
        capacity in 1usize..16,
        chunks in prop::collection::vec(1usize..12, 1..20),
    ) {
        for kind in KINDS {
            let q: ReplicaQueue<u64> = ReplicaQueue::new(kind, capacity);
            let mut next = 0u64;
            let mut popped = Vec::new();
            for &chunk in &chunks {
                // Keep each batch within the free space so push_n cannot
                // block (single-threaded test).
                let free = capacity - q.len();
                let n = chunk.min(free);
                let batch: Vec<u64> = (next..next + n as u64).collect();
                next += n as u64;
                prop_assert!(q.push_n(batch).is_ok());
                q.pop_n(&mut popped, chunk / 2 + 1);
            }
            while q.pop_n(&mut popped, 8) > 0 {}
            prop_assert_eq!(popped.len() as u64, next);
            // FIFO end to end: popped must be exactly 0..next in order.
            let expect: Vec<u64> = (0..next).collect();
            prop_assert_eq!(popped, expect);
            prop_assert!(q.is_empty());
        }
    }

    /// Close/drain semantics: after close, pushes fail and every item
    /// enqueued before close still pops, in order.
    #[test]
    fn close_preserves_drain(
        capacity in 1usize..16,
        pre_close in 0usize..16,
        pop_before_close in 0usize..8,
    ) {
        for kind in KINDS {
            let q: ReplicaQueue<u64> = ReplicaQueue::new(kind, capacity);
            let pushed = pre_close.min(capacity);
            for i in 0..pushed {
                prop_assert!(q.push(i as u64).is_ok());
            }
            let expect = pushed as u64;
            let mut seen = 0u64;
            for _ in 0..pop_before_close.min(pushed) {
                prop_assert_eq!(q.try_pop(), Some(seen));
                seen += 1;
            }
            q.close();
            prop_assert!(q.is_closed());
            prop_assert!(q.push(999).is_err(), "push after close must fail");
            prop_assert!(q.push_n(vec![1, 2]).is_err());
            while let Some(v) = q.try_pop() {
                prop_assert_eq!(v, seen);
                seen += 1;
            }
            prop_assert!(seen == expect, "drain lost or invented items: {seen} != {expect}");
        }
    }
}

/// 2-thread stress: exactly-once, in-order delivery of 100k tuples through
/// a small ring under both fabrics, with blocking back-pressure on the
/// producer side and batch pops on the consumer side.
#[test]
fn two_thread_stress_exactly_once_100k() {
    const N: u64 = 100_000;
    for kind in KINDS {
        let q: Arc<ReplicaQueue<u64>> = Arc::new(ReplicaQueue::new(kind, 32));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while i < N {
                    // Mix single and batch pushes to cover both paths.
                    if i % 3 == 0 {
                        let hi = (i + 16).min(N);
                        q.push_n((i..hi).collect()).expect("open");
                        i = hi;
                    } else {
                        q.push(i).expect("open");
                        i += 1;
                    }
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got: Vec<u64> = Vec::with_capacity(N as usize);
                let mut idle = 0u32;
                while (got.len() as u64) < N {
                    if q.pop_n(&mut got, 8) == 0 {
                        idle += 1;
                        if idle % 64 == 0 {
                            std::thread::yield_now();
                        }
                    } else {
                        idle = 0;
                    }
                }
                got
            })
        };
        producer.join().expect("producer ok");
        let got = consumer.join().expect("consumer ok");
        assert_eq!(got.len() as u64, N, "{kind}: exactly-once count");
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as u64, "{kind}: order violated at {i}");
        }
        assert!(q.is_empty(), "{kind}: ring should be fully drained");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// MPSC ring vs a per-producer model: 4 real producer threads push
    /// disjoint tagged sequences of random lengths through a small ring;
    /// the consumer must observe every item exactly once and each
    /// producer's items in program order, with the ring fully drained.
    #[test]
    fn mpsc_four_producers_exactly_once_fifo_per_producer(
        capacity in 1usize..24,
        lens in (100usize..400, 100usize..400, 100usize..400, 100usize..400),
    ) {
        let lens = [lens.0, lens.1, lens.2, lens.3];
        let q: Arc<MpscQueue<(usize, u32)>> = Arc::new(MpscQueue::new(capacity));
        let mut handles = Vec::new();
        for (p, &len) in lens.iter().enumerate() {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..len as u32 {
                    q.push((p, i)).expect("open");
                }
            }));
        }
        let expect: usize = lens.iter().sum();
        let mut seen: [Vec<u32>; 4] = Default::default();
        let mut got = Vec::new();
        let mut count = 0usize;
        while count < expect {
            let n = q.pop_n(&mut got, 8);
            if n == 0 {
                std::thread::yield_now();
                continue;
            }
            for (p, i) in got.drain(..) {
                seen[p].push(i);
                count += 1;
            }
        }
        for h in handles {
            h.join().expect("producer ok");
        }
        prop_assert!(q.is_empty(), "ring fully drained");
        for (p, s) in seen.iter().enumerate() {
            let model: Vec<u32> = (0..lens[p] as u32).collect();
            prop_assert!(s == &model, "producer {} lost order or items", p);
        }
    }
}
