//! Engine conformance suite: exactly-once tuple accounting for all four
//! benchmark applications across the full scheduler × fabric × fusion
//! matrix {ThreadPerReplica, CorePool} × {Spsc, Mutex, Mpsc} × {fusion
//! on, fusion off}.
//!
//! Every cell runs a deterministic sized workload to exhaustion and checks
//! the conservation laws the engine must never violate, whatever the queue
//! fabric or execution shape (queued replicas, MPSC funnels, fused chains,
//! pairwise-fused replica pairs, work-stealing pool workers):
//!
//! * the spouts emit exactly the configured input budget (the sized
//!   generators split it across replicas without loss or duplication);
//! * every *checkable* edge conserves tuples — for a consumer all of whose
//!   producers emit on a single stream, input-side `processed` equals the
//!   sum of its producers' `emitted` (once per copy for Broadcast edges);
//!   multi-stream producers (LR's dispatcher) make per-edge delivery
//!   unattributable from per-operator counters, so their consumers are
//!   skipped;
//! * `sink_events` equals the input-side count of the sink operators, and
//!   every sink tuple has a latency sample;
//! * for the linear apps (WC/FD/SD — every operator emits a
//!   content-deterministic number of tuples per input), the full
//!   per-operator `processed`/`emitted` vectors are **identical across
//!   all twelve matrix cells**: the scheduler, the fabric and the
//!   execution shape may change where and when tuples flow, never how
//!   many. (LR's accident detector emits based on cross-replica arrival
//!   interleaving, so LR asserts the conservation laws per cell instead.)

use brisk_apps::app_sized;
use brisk_dag::{CostProfile, OperatorKind, Partitioning, TopologyBuilder, DEFAULT_STREAM};
use brisk_runtime::{
    AppRuntime, Collector, DynBolt, DynSpout, Engine, EngineConfig, QueueKind, RunReport,
    Scheduler, SpoutStatus, TupleView,
};
use std::time::Duration;

const KINDS: [QueueKind; 3] = [QueueKind::Spsc, QueueKind::Mutex, QueueKind::Mpsc];
const SCHEDULERS: [Scheduler; 2] = [
    Scheduler::ThreadPerReplica,
    Scheduler::CorePool { workers: 2 },
];

struct Cell {
    scheduler: Scheduler,
    kind: QueueKind,
    fusion: bool,
    report: RunReport,
}

fn run_matrix(abbrev: &str, replication: Vec<usize>, budget: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for scheduler in SCHEDULERS {
        for kind in KINDS {
            for fusion in [true, false] {
                let app = app_sized(abbrev, budget).expect("known app");
                let config = EngineConfig::builder()
                    .scheduler(scheduler)
                    .queue_kind(kind)
                    .fusion(fusion)
                    .build();
                let engine =
                    Engine::new(app, replication.clone(), config).expect("valid engine config");
                let report = engine.run_until_events(u64::MAX, Duration::from_secs(120));
                cells.push(Cell {
                    scheduler,
                    kind,
                    fusion,
                    report,
                });
            }
        }
    }
    cells
}

/// Assert the conservation laws on one run.
fn check_conservation(abbrev: &str, replication: &[usize], budget: u64, cell: &Cell) {
    let topology = brisk_apps::all_topologies()
        .into_iter()
        .find(|(a, _)| *a == abbrev)
        .map(|(_, t)| t)
        .expect("known app");
    let ctx = format!(
        "{abbrev} {} {} fusion={}",
        cell.scheduler, cell.kind, cell.fusion
    );
    let r = &cell.report;

    // Spouts emit exactly the input budget.
    let spout_emitted: u64 = topology
        .operators()
        .filter(|(_, s)| s.kind == OperatorKind::Spout)
        .map(|(id, _)| r.operator(id.0).emitted)
        .sum();
    assert_eq!(spout_emitted, budget, "{ctx}: spout emission != budget");

    // Edge conservation wherever per-operator counters can attribute it.
    for (v, _) in topology.operators() {
        let incoming: Vec<_> = topology.incoming_edges(v).collect();
        if incoming.is_empty() {
            continue; // spout
        }
        let checkable = incoming.iter().all(|e| {
            let mut streams: Vec<&str> = topology
                .outgoing_edges(e.from)
                .map(|oe| oe.stream.as_str())
                .collect();
            streams.dedup();
            streams.len() == 1
        });
        if !checkable {
            continue;
        }
        let expected: u64 = incoming
            .iter()
            .map(|e| {
                let copies = match e.partitioning {
                    Partitioning::Broadcast => replication[v.0] as u64,
                    _ => 1,
                };
                r.operator(e.from.0).emitted * copies
            })
            .sum();
        assert_eq!(
            r.operator(v.0).processed,
            expected,
            "{ctx}: operator {} lost or duplicated tuples",
            topology.operator(v).name
        );
    }

    // Sinks: input-side count == sink_events == latency samples.
    let sink_processed: u64 = topology
        .operators()
        .filter(|(_, s)| s.kind == OperatorKind::Sink)
        .map(|(id, _)| r.operator(id.0).processed)
        .sum();
    assert_eq!(r.sink_events, sink_processed, "{ctx}: sink accounting");
    assert_eq!(
        r.latency_ns.count(),
        r.sink_events,
        "{ctx}: every sink tuple records latency"
    );
}

/// Assert all twelve cells produced identical per-operator counter vectors
/// (content-deterministic apps only).
fn check_cross_config_determinism(abbrev: &str, cells: &[Cell]) {
    let counts = |r: &RunReport| -> (Vec<u64>, Vec<u64>) {
        let per_op = r.per_operator();
        (
            per_op.iter().map(|o| o.processed).collect(),
            per_op.iter().map(|o| o.emitted).collect(),
        )
    };
    let reference = &cells[0];
    let (ref_processed, ref_emitted) = counts(&reference.report);
    for cell in &cells[1..] {
        let (processed, emitted) = counts(&cell.report);
        assert_eq!(
            processed,
            ref_processed,
            "{abbrev}: processed differs between {} {} fusion={} and {} {} fusion={}",
            cell.scheduler,
            cell.kind,
            cell.fusion,
            reference.scheduler,
            reference.kind,
            reference.fusion
        );
        assert_eq!(
            emitted,
            ref_emitted,
            "{abbrev}: emitted differs between {} {} fusion={} and {} {} fusion={}",
            cell.scheduler,
            cell.kind,
            cell.fusion,
            reference.scheduler,
            reference.kind,
            reference.fusion
        );
        assert_eq!(
            cell.report.sink_events, reference.report.sink_events,
            "{abbrev}: sink_events differ"
        );
    }
}

fn conformance(abbrev: &str, replication: Vec<usize>, budget: u64, deterministic: bool) {
    let cells = run_matrix(abbrev, replication.clone(), budget);
    for cell in &cells {
        check_conservation(abbrev, &replication, budget, cell);
    }
    if deterministic {
        check_cross_config_determinism(abbrev, &cells);
    }
}

#[test]
fn word_count_conforms_across_the_matrix() {
    // Multi-replica splitter/counter: KeyBy fan-out plus a 1:1 fused head.
    conformance("WC", vec![1, 1, 3, 2, 1], 1200, true);
}

#[test]
fn fraud_detection_conforms_across_the_matrix() {
    // 2:2 Forward head — pairwise fusion in the fusion=on cells — feeding
    // a 3-replica KeyBy predictor.
    conformance("FD", vec![2, 2, 3, 1], 2000, true);
}

#[test]
fn spike_detection_conforms_across_the_matrix() {
    // The aligned-KeyBy pair: moving_average(2) → spike_detect(2) fuses
    // pairwise when fusion is on; parser funnels 2 spouts' tuples.
    conformance("SD", vec![2, 1, 2, 2, 1], 2000, true);
}

struct SeqSpout {
    next: u64,
    limit: u64,
}
impl DynSpout for SeqSpout {
    fn next(&mut self, c: &mut Collector) -> SpoutStatus {
        if self.next >= self.limit {
            return SpoutStatus::Exhausted;
        }
        let now = c.now_ns();
        c.send_default(self.next, now, self.next);
        self.next += 1;
        SpoutStatus::Emitted(1)
    }
}

struct NullSink;
impl DynBolt for NullSink {
    fn execute(&mut self, _t: &TupleView<'_>, _c: &mut Collector) {}
}

/// Broadcast fan-out across the full matrix: each sealed slab is shared
/// by all three sink replicas, and the per-copy accounting must be the
/// same whether that slab travelled an SPSC ring, the mutex queue, the
/// MPSC funnel or a fused edge — emitted once per logical tuple,
/// processed once per delivered copy, with slab seals bounded by the
/// *logical* tuple count (a payload-copying fabric would need one slab
/// per copy, 3× more).
#[test]
fn broadcast_shared_batches_conform_across_the_matrix() {
    let budget = 600u64;
    let mut reports = Vec::new();
    for scheduler in SCHEDULERS {
        for kind in KINDS {
            for fusion in [true, false] {
                let mut b = TopologyBuilder::new("bc");
                let s = b.add_spout("src", CostProfile::trivial());
                let k = b.add_sink("out", CostProfile::trivial());
                b.connect(s, DEFAULT_STREAM, k, Partitioning::Broadcast);
                let t = b.build().expect("valid topology");
                let (s, k) = (t.find("src").expect("src"), t.find("out").expect("out"));
                let app = AppRuntime::new(t)
                    .spout(s, move |_| SeqSpout {
                        next: 0,
                        limit: budget,
                    })
                    .sink(k, |_| NullSink);
                let config = EngineConfig::builder()
                    .scheduler(scheduler)
                    .queue_kind(kind)
                    .fusion(fusion)
                    .build();
                let engine = Engine::new(app, vec![1, 3], config).expect("valid engine config");
                let report = engine.run_until_events(u64::MAX, Duration::from_secs(120));
                let ctx = format!("bc {scheduler} {kind} fusion={fusion}");
                assert_eq!(report.operator(0).emitted, budget, "{ctx}");
                assert_eq!(report.operator(1).processed, budget * 3, "{ctx}");
                assert_eq!(report.sink_events, budget * 3, "{ctx}");
                assert!(
                    report.slab_allocs + report.slab_recycled <= budget,
                    "{ctx}: slab seals must not scale with broadcast copies"
                );
                reports.push((ctx, report));
            }
        }
    }
    let reference: Vec<u64> = reports[0]
        .1
        .per_operator()
        .iter()
        .map(|o| o.processed)
        .collect();
    for (ctx, r) in &reports[1..] {
        let processed: Vec<u64> = r.per_operator().iter().map(|o| o.processed).collect();
        assert_eq!(&processed, &reference, "{ctx} diverged");
    }
}

/// The join-shaped workload tier: two spouts KeyBy into a stateful
/// window-join bolt. Beyond the generic conservation laws, every cell's
/// match *multiset* must be bit-identical to the single-threaded oracle:
/// the sink volume equals the oracle pair count, and the join replicas'
/// harvested digests (count ‖ xor ‖ sum of canonical pair hashes) merge
/// to exactly the oracle digest — exactly-once match accounting under
/// every scheduler, fabric and fusion shape.
#[test]
fn stream_join_conforms_and_matches_the_oracle_across_the_matrix() {
    use brisk_apps::stream_join::{self, JoinDigest};
    use brisk_runtime::RunLimit;

    let budget = 1200u64;
    // Sink replicated like the join: the KeyBy edge below the (key-
    // confined, key-preserving) join is aligned, so the fusion=on cells
    // exercise pairwise fusion of a stateful two-upstream operator.
    let replication = vec![2usize, 3, 2, 3];
    let (left_total, right_total) = stream_join::side_totals(budget);
    let expected = stream_join::oracle(left_total, right_total);
    assert!(expected.count > 0, "workload must produce matches");
    let join_op = brisk_apps::stream_join::topology()
        .find("join")
        .expect("join")
        .0;

    let mut cells = Vec::new();
    for scheduler in SCHEDULERS {
        for kind in KINDS {
            for fusion in [true, false] {
                let ctx = format!("SJ {scheduler} {kind} fusion={fusion}");
                let app = app_sized("SJ", budget).expect("known app");
                let config = EngineConfig::builder()
                    .scheduler(scheduler)
                    .queue_kind(kind)
                    .fusion(fusion)
                    .build();
                let mut engine =
                    Engine::new(app, replication.clone(), config).expect("valid engine config");
                engine.capture_state_on_stop(true);
                let (report, state) = engine
                    .start(RunLimit::Events {
                        events: u64::MAX,
                        timeout: Duration::from_secs(120),
                    })
                    .join_with_state();

                // Every matched pair reached the sink exactly once.
                assert_eq!(
                    report.sink_events, expected.count,
                    "{ctx}: sink volume != oracle match count"
                );
                // The replicas' merged digests reproduce the oracle's
                // match multiset bit-exactly.
                let mut digest = JoinDigest::default();
                for (op, _replica, entries) in &state {
                    if *op == join_op {
                        digest.merge(&JoinDigest::from_entries(entries));
                    }
                }
                assert_eq!(digest, expected, "{ctx}: match multiset diverged");

                cells.push(Cell {
                    scheduler,
                    kind,
                    fusion,
                    report,
                });
            }
        }
    }
    for cell in &cells {
        check_conservation("SJ", &replication, budget, cell);
    }
    check_cross_config_determinism("SJ", &cells);
}

#[test]
fn shared_index_conforms_across_the_matrix() {
    // One arranged index broadcast to two queries: a point lookup fed by
    // a second spout, and a windowed aggregate. Result *counts* are
    // interleaving-independent (one answer per probe, one delta per
    // update per aggregate replica), so the full matrix must agree.
    conformance("SI", vec![2, 2, 1, 2, 2, 1], 1200, true);
}

/// The shared-arrangement zero-copy pin: with two queries subscribed to
/// the arranged stream, the maintainer seals each batch ONCE — the
/// second Broadcast edge shares the leader edge's builder and receives a
/// refcount bump, not a copy. At `jumbo_size(1)` every push seals, so
/// slab checkouts count builder pushes exactly: `3·updates + 2·queries`
/// (update spout + one maintainer's worth + query spout + point
/// results + aggregate deltas). A per-edge-copying collector would
/// need `4·updates + 2·queries`. Engine teardown separately asserts
/// `outstanding == 0`, so a leaked arrangement slab fails the run.
#[test]
fn shared_arrangement_slab_seals_do_not_double_with_two_queries() {
    let budget = 400u64;
    let (u, q) = brisk_apps::shared_index::side_totals(budget);
    for kind in KINDS {
        let app = app_sized("SI", budget).expect("known app");
        let config = EngineConfig::builder()
            .scheduler(Scheduler::ThreadPerReplica)
            .queue_kind(kind)
            .fusion(false)
            .jumbo_size(1)
            .build();
        let engine = Engine::new(app, vec![1; 6], config).expect("valid engine config");
        let report = engine.run_until_events(u64::MAX, Duration::from_secs(120));
        let ctx = format!("SI zero-copy {kind}");
        assert_eq!(report.sink_events, u + q, "{ctx}: sink accounting");
        let seals = report.slab_allocs + report.slab_recycled;
        assert_eq!(
            seals,
            3 * u + 2 * q,
            "{ctx}: attaching the second query must not add a maintainer's worth of seals"
        );
    }
}

#[test]
fn linear_road_conforms_across_the_matrix() {
    // 12 operators, multi-stream dispatcher, long fusable chains. The
    // accident path's emissions depend on cross-replica interleaving, so
    // LR pins the conservation laws per cell rather than cross-config
    // equality.
    conformance("LR", vec![2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1], 1500, false);
}
