//! Migration conformance suite: exactly-once tuple accounting across a
//! live, mid-run plan migration, over the full scheduler × fabric ×
//! fusion matrix {ThreadPerReplica, CorePool} × {Spsc, Mutex, Mpsc} ×
//! {fusion on, fusion off}.
//!
//! Every cell splits a deterministic sized workload across two engine
//! epochs joined by a migration pause: epoch one runs to a mid-budget
//! stop in harvest mode (`capture_state_on_stop` — the elastic
//! controller's pause), its harvested state is redistributed onto a
//! successor engine (`preload_state`), and epoch two runs the rest to
//! exhaustion. The laws that must survive the hand-off, whatever the
//! queue fabric or execution shape:
//!
//! * the two epochs' spouts emit exactly the configured input budget
//!   between them — the harvested source positions resume, never rewind
//!   or skip, and the stop really lands mid-budget (each epoch emits a
//!   strictly positive share);
//! * summed sink deliveries equal the app's content-independent
//!   expectation (WC: words per sentence × budget; FD: one prediction
//!   per transaction);
//! * for the deterministic linear apps the summed per-operator
//!   `processed`/`emitted` vectors are **identical across all twelve
//!   matrix cells** — the migration point, scheduler, fabric and fusion
//!   shape may move tuples between epochs, never create or destroy them;
//! * a migration that *changes replica counts* conserves the same totals
//!   (rescaling redistributes budget shares and keyed state, uncovered
//!   new replicas get an empty install and claim no fresh budget);
//! * stateful operators hand their accumulations over bit-exactly: WC's
//!   migrated word counts, re-harvested at the end of epoch two, equal a
//!   never-migrated reference run's counts entry for entry;
//! * a migration racing spout exhaustion — the pause requested *after*
//!   the sized spouts already retired — still conserves the budget: the
//!   retired source positions are parked and folded into the harvest, so
//!   the successor epoch re-emits nothing.

use brisk_apps::{app_sized, word_count};
use brisk_dag::OperatorKind;
use brisk_runtime::{
    Engine, EngineConfig, HarvestedState, QueueKind, RunLimit, RunReport, Scheduler, StateEntry,
};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

const KINDS: [QueueKind; 3] = [QueueKind::Spsc, QueueKind::Mutex, QueueKind::Mpsc];
const SCHEDULERS: [Scheduler; 2] = [
    Scheduler::ThreadPerReplica,
    Scheduler::CorePool { workers: 2 },
];
const LONG: Duration = Duration::from_secs(120);

/// Shallow queues keep the sized spouts backpressured, so the epoch-one
/// stop lands while the source is still mid-budget (the default
/// 4096-tuple-deep queues would swallow these budgets whole and the
/// "migration" would degenerate into a restart of a drained pipeline).
fn cell_config(scheduler: Scheduler, kind: QueueKind, fusion: bool) -> EngineConfig {
    EngineConfig::builder()
        .scheduler(scheduler)
        .queue_kind(kind)
        .fusion(fusion)
        .queue_capacity(2)
        .jumbo_size(8)
        .build()
}

/// Release builds drain these shallow-queue pipelines fast enough that a
/// sink-event stop can land after the sized budget is already spent, which
/// would degenerate the "mid-budget pause" cells into plain restarts.
/// Scale the budgets up so the pause lands mid-budget in both profiles.
fn scaled(budget: u64) -> u64 {
    if cfg!(debug_assertions) {
        budget
    } else {
        budget * 25
    }
}

/// Spread harvested entries over a successor replication by `key %
/// replicas` — the identity for spout entries (keyed by replica index)
/// when the count is unchanged, and a stable shard when it grows.
fn redistribute(
    state: HarvestedState,
    replication: &[usize],
) -> Vec<(usize, usize, Vec<StateEntry>)> {
    let mut buckets: BTreeMap<(usize, usize), Vec<StateEntry>> = BTreeMap::new();
    for (op, _old_replica, entries) in state {
        for entry in entries {
            let to = (entry.0 as usize) % replication[op];
            buckets.entry((op, to)).or_default().push(entry);
        }
    }
    buckets
        .into_iter()
        .map(|((op, replica), entries)| (op, replica, entries))
        .collect()
}

/// Run `abbrev` split across two epochs: epoch one to `epoch1_sink_target`
/// sink events under harvest mode, state redistributed onto
/// `replication2`, epoch two to exhaustion. Epoch two captures state too
/// when `capture_final` is set (for the bit-exact hand-off check).
fn migrate_once(
    abbrev: &str,
    replication1: &[usize],
    replication2: &[usize],
    budget: u64,
    epoch1_sink_target: u64,
    config: &EngineConfig,
    capture_final: bool,
) -> (RunReport, RunReport, HarvestedState) {
    let app1 = app_sized(abbrev, budget).expect("known app");
    let mut first = Engine::new(app1, replication1.to_vec(), config.clone()).expect("valid engine");
    first.capture_state_on_stop(true);
    let (r1, state) = first
        .start(RunLimit::Events {
            events: epoch1_sink_target,
            timeout: LONG,
        })
        .join_with_state();

    let app2 = app_sized(abbrev, budget).expect("known app");
    let mut second =
        Engine::new(app2, replication2.to_vec(), config.clone()).expect("valid engine");
    second.capture_state_on_stop(capture_final);
    for (op, replica, entries) in redistribute(state, replication2) {
        second.preload_state(op, replica, entries).expect("preload");
    }
    let (r2, final_state) = second
        .start(RunLimit::Events {
            events: u64::MAX,
            timeout: LONG,
        })
        .join_with_state();
    (r1, r2, final_state)
}

/// Summed spout emission across both epochs, from per-operator counters.
fn spout_emitted(abbrev: &str, r1: &RunReport, r2: &RunReport) -> (u64, u64) {
    let topology = brisk_apps::all_topologies()
        .into_iter()
        .find(|(a, _)| *a == abbrev)
        .map(|(_, t)| t)
        .expect("known app");
    let emitted = |r: &RunReport| -> u64 {
        topology
            .operators()
            .filter(|(_, s)| s.kind == OperatorKind::Spout)
            .map(|(id, _)| r.operator(id.0).emitted)
            .sum()
    };
    (emitted(r1), emitted(r2))
}

/// The twelve-cell matrix for one app: conservation per cell, plus
/// cross-cell equality of the summed per-operator counters.
fn matrix(abbrev: &str, replication: &[usize], budget: u64, expected_sink: u64) {
    let epoch1_target = expected_sink / 3;
    let mut summed: Vec<(String, Vec<u64>, Vec<u64>, u64)> = Vec::new();
    for scheduler in SCHEDULERS {
        for kind in KINDS {
            for fusion in [true, false] {
                let ctx = format!("{abbrev} {scheduler} {kind} fusion={fusion}");
                let config = cell_config(scheduler, kind, fusion);
                let (r1, r2, _) = migrate_once(
                    abbrev,
                    replication,
                    replication,
                    budget,
                    epoch1_target,
                    &config,
                    false,
                );
                let (in1, in2) = spout_emitted(abbrev, &r1, &r2);
                assert!(
                    in1 > 0 && in1 < budget,
                    "{ctx}: the pause must land mid-budget (epoch one emitted {in1}/{budget})"
                );
                assert_eq!(
                    in1 + in2,
                    budget,
                    "{ctx}: migration lost or duplicated source tuples"
                );
                assert_eq!(
                    r1.sink_events + r2.sink_events,
                    expected_sink,
                    "{ctx}: migration lost or duplicated sink tuples"
                );
                let n = r1.per_operator().len();
                let processed: Vec<u64> = (0..n)
                    .map(|op| r1.operator(op).processed + r2.operator(op).processed)
                    .collect();
                let emitted: Vec<u64> = (0..n)
                    .map(|op| r1.operator(op).emitted + r2.operator(op).emitted)
                    .collect();
                summed.push((ctx, processed, emitted, r1.sink_events + r2.sink_events));
            }
        }
    }
    let (ref_ctx, ref_processed, ref_emitted, ref_sink) = &summed[0];
    for (ctx, processed, emitted, sink) in &summed[1..] {
        assert_eq!(
            processed, ref_processed,
            "{ctx}: summed processed diverged from {ref_ctx}"
        );
        assert_eq!(
            emitted, ref_emitted,
            "{ctx}: summed emitted diverged from {ref_ctx}"
        );
        assert_eq!(sink, ref_sink, "{ctx}: summed sink_events diverged");
    }
}

#[test]
fn word_count_migration_conforms_across_the_matrix() {
    // KeyBy fan-out, a 1:1 fused head, and a stateful counter whose
    // accumulations ride the hand-off.
    let budget = scaled(1200);
    matrix(
        "WC",
        &[1, 1, 3, 2, 1],
        budget,
        budget * word_count::WORDS_PER_SENTENCE as u64,
    );
}

#[test]
fn fraud_detection_migration_conforms_across_the_matrix() {
    // 2:2 Forward head (pairwise fusion in the fusion=on cells), an MPSC
    // funnel in the Mpsc cells, and a KeyBy predictor.
    let budget = scaled(2000);
    matrix("FD", &[2, 2, 3, 1], budget, budget);
}

#[test]
fn rescaling_migration_conserves_the_budget() {
    // The successor plan grows the spout, parser and counter — harvested
    // budget shares shard onto the survivors, the uncovered new replicas
    // get an empty install and must claim no fresh budget of their own.
    let budget = scaled(1200);
    let expected_sink = budget * word_count::WORDS_PER_SENTENCE as u64;
    for scheduler in SCHEDULERS {
        let ctx = format!("WC rescale {scheduler}");
        let config = cell_config(scheduler, QueueKind::Spsc, false);
        let (r1, r2, _) = migrate_once(
            "WC",
            &[1, 1, 3, 2, 1],
            &[2, 2, 3, 3, 1],
            budget,
            expected_sink / 3,
            &config,
            false,
        );
        let (in1, in2) = spout_emitted("WC", &r1, &r2);
        assert!(in1 > 0 && in1 < budget, "{ctx}: pause must land mid-budget");
        assert_eq!(in1 + in2, budget, "{ctx}: rescaling duplicated the source");
        assert_eq!(
            r1.sink_events + r2.sink_events,
            expected_sink,
            "{ctx}: rescaling lost or duplicated sink tuples"
        );
    }
}

/// Decode WC counter entries (count LE ‖ word bytes) into a merged map.
fn word_counts(state: &HarvestedState, counter_op: usize) -> HashMap<String, u64> {
    let mut counts = HashMap::new();
    for (op, _replica, entries) in state {
        if *op != counter_op {
            continue;
        }
        for (_key, bytes) in entries {
            let count = u64::from_le_bytes(bytes[..8].try_into().expect("count prefix"));
            let word = std::str::from_utf8(&bytes[8..]).expect("utf8 word");
            *counts.entry(word.to_string()).or_insert(0) += count;
        }
    }
    counts
}

#[test]
fn word_count_state_hands_off_bit_exact() {
    // The migrated run's final counter state — epoch-one counts carried
    // through `preload_state`, epoch two counted on top — must equal a
    // never-migrated reference run's, word for word and count for count.
    let budget = 1200;
    let replication = [1usize, 1, 3, 2, 1];
    let counter_op = word_count::topology().find("counter").expect("counter").0;
    let config = cell_config(Scheduler::ThreadPerReplica, QueueKind::Spsc, false);

    let mut reference = Engine::new(
        app_sized("WC", budget).expect("WC"),
        replication.to_vec(),
        config.clone(),
    )
    .expect("valid engine");
    reference.capture_state_on_stop(true);
    let (ref_report, ref_state) = reference
        .start(RunLimit::Events {
            events: u64::MAX,
            timeout: LONG,
        })
        .join_with_state();
    let ref_counts = word_counts(&ref_state, counter_op);

    let (r1, r2, final_state) = migrate_once(
        "WC",
        &replication,
        &replication,
        budget,
        budget * word_count::WORDS_PER_SENTENCE as u64 / 2,
        &config,
        true,
    );
    let migrated_counts = word_counts(&final_state, counter_op);

    let total: u64 = ref_counts.values().sum();
    assert_eq!(
        total,
        budget * word_count::WORDS_PER_SENTENCE as u64,
        "reference counts cover every word"
    );
    assert_eq!(
        ref_report.sink_events,
        r1.sink_events + r2.sink_events,
        "migrated run delivers the reference sink volume"
    );
    assert_eq!(
        migrated_counts, ref_counts,
        "migrated counter state diverged from the never-migrated reference"
    );
}

/// Redistribute harvested stream-join state the way the live engine
/// routes it: window-index entries follow the KeyBy router (`mix_key %
/// replicas` — the replica that will receive the key's future tuples),
/// watermark bookkeeping fans out to every replica (each successor needs
/// the eviction lower bound; the merge takes per-origin maxima), the
/// digest parks on replica 0 (it merges additively on the next harvest),
/// and spout positions stay keyed by replica index.
fn sj_redistribute(
    state: HarvestedState,
    replication: &[usize],
    join_op: usize,
) -> Vec<(usize, usize, Vec<StateEntry>)> {
    let mut buckets: BTreeMap<(usize, usize), Vec<StateEntry>> = BTreeMap::new();
    for (op, _old_replica, entries) in state {
        for entry in entries {
            if op == join_op {
                match entry.1.first() {
                    Some(0 | 1) => {
                        let to = brisk_runtime::route_keyed(entry.0, replication[op], None);
                        buckets.entry((op, to)).or_default().push(entry);
                    }
                    Some(2) => {
                        for to in 0..replication[op] {
                            buckets.entry((op, to)).or_default().push(entry.clone());
                        }
                    }
                    _ => buckets.entry((op, 0)).or_default().push(entry),
                }
            } else {
                let to = (entry.0 as usize) % replication[op];
                buckets.entry((op, to)).or_default().push(entry);
            }
        }
    }
    buckets
        .into_iter()
        .map(|((op, replica), entries)| (op, replica, entries))
        .collect()
}

/// Merge every join replica's harvested digest into the run total.
fn sj_digest(state: &HarvestedState, join_op: usize) -> brisk_apps::stream_join::JoinDigest {
    let mut total = brisk_apps::stream_join::JoinDigest::default();
    for (op, _replica, entries) in state {
        if *op == join_op {
            total.merge(&brisk_apps::stream_join::JoinDigest::from_entries(entries));
        }
    }
    total
}

#[test]
fn stream_join_index_survives_migration_bit_exact() {
    // The migration-conformance cell for the join tier: pause a running
    // stream_join mid-budget, hand the sliding-window index (entries,
    // watermarks, digest) and both spouts' stream positions to a
    // successor engine, run to exhaustion, and demand the final match
    // digest be bit-identical to (a) a never-migrated reference run and
    // (b) the single-threaded oracle.
    use brisk_apps::stream_join;

    let budget = scaled(1200);
    let replication = [2usize, 3, 2, 3];
    let (left_total, right_total) = stream_join::side_totals(budget);
    let expected = stream_join::oracle(left_total, right_total);
    let join_op = stream_join::topology().find("join").expect("join").0;
    let config = cell_config(Scheduler::ThreadPerReplica, QueueKind::Spsc, false);

    let mut reference = Engine::new(
        app_sized("SJ", budget).expect("SJ"),
        replication.to_vec(),
        config.clone(),
    )
    .expect("valid engine");
    reference.capture_state_on_stop(true);
    let (ref_report, ref_state) = reference
        .start(RunLimit::Events {
            events: u64::MAX,
            timeout: LONG,
        })
        .join_with_state();
    assert_eq!(
        sj_digest(&ref_state, join_op),
        expected,
        "reference run must reproduce the oracle multiset"
    );
    assert_eq!(ref_report.sink_events, expected.count);

    // Epoch one: stop mid-budget under harvest mode.
    let mut first = Engine::new(
        app_sized("SJ", budget).expect("SJ"),
        replication.to_vec(),
        config.clone(),
    )
    .expect("valid engine");
    first.capture_state_on_stop(true);
    let (r1, state) = first
        .start(RunLimit::Events {
            events: expected.count / 2,
            timeout: LONG,
        })
        .join_with_state();

    // Epoch two: the redistributed index finishes the stream.
    let mut second = Engine::new(
        app_sized("SJ", budget).expect("SJ"),
        replication.to_vec(),
        config.clone(),
    )
    .expect("valid engine");
    second.capture_state_on_stop(true);
    for (op, replica, entries) in sj_redistribute(state, &replication, join_op) {
        second.preload_state(op, replica, entries).expect("preload");
    }
    let (r2, final_state) = second
        .start(RunLimit::Events {
            events: u64::MAX,
            timeout: LONG,
        })
        .join_with_state();

    let (in1, in2) = spout_emitted("SJ", &r1, &r2);
    assert!(
        in1 > 0 && in1 < budget,
        "the pause must land mid-budget (epoch one emitted {in1}/{budget})"
    );
    assert_eq!(
        in1 + in2,
        budget,
        "migration lost or duplicated source tuples"
    );
    assert_eq!(
        r1.sink_events + r2.sink_events,
        expected.count,
        "migration lost or duplicated matched pairs"
    );
    assert_eq!(
        sj_digest(&final_state, join_op),
        expected,
        "migrated window index diverged from the never-migrated reference"
    );
}

#[test]
fn migration_racing_spout_exhaustion_conserves_the_budget() {
    // Deep (default) queues: the sized spouts flood their whole budget
    // in-flight and retire long before any pause. A migration requested
    // after that point must still hand the spent positions over — the
    // successor's spouts install them (or an empty share) and re-emit
    // nothing. Regression test for the retired-state fold: without it the
    // successor re-derives fresh factory budgets and doubles the input.
    let budget = 400;
    let expected_sink = budget * word_count::WORDS_PER_SENTENCE as u64;
    for scheduler in SCHEDULERS {
        let ctx = format!("WC exhausted-race {scheduler}");
        let config = EngineConfig::builder()
            .scheduler(scheduler)
            .queue_kind(QueueKind::Spsc)
            .fusion(false)
            .build();
        let replication = [1usize, 1, 2, 2, 1];
        let app = app_sized("WC", budget).expect("WC");
        let first = Engine::new(app, replication.to_vec(), config.clone()).expect("valid engine");
        let handle = first.start(RunLimit::Duration(LONG));
        // Wait until the spout has provably spent its whole budget.
        let deadline = std::time::Instant::now() + LONG;
        loop {
            let emitted: u64 = handle
                .rates()
                .iter()
                .filter(|r| r.op == 0)
                .map(|r| r.tuples)
                .sum();
            if emitted >= budget {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{ctx}: spout never exhausted"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.request_migration();
        let (r1, state) = handle.join_with_state();
        assert!(
            state.iter().any(|(op, _, _)| *op == 0),
            "{ctx}: the exhausted spout's position must still be harvested"
        );

        let app2 = app_sized("WC", budget).expect("WC");
        let second = Engine::new(app2, replication.to_vec(), config).expect("valid engine");
        for (op, replica, entries) in redistribute(state, &replication) {
            second.preload_state(op, replica, entries).expect("preload");
        }
        let r2 = second.run_until_events(u64::MAX, LONG);
        let (in1, in2) = spout_emitted("WC", &r1, &r2);
        assert_eq!(in1, budget, "{ctx}: epoch one spent the whole budget");
        assert_eq!(in2, 0, "{ctx}: successor re-emitted a spent budget");
        assert_eq!(
            r1.sink_events + r2.sink_events,
            expected_sink,
            "{ctx}: lost or duplicated sink tuples"
        );
    }
}
