//! # brisk-runtime
//!
//! The BriskStream execution engine (Section 5 + Appendix A): a real,
//! threaded, shared-memory streaming runtime.
//!
//! Design points taken from the paper:
//!
//! * **Operator-per-thread**: each replica of each operator is one task run
//!   by one OS thread inside a single process, so tuples are passed **by
//!   reference** — producers store payloads in shared slabs and enqueue
//!   only container handles.
//! * **Jumbo tuples over a zero-copy batch fabric** ([`batch`]): output
//!   tuples headed for the same consumer accumulate in a typed,
//!   arena-backed [`Batch`] (contiguous payloads + parallel event-time /
//!   key lanes over one refcounted slab) and ship as one [`JumboTuple`]
//!   container handle — a single queue insertion moves the whole batch
//!   (Section 5.2), broadcast is a refcount bump, and slab storage
//!   recycles through per-producer [`SlabPool`] arenas so the steady
//!   state allocates nothing.
//! * **Bounded queues with back-pressure**: when a consumer falls behind,
//!   its input queues fill and producers block, eventually throttling the
//!   spout so the system settles at its maximum sustainable rate
//!   (Section 6.1, footnote 2). Where the engine wires exactly one
//!   producer replica to a queue, the default fabric is a **lock-free
//!   cache-conscious SPSC ring** ([`SpscQueue`]); genuinely multi-producer
//!   wiring (a multi-replica `Global` funnel) automatically upgrades to the
//!   **CAS-claimed MPSC ring** ([`MpscQueue`]), and the mutex+condvar
//!   [`BoundedQueue`] remains available via [`QueueKind`] for A/B
//!   comparison. Idle executors and blocked producers wait on an adaptive
//!   **spin → yield → park** ladder ([`Backoff`]) whose rung layout
//!   ([`BackoffProfile`]) turns park-dominant when replica threads
//!   outnumber hardware cores.
//! * **Partition controller**: every task routes each emitted tuple to one
//!   output buffer per consumer replica according to the edge's partitioning
//!   strategy (shuffle / key-by / broadcast / global / forward).
//! * **Operator-chain fusion** ([`fusion`], [`brisk_dag::FusionPlan`]):
//!   collocated producer→consumer pairs wired 1:1 at the replica level —
//!   single-replica chains, equal-count `Forward` edges, aligned KeyBy —
//!   collapse into host executors that run the downstream operator
//!   inline, one instance per replica pair, in the producer's thread: no
//!   jumbo batching, queue crossing, poll loop, or fetch-cost injection
//!   on fused edges ([`EngineConfig::fusion`], default on).
//!
//! * **Execution schedulers** ([`scheduler`]): replicas run either one per
//!   OS thread ([`Scheduler::ThreadPerReplica`], the paper's executor
//!   model) or as *tasks* multiplexed onto a fixed pool of workers through
//!   work-stealing run queues with wake-on-push
//!   ([`Scheduler::CorePool`]) — decoupling replica counts from thread
//!   counts, so heavily replicated plans no longer oversubscribe the host.
//!
//! * **Supervised execution** ([`supervise`]): every user-operator call is
//!   panic-contained; a panicking replica becomes a structured
//!   [`ReplicaFault`], the poison tuple is quarantined (at-most-once for
//!   it, exactly-once for everything else), and a [`RestartPolicy`] decides
//!   between bounded exponential-backoff restarts and clean retirement.
//!   An optional stall watchdog ([`EngineConfig::stall_deadline`]) flags
//!   no-progress replicas without ever killing one, and the deterministic
//!   [`FaultPlan`] harness ([`faultinject`]) drives fault-conformance
//!   testing across schedulers, fabrics and fusion settings.
//!
//! * **Elastic execution** ([`elastic`]): the profile → optimize → execute
//!   life cycle runs continuously. An [`ElasticEngine`] samples live
//!   per-replica rates ([`EngineHandle::rates`]), detects drift against
//!   the cost model's prediction for the running plan, re-calibrates the
//!   model from measurement, re-runs RLAS warm-started from the incumbent
//!   plan, and migrates the running engine onto a sufficiently better plan
//!   through a tuple-safe pause → drain → hand-off-state → rewire → resume
//!   protocol ([`EngineHandle::request_migration`],
//!   [`Engine::preload_state`]). Skew-aware KeyBy re-weighting
//!   ([`Engine::set_keyby_weights`]) rides the same migration path.
//!
//! The engine executes a [`brisk_dag::LogicalTopology`] under a
//! [`brisk_dag::ExecutionPlan`]; socket placement is honoured as bookkeeping
//! (and, optionally, as an injected NUMA fetch delay via
//! [`EngineConfig::numa_penalty`]) so that plan shapes remain meaningful on
//! development hosts that lack real multi-socket hardware.
#![warn(missing_docs)]

pub mod batch;
pub mod drift;
pub mod elastic;
pub mod engine;
pub mod faultinject;
pub mod fusion;
pub mod mpsc;
pub mod operator;
pub mod partition;
pub mod queue;
pub mod scheduler;
pub mod spsc;
pub mod supervise;
pub mod tuple;

pub use batch::{Batch, BatchBuilder, BatchCursor, SlabPool, SlabStats, TupleView};
pub use drift::DriftPlan;
pub use elastic::{ElasticEngine, ElasticOptions, ElasticReport};
pub use engine::{
    plan_replica_sockets, Engine, EngineConfig, EngineConfigBuilder, EngineHandle, HarvestedState,
    NumaPenalty, OpStats, ReplicaRate, RunLimit, RunReport,
};
pub use faultinject::{silence_injected_panics, FaultPlan, INJECTED_PANIC_PREFIX};
pub use mpsc::MpscQueue;
pub use operator::{
    AppRuntime, BoltContext, Collector, DynBolt, DynSpout, OperatorRuntime, SpoutStatus, StateEntry,
};
pub use partition::{keyby_slot_table, route_keyed, Partitioner, KEYBY_SLOTS_PER_CONSUMER};
pub use queue::{BoundedQueue, QueueKind, ReplicaQueue};
pub use scheduler::Scheduler;
pub use spsc::{Backoff, BackoffProfile, PushError, SpscQueue};
pub use supervise::{
    FaultKind, FaultSummary, ReplicaFault, RestartPolicy, StallEvent, MAX_RESTART_BACKOFF,
};
pub use tuple::{JumboTuple, Tuple};
