//! The zero-copy batch fabric: typed, arena-backed tuple containers.
//!
//! BriskStream's pass-by-reference design (Section 5.2, Figure 17) keeps
//! data movement off the hot path. The original port approximated it with
//! an `Arc<dyn Any>` *per tuple*, so allocation, refcount traffic and drop
//! still rode every queue crossing. This module replaces the per-tuple
//! handle with a per-*container* one:
//!
//! * A **slab** ([`SlabCore`], private) owns the payloads of one batch as a
//!   single contiguous `Vec<T>`, plus parallel `event_ns` / `key` lanes.
//!   It is refcounted (`Arc`) and type-erased behind three function
//!   pointers chosen at seal time, so the downcast happens once per batch
//!   instead of once per tuple.
//! * A [`Batch`] is a cheap view `(slab, start, len)` over a slab.
//!   `Batch::clone` is a refcount bump — broadcast to N consumers shares
//!   one slab N ways. Sub-ranges ([`Batch::slice`]) share it too, which is
//!   how quarantine keeps the un-poisoned remainder of a batch without
//!   cloning payloads.
//! * A [`BatchBuilder`] accumulates typed pushes into an open slab and
//!   seals it into a `Batch`. Slab storage is recycled through a
//!   per-producer [`SlabPool`]: when the last `Batch` handle drops —
//!   usually on the consumer's thread — the cleared `Vec`s travel back to
//!   the producer's pool, so the steady state allocates nothing.
//! * Operators read tuples through [`TupleView`] (a borrowed payload plus
//!   the lane values) or, batch-at-a-time, through [`BatchCursor`] /
//!   [`Batch::payloads`], which exposes the contiguous `&[T]` directly.
//!
//! Legacy [`Tuple`]s interoperate: a slab of element type `Tuple` views
//! through the tuple's inner `Arc` payload, so deprecated emit paths keep
//! their exact downcast semantics while riding the batch fabric.

use crate::tuple::Tuple;
use std::any::{Any, TypeId};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Storage slabs a pool retains for reuse beyond this count are dropped
/// instead (bounds pool memory when a producer bursts far above steady
/// state).
const MAX_POOLED_SLABS: usize = 64;

type AnyPayloads = Box<dyn Any + Send + Sync>;
type ViewFn = for<'a> fn(&'a (dyn Any + Send + Sync), usize) -> &'a (dyn Any + Send + Sync);
type PayloadFn = fn(&(dyn Any + Send + Sync), usize) -> Arc<dyn Any + Send + Sync>;
type ClearFn = fn(&mut (dyn Any + Send + Sync));

/// The three type-erased operations a slab needs after its element type is
/// forgotten: borrow element `i` as `&dyn Any`, clone element `i` into an
/// owned legacy [`Tuple`] payload, and clear the storage for recycling.
#[derive(Clone, Copy)]
struct SlabOps {
    view: ViewFn,
    payload: PayloadFn,
    clear: ClearFn,
}

fn view_slab<T: Any + Send + Sync>(
    p: &(dyn Any + Send + Sync),
    i: usize,
) -> &(dyn Any + Send + Sync) {
    &p.downcast_ref::<Vec<T>>().expect("slab payload type")[i]
}

fn payload_slab<T: Any + Send + Sync + Clone>(
    p: &(dyn Any + Send + Sync),
    i: usize,
) -> Arc<dyn Any + Send + Sync> {
    Arc::new(p.downcast_ref::<Vec<T>>().expect("slab payload type")[i].clone())
}

fn clear_slab<T: Any + Send + Sync>(p: &mut (dyn Any + Send + Sync)) {
    p.downcast_mut::<Vec<T>>()
        .expect("slab payload type")
        .clear();
}

/// Slabs of legacy `Tuple`s view through the tuple's inner `Arc` payload,
/// preserving the historical `value::<T>()` downcast semantics.
fn view_tuple(p: &(dyn Any + Send + Sync), i: usize) -> &(dyn Any + Send + Sync) {
    &*p.downcast_ref::<Vec<Tuple>>().expect("slab payload type")[i].payload
}

fn payload_tuple(p: &(dyn Any + Send + Sync), i: usize) -> Arc<dyn Any + Send + Sync> {
    Arc::clone(&p.downcast_ref::<Vec<Tuple>>().expect("slab payload type")[i].payload)
}

fn ops_for<T: Any + Send + Sync + Clone>() -> SlabOps {
    if TypeId::of::<T>() == TypeId::of::<Tuple>() {
        SlabOps {
            view: view_tuple,
            payload: payload_tuple,
            clear: clear_slab::<Tuple>,
        }
    } else {
        SlabOps {
            view: view_slab::<T>,
            payload: payload_slab::<T>,
            clear: clear_slab::<T>,
        }
    }
}

/// Allocation counters for the slab arena, shared engine-wide.
///
/// `outstanding` counts slabs (open in a builder or sealed into live
/// batches) whose storage is checked out of a pool; it must return to zero
/// by engine teardown — the leak tripwire CI's leak-check job asserts.
#[derive(Debug, Default)]
pub struct SlabStats {
    allocated: AtomicU64,
    recycled: AtomicU64,
    outstanding: AtomicU64,
}

impl SlabStats {
    /// Slabs whose storage was freshly allocated (pool miss).
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Slabs whose storage was reused from a pool (pool hit) — the
    /// steady-state path.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Slabs currently checked out (open or referenced by live batches).
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Relaxed)
    }
}

/// Cleared slab storage waiting for reuse.
struct FreeSlab {
    payloads: AnyPayloads,
    event_ns: Vec<u64>,
    keys: Vec<u64>,
    elem_type: TypeId,
}

/// A per-producer arena of recyclable slab storage.
///
/// The producer's [`BatchBuilder`] draws cleared storage from here instead
/// of allocating; when the last [`Batch`] over a slab drops — typically on
/// a consumer thread — the storage travels back through the `Arc`'d pool
/// handle embedded in the slab. Storage is only reused for the exact same
/// element type, so recycled capacity is immediately useful.
pub struct SlabPool {
    free: Mutex<Vec<FreeSlab>>,
    stats: Arc<SlabStats>,
}

impl SlabPool {
    /// A new, empty pool reporting into `stats`.
    pub fn new(stats: Arc<SlabStats>) -> Arc<SlabPool> {
        Arc::new(SlabPool {
            free: Mutex::new(Vec::new()),
            stats,
        })
    }

    /// A standalone pool with its own private stats (tests, capture
    /// collectors).
    pub fn standalone() -> Arc<SlabPool> {
        SlabPool::new(Arc::new(SlabStats::default()))
    }

    /// The stats sink this pool reports into.
    pub fn stats(&self) -> &Arc<SlabStats> {
        &self.stats
    }

    fn take(&self, elem_type: TypeId) -> Option<FreeSlab> {
        let mut free = self.free.lock().unwrap_or_else(|p| p.into_inner());
        let idx = free.iter().rposition(|s| s.elem_type == elem_type)?;
        Some(free.swap_remove(idx))
    }

    fn give(&self, slab: FreeSlab) {
        self.stats.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut free = self.free.lock().unwrap_or_else(|p| p.into_inner());
        if free.len() < MAX_POOLED_SLABS {
            free.push(slab);
        }
    }
}

/// The refcounted storage behind one batch: contiguous payloads plus
/// parallel metadata lanes. Dropping the last handle returns the cleared
/// storage to its producer's pool.
struct SlabCore {
    payloads: AnyPayloads,
    event_ns: Vec<u64>,
    keys: Vec<u64>,
    elem_type: TypeId,
    ops: SlabOps,
    /// `None` for pool-less slabs ([`Batch::from_tuples`]); their storage
    /// is simply dropped and they do not count toward any [`SlabStats`].
    pool: Option<Arc<SlabPool>>,
}

impl Drop for SlabCore {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            (self.ops.clear)(self.payloads.as_mut());
            let mut event_ns = std::mem::take(&mut self.event_ns);
            let mut keys = std::mem::take(&mut self.keys);
            event_ns.clear();
            keys.clear();
            let payloads = std::mem::replace(&mut self.payloads, Box::new(()));
            pool.give(FreeSlab {
                payloads,
                event_ns,
                keys,
                elem_type: self.elem_type,
            });
        }
    }
}

/// A typed, arena-backed batch of tuples: the unit of exchange on the
/// data plane.
///
/// A `Batch` is a `(slab, start, len)` view. Cloning bumps the slab
/// refcount; [`Batch::slice`] shares it too. Payloads stay contiguous in
/// the slab, so a consumer that knows the element type reads them as a
/// plain `&[T]` via [`Batch::payloads`] — one downcast per batch, not per
/// tuple.
pub struct Batch {
    slab: Arc<SlabCore>,
    start: usize,
    len: usize,
}

impl Clone for Batch {
    /// A refcount bump on the shared slab — no payload copies.
    fn clone(&self) -> Batch {
        Batch {
            slab: Arc::clone(&self.slab),
            start: self.start,
            len: self.len,
        }
    }
}

impl Batch {
    /// Number of tuples in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Event time lane value of tuple `i`.
    pub fn event_ns(&self, i: usize) -> u64 {
        self.event_ns_lane()[i]
    }

    /// Partitioning key lane value of tuple `i`.
    pub fn key(&self, i: usize) -> u64 {
        self.key_lane()[i]
    }

    /// The contiguous event-time lane for this view.
    pub fn event_ns_lane(&self) -> &[u64] {
        &self.slab.event_ns[self.start..self.start + self.len]
    }

    /// The contiguous partitioning-key lane for this view.
    pub fn key_lane(&self) -> &[u64] {
        &self.slab.keys[self.start..self.start + self.len]
    }

    /// The contiguous payload slice, if the batch's element type is `T`.
    /// This is the zero-copy fast path: one downcast for the whole batch.
    pub fn payloads<T: Any>(&self) -> Option<&[T]> {
        self.slab
            .payloads
            .downcast_ref::<Vec<T>>()
            .map(|v| &v[self.start..self.start + self.len])
    }

    /// Borrow tuple `i` as a [`TupleView`].
    pub fn view(&self, i: usize) -> TupleView<'_> {
        assert!(i < self.len, "batch index out of range");
        let idx = self.start + i;
        TupleView {
            payload: (self.slab.ops.view)(self.slab.payloads.as_ref(), idx),
            event_ns: self.slab.event_ns[idx],
            key: self.slab.keys[idx],
        }
    }

    /// Clone tuple `i` out into an owned legacy [`Tuple`] (profiling /
    /// capture bridges; allocates for non-`Tuple` element types).
    pub fn to_tuple(&self, i: usize) -> Tuple {
        assert!(i < self.len, "batch index out of range");
        let idx = self.start + i;
        Tuple {
            payload: (self.slab.ops.payload)(self.slab.payloads.as_ref(), idx),
            event_ns: self.slab.event_ns[idx],
            key: self.slab.keys[idx],
        }
    }

    /// A sub-view of `len` tuples starting at `start`, sharing the same
    /// slab (refcount bump, no copies). Quarantine uses this to keep the
    /// un-poisoned remainder of a shared batch.
    pub fn slice(&self, start: usize, len: usize) -> Batch {
        assert!(
            start + len <= self.len,
            "slice out of range: {start}+{len} > {}",
            self.len
        );
        Batch {
            slab: Arc::clone(&self.slab),
            start: self.start + start,
            len,
        }
    }

    /// Iterate the batch as [`TupleView`]s.
    pub fn iter(&self) -> impl Iterator<Item = TupleView<'_>> {
        (0..self.len).map(move |i| self.view(i))
    }

    /// Number of live handles on the underlying slab (tests: proves
    /// broadcast is a refcount bump).
    pub fn slab_refs(&self) -> usize {
        Arc::strong_count(&self.slab)
    }

    /// Identity of the underlying slab (tests: proves two batches share
    /// storage).
    pub fn slab_id(&self) -> usize {
        Arc::as_ptr(&self.slab) as *const () as usize
    }

    /// Build a pool-less typed batch from `(value, event_ns, key)` rows
    /// (test and bench bridge; not recycled, not counted in any
    /// [`SlabStats`]).
    pub fn from_rows<T, I>(rows: I) -> Batch
    where
        T: Any + Send + Sync + Clone,
        I: IntoIterator<Item = (T, u64, u64)>,
    {
        let mut payloads = Vec::new();
        let mut event_ns = Vec::new();
        let mut keys = Vec::new();
        for (value, e, k) in rows {
            payloads.push(value);
            event_ns.push(e);
            keys.push(k);
        }
        let len = payloads.len();
        Batch {
            slab: Arc::new(SlabCore {
                payloads: Box::new(payloads),
                event_ns,
                keys,
                elem_type: TypeId::of::<T>(),
                ops: ops_for::<T>(),
                pool: None,
            }),
            start: 0,
            len,
        }
    }

    /// Wrap pre-built legacy [`Tuple`]s as a pool-less batch (test and
    /// bench bridge; not recycled, not counted in any [`SlabStats`]).
    pub fn from_tuples(tuples: Vec<Tuple>) -> Batch {
        let event_ns = tuples.iter().map(|t| t.event_ns).collect();
        let keys = tuples.iter().map(|t| t.key).collect();
        let len = tuples.len();
        Batch {
            slab: Arc::new(SlabCore {
                payloads: Box::new(tuples),
                event_ns,
                keys,
                elem_type: TypeId::of::<Tuple>(),
                ops: ops_for::<Tuple>(),
                pool: None,
            }),
            start: 0,
            len,
        }
    }
}

impl std::fmt::Debug for Batch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batch")
            .field("len", &self.len)
            .field("slab_refs", &self.slab_refs())
            .finish_non_exhaustive()
    }
}

/// A borrowed view of one tuple: payload reference plus the lane values.
/// This is what [`crate::operator::DynBolt::execute`] receives — no `Arc`
/// handle, no per-tuple allocation.
#[derive(Clone, Copy)]
pub struct TupleView<'a> {
    payload: &'a (dyn Any + Send + Sync),
    /// Event origination time, nanoseconds since engine start.
    pub event_ns: u64,
    /// Partitioning key hash.
    pub key: u64,
}

impl<'a> TupleView<'a> {
    /// Downcast the payload. The returned borrow lives as long as the
    /// underlying batch, not just this view.
    pub fn value<T: Any>(&self) -> Option<&'a T> {
        self.payload.downcast_ref::<T>()
    }

    /// View a legacy owned [`Tuple`] (profiling replay, shims).
    pub fn of_tuple(t: &'a Tuple) -> TupleView<'a> {
        TupleView {
            payload: &*t.payload,
            event_ns: t.event_ns,
            key: t.key,
        }
    }

    /// View a bare value with explicit lane values. A value that is itself
    /// a legacy [`Tuple`] is unwrapped so `value::<T>()` reaches its inner
    /// payload, mirroring slab semantics.
    pub fn of_value<T: Any + Send + Sync>(value: &'a T, event_ns: u64, key: u64) -> TupleView<'a> {
        let any: &'a (dyn Any + Send + Sync) = value;
        match any.downcast_ref::<Tuple>() {
            Some(t) => TupleView::of_tuple(t),
            None => TupleView {
                payload: any,
                event_ns,
                key,
            },
        }
    }
}

impl std::fmt::Debug for TupleView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TupleView")
            .field("event_ns", &self.event_ns)
            .field("key", &self.key)
            .finish_non_exhaustive()
    }
}

/// Batch-at-a-time input handed to [`crate::operator::DynBolt::consume`],
/// tracking completion so the supervisor can pin a poison tuple exactly.
///
/// **Contract:** either drain the cursor with [`BatchCursor::next`] until
/// it returns `None`, or process the batch wholesale (e.g. via
/// [`BatchCursor::payloads`]) and call [`BatchCursor::mark_done`] as
/// tuples complete. Returning normally from `consume` counts the whole
/// batch as processed; if `consume` panics, tuple [`BatchCursor::done`] is
/// quarantined and everything after it is replayed.
pub struct BatchCursor<'a> {
    batch: &'a Batch,
    next_idx: Cell<usize>,
    completed: Cell<usize>,
}

impl<'a> BatchCursor<'a> {
    /// A cursor over `batch`, positioned at the first tuple.
    pub fn new(batch: &'a Batch) -> BatchCursor<'a> {
        BatchCursor {
            batch,
            next_idx: Cell::new(0),
            completed: Cell::new(0),
        }
    }

    /// The next tuple view, or `None` when the batch is drained. Asking
    /// for tuple `i` marks tuple `i - 1` complete; the final `None` marks
    /// the whole batch complete.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&self) -> Option<TupleView<'a>> {
        let i = self.next_idx.get();
        self.completed.set(i.max(self.completed.get()));
        if i >= self.batch.len() {
            return None;
        }
        self.next_idx.set(i + 1);
        Some(self.batch.view(i))
    }

    /// Tuples known complete (the supervisor's quarantine boundary).
    pub fn done(&self) -> usize {
        self.completed.get()
    }

    /// Record that the first `n` tuples completed — for batch-wholesale
    /// consumers that bypass [`BatchCursor::next`]. Clamped to the batch
    /// length; never moves backwards.
    pub fn mark_done(&self, n: usize) {
        let n = n.min(self.batch.len());
        self.completed.set(n.max(self.completed.get()));
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// The contiguous payload slice if the element type is `T` — the
    /// per-batch downcast fast path.
    pub fn payloads<T: Any>(&self) -> Option<&'a [T]> {
        // Re-borrow through the batch reference so the slice outlives the
        // cursor itself.
        self.batch
            .slab
            .payloads
            .downcast_ref::<Vec<T>>()
            .map(|v| &v[self.batch.start..self.batch.start + self.batch.len])
    }

    /// The contiguous event-time lane.
    pub fn event_ns_lane(&self) -> &'a [u64] {
        &self.batch.slab.event_ns[self.batch.start..self.batch.start + self.batch.len]
    }

    /// The contiguous partitioning-key lane.
    pub fn key_lane(&self) -> &'a [u64] {
        &self.batch.slab.keys[self.batch.start..self.batch.start + self.batch.len]
    }

    /// The underlying batch.
    pub fn batch(&self) -> &'a Batch {
        self.batch
    }
}

/// Open, typed slab storage under construction.
struct OpenSlab {
    payloads: AnyPayloads,
    event_ns: Vec<u64>,
    keys: Vec<u64>,
    elem_type: TypeId,
    ops: SlabOps,
    len: usize,
}

/// Accumulates typed pushes into an open slab and seals them into
/// [`Batch`]es, drawing storage from (and returning it to) a [`SlabPool`].
///
/// A builder holds at most one open slab of one element type at a time;
/// pushing a different type seals the open slab first and hands it back
/// (heterogeneous streams stay ordered, in shorter type-homogeneous
/// batches).
pub struct BatchBuilder {
    pool: Arc<SlabPool>,
    open: Option<OpenSlab>,
}

impl BatchBuilder {
    /// A builder drawing slab storage from `pool`.
    pub fn new(pool: Arc<SlabPool>) -> BatchBuilder {
        BatchBuilder { pool, open: None }
    }

    /// Tuples in the open (unsealed) slab.
    pub fn len(&self) -> usize {
        self.open.as_ref().map_or(0, |o| o.len)
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one tuple. If the open slab holds a different element type
    /// it is sealed and returned — ship it before the new batch to
    /// preserve stream order.
    #[must_use = "a returned batch is sealed output that must be shipped"]
    pub fn push<T: Any + Send + Sync + Clone>(
        &mut self,
        value: T,
        event_ns: u64,
        key: u64,
    ) -> Option<Batch> {
        let elem_type = TypeId::of::<T>();
        let sealed = if self.open.as_ref().is_some_and(|o| o.elem_type != elem_type) {
            self.seal()
        } else {
            None
        };
        if self.open.is_none() {
            self.open = Some(self.open_slab::<T>());
        }
        let open = self.open.as_mut().expect("just opened");
        open.payloads
            .downcast_mut::<Vec<T>>()
            .expect("slab payload type")
            .push(value);
        open.event_ns.push(event_ns);
        open.keys.push(key);
        open.len += 1;
        sealed
    }

    /// Seal the open slab into an immutable, refcounted [`Batch`]
    /// (`None` when nothing is buffered).
    pub fn seal(&mut self) -> Option<Batch> {
        let o = self.open.take()?;
        let len = o.len;
        Some(Batch {
            slab: Arc::new(SlabCore {
                payloads: o.payloads,
                event_ns: o.event_ns,
                keys: o.keys,
                elem_type: o.elem_type,
                ops: o.ops,
                pool: Some(Arc::clone(&self.pool)),
            }),
            start: 0,
            len,
        })
    }

    fn open_slab<T: Any + Send + Sync + Clone>(&self) -> OpenSlab {
        let elem_type = TypeId::of::<T>();
        let stats = &self.pool.stats;
        stats.outstanding.fetch_add(1, Ordering::Relaxed);
        match self.pool.take(elem_type) {
            Some(free) => {
                stats.recycled.fetch_add(1, Ordering::Relaxed);
                OpenSlab {
                    payloads: free.payloads,
                    event_ns: free.event_ns,
                    keys: free.keys,
                    elem_type,
                    ops: ops_for::<T>(),
                    len: 0,
                }
            }
            None => {
                stats.allocated.fetch_add(1, Ordering::Relaxed);
                OpenSlab {
                    payloads: Box::new(Vec::<T>::new()),
                    event_ns: Vec::new(),
                    keys: Vec::new(),
                    elem_type,
                    ops: ops_for::<T>(),
                    len: 0,
                }
            }
        }
    }
}

impl Drop for BatchBuilder {
    fn drop(&mut self) {
        // Return unsealed storage so teardown balances `outstanding`.
        if let Some(mut o) = self.open.take() {
            (o.ops.clear)(o.payloads.as_mut());
            o.event_ns.clear();
            o.keys.clear();
            self.pool.give(FreeSlab {
                payloads: o.payloads,
                event_ns: o.event_ns,
                keys: o.keys,
                elem_type: o.elem_type,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_and_read_typed_payloads() {
        let pool = SlabPool::standalone();
        let mut b = BatchBuilder::new(Arc::clone(&pool));
        for i in 0..5u64 {
            assert!(b.push(i * 10, i, i * 7).is_none());
        }
        let batch = b.seal().expect("non-empty");
        assert_eq!(batch.len(), 5);
        assert_eq!(
            batch.payloads::<u64>().expect("typed"),
            &[0, 10, 20, 30, 40]
        );
        assert_eq!(batch.event_ns_lane(), &[0, 1, 2, 3, 4]);
        assert_eq!(batch.key(3), 21);
        assert!(batch.payloads::<String>().is_none());
        let v = batch.view(2);
        assert_eq!(v.value::<u64>(), Some(&20));
        assert_eq!(v.event_ns, 2);
    }

    #[test]
    fn clone_is_refcount_bump_and_slice_shares_slab() {
        let pool = SlabPool::standalone();
        let mut b = BatchBuilder::new(Arc::clone(&pool));
        for i in 0..4u32 {
            let _ = b.push(i, 0, 0);
        }
        let batch = b.seal().expect("non-empty");
        assert_eq!(batch.slab_refs(), 1);
        let copy = batch.clone();
        let tail = batch.slice(1, 3);
        assert_eq!(batch.slab_refs(), 3);
        assert_eq!(copy.slab_id(), batch.slab_id());
        assert_eq!(tail.slab_id(), batch.slab_id());
        assert_eq!(tail.payloads::<u32>().expect("typed"), &[1, 2, 3]);
        assert_eq!(pool.stats().allocated(), 1, "one slab for all three views");
    }

    #[test]
    fn storage_recycles_through_the_pool() {
        let pool = SlabPool::standalone();
        let mut b = BatchBuilder::new(Arc::clone(&pool));
        let _ = b.push(1u64, 0, 0);
        drop(b.seal());
        assert_eq!(pool.stats().allocated(), 1);
        assert_eq!(pool.stats().outstanding(), 0);
        let _ = b.push(2u64, 0, 0);
        let batch = b.seal().expect("non-empty");
        assert_eq!(pool.stats().recycled(), 1, "second slab reuses storage");
        assert_eq!(pool.stats().allocated(), 1);
        assert_eq!(pool.stats().outstanding(), 1);
        drop(batch);
        assert_eq!(pool.stats().outstanding(), 0);
    }

    #[test]
    fn type_switch_seals_previous_slab() {
        let pool = SlabPool::standalone();
        let mut b = BatchBuilder::new(pool);
        assert!(b.push(1u64, 0, 0).is_none());
        let sealed = b.push(String::from("x"), 1, 0).expect("type switch seals");
        assert_eq!(sealed.payloads::<u64>().expect("typed"), &[1]);
        let second = b.seal().expect("non-empty");
        assert_eq!(
            second.view(0).value::<String>().map(String::as_str),
            Some("x")
        );
        assert_eq!(second.event_ns(0), 1);
    }

    #[test]
    fn cursor_tracks_completion() {
        let pool = SlabPool::standalone();
        let mut b = BatchBuilder::new(pool);
        for i in 0..3u8 {
            let _ = b.push(i, 0, 0);
        }
        let batch = b.seal().expect("non-empty");
        let cur = BatchCursor::new(&batch);
        assert_eq!(cur.done(), 0);
        assert!(cur.next().is_some()); // working on tuple 0
        assert_eq!(cur.done(), 0);
        assert!(cur.next().is_some()); // tuple 0 complete, working on 1
        assert_eq!(cur.done(), 1);
        assert!(cur.next().is_some());
        assert!(cur.next().is_none()); // drained: everything complete
        assert_eq!(cur.done(), 3);
        let cur2 = BatchCursor::new(&batch);
        cur2.mark_done(2);
        assert_eq!(cur2.done(), 2);
        assert_eq!(cur2.payloads::<u8>().expect("typed"), &[0, 1, 2]);
    }

    #[test]
    fn legacy_tuple_slabs_keep_inner_payload_semantics() {
        #[allow(deprecated)]
        let t = Tuple::keyed(String::from("w"), 5, 9);
        let batch = Batch::from_tuples(vec![t]);
        let v = batch.view(0);
        // The view reaches through the tuple's inner Arc payload.
        assert_eq!(v.value::<String>().map(String::as_str), Some("w"));
        assert_eq!(v.key, 9);
        let back = batch.to_tuple(0);
        assert_eq!(back.event_ns, 5);
    }
}
