//! The threaded execution engine.
//!
//! One OS thread per operator replica, wired by bounded queues carrying
//! jumbo tuples. Shutdown cascades topologically: the run deadline stops the
//! spouts; a bolt exits once every producer operator has finished *and* its
//! input queues are drained, so no tuple in flight is lost.
//!
//! On a development host there is no 8-socket NUMA machine to pin against,
//! so the engine keeps placement as bookkeeping and can optionally *inject*
//! the remote-fetch penalty of a virtual machine ([`NumaPenalty`]): when a
//! consumer pops a jumbo produced on a different (virtual) socket it spins
//! for `tuples × ceil(N/S) × L(i,j)` nanoseconds — the exact Formula 2 cost
//! the real hardware would charge. This keeps execution-plan shapes
//! meaningful end to end.

use crate::batch::{Batch, BatchCursor, SlabPool, SlabStats};
use crate::fusion::{FusedSinkState, FusedTarget, SinkLocal, SinkProgress};
use crate::operator::{
    AppRuntime, BoltContext, Collector, DynBolt, DynSpout, EngineClock, OperatorRuntime,
    OutputEdge, SpoutStatus, StateEntry,
};
use crate::partition::Partitioner;
use crate::queue::{QueueKind, ReplicaQueue};
use crate::scheduler::{self, PoolRun, Scheduler, WakeHub};
use crate::spsc::{Backoff, BackoffProfile};
use crate::supervise::{
    self, panic_message, FaultKind, FaultSummary, ReplicaFault, RestartPolicy, StallEvent,
    WatchEntry,
};
use crate::tuple::JumboTuple;
use brisk_dag::{
    ExecutionGraph, ExecutionPlan, FusionPlan, LogicalTopology, OperatorId, OperatorKind,
    Partitioning,
};
use brisk_metrics::Histogram;
use brisk_numa::{Machine, SocketId, CACHE_LINE_BYTES};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Injected NUMA fetch costs for a virtual machine.
#[derive(Debug, Clone)]
pub struct NumaPenalty {
    /// The virtual machine whose latency matrix is charged.
    pub machine: Machine,
    /// Virtual socket of every global replica index.
    pub replica_socket: Vec<SocketId>,
    /// Scale factor on the injected spin (1.0 = charge full Formula 2 cost).
    pub scale: f64,
}

impl NumaPenalty {
    fn fetch_ns(&self, producer: usize, consumer: usize, bytes: f64, tuples: usize) -> u64 {
        let (i, j) = (self.replica_socket[producer], self.replica_socket[consumer]);
        if i == j {
            return 0;
        }
        let lines = (bytes / CACHE_LINE_BYTES as f64).ceil().max(1.0);
        (lines * self.machine.latency_ns(i, j) * self.scale * tuples as f64) as u64
    }
}

/// Engine tuning knobs.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`EngineConfig::builder`] (or start from [`EngineConfig::default`] and
/// assign fields), so new knobs — like [`EngineConfig::scheduler`] — stop
/// being breaking changes.
///
/// ```
/// use brisk_runtime::{EngineConfig, QueueKind, Scheduler};
///
/// let config = EngineConfig::builder()
///     .queue_kind(QueueKind::Mpsc)
///     .fusion(false)
///     .scheduler(Scheduler::CorePool { workers: 4 })
///     .build();
/// assert_eq!(config.scheduler, Scheduler::CorePool { workers: 4 });
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Which queue fabric wires replica pairs (default: lock-free SPSC).
    pub queue_kind: QueueKind,
    /// Queue capacity in jumbo tuples.
    pub queue_capacity: usize,
    /// Tuples batched per jumbo tuple (1 disables the jumbo optimization).
    pub jumbo_size: usize,
    /// Park interval ceiling for the adaptive spin → yield → park back-off
    /// ladder (see [`Backoff`]) — governs both idle executors polling
    /// empty inputs and producers blocked on a full SPSC ring.
    pub poll_backoff: Duration,
    /// Emit-side flush cadence, in operator invocations.
    pub flush_every: u32,
    /// Optional virtual-NUMA fetch penalty.
    pub numa_penalty: Option<NumaPenalty>,
    /// Artificial extra cost per consumed tuple, in nanoseconds — lets tests
    /// and examples emulate heavier (distributed-style) engines. Charged on
    /// the queue pop path, so fused edges (which never cross a queue) skip
    /// it, like they skip the NUMA penalty.
    pub extra_cost_ns_per_tuple: u64,
    /// Operator-chain fusion (default on): 1:1 collocated producer→consumer
    /// chains collapse into a single executor calling the downstream
    /// operator inline instead of routing through a queue (see
    /// [`brisk_dag::FusionPlan`] for eligibility). Disable for A/B runs.
    pub fusion: bool,
    /// How replicas map onto OS threads: one thread per replica (default)
    /// or the work-stealing core pool (see [`Scheduler`]).
    pub scheduler: Scheduler,
    /// What happens when a replica's operator panics: retire it on first
    /// fault (default) or restart it with exponential backoff (see
    /// [`RestartPolicy`]). Either way the panic is contained, the faulting
    /// tuple (when attributable) is quarantined, and the run terminates
    /// cleanly with the fault in [`RunReport::faults`].
    pub restart: RestartPolicy,
    /// Optional stall watchdog: when set, a supervisor thread samples
    /// per-replica progress counters and records a [`StallEvent`] for any
    /// bolt/sink replica that makes no progress within the deadline while
    /// input is pending and no output queue is full (back-pressured
    /// replicas are never flagged). Observation only — no replica is ever
    /// killed by the watchdog.
    pub stall_deadline: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_kind: QueueKind::default(),
            queue_capacity: 64,
            jumbo_size: 64,
            poll_backoff: Duration::from_micros(100),
            flush_every: 256,
            numa_penalty: None,
            extra_cost_ns_per_tuple: 0,
            fusion: true,
            scheduler: Scheduler::default(),
            restart: RestartPolicy::default(),
            stall_deadline: None,
        }
    }
}

impl EngineConfig {
    /// Chainable builder starting from [`EngineConfig::default`].
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }
}

/// Chainable builder for [`EngineConfig`]; see [`EngineConfig::builder`].
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Queue fabric wiring replica pairs ([`EngineConfig::queue_kind`]).
    pub fn queue_kind(mut self, kind: QueueKind) -> Self {
        self.config.queue_kind = kind;
        self
    }

    /// Queue capacity in jumbos ([`EngineConfig::queue_capacity`]).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Tuples per jumbo ([`EngineConfig::jumbo_size`]).
    pub fn jumbo_size(mut self, size: usize) -> Self {
        self.config.jumbo_size = size;
        self
    }

    /// Park ceiling of the wait ladder ([`EngineConfig::poll_backoff`]).
    pub fn poll_backoff(mut self, interval: Duration) -> Self {
        self.config.poll_backoff = interval;
        self
    }

    /// Emit-side flush cadence ([`EngineConfig::flush_every`]).
    pub fn flush_every(mut self, invocations: u32) -> Self {
        self.config.flush_every = invocations;
        self
    }

    /// Inject a virtual-NUMA fetch penalty ([`EngineConfig::numa_penalty`]).
    pub fn numa_penalty(mut self, penalty: NumaPenalty) -> Self {
        self.config.numa_penalty = Some(penalty);
        self
    }

    /// Artificial per-tuple consume cost
    /// ([`EngineConfig::extra_cost_ns_per_tuple`]).
    pub fn extra_cost_ns_per_tuple(mut self, ns: u64) -> Self {
        self.config.extra_cost_ns_per_tuple = ns;
        self
    }

    /// Toggle operator-chain fusion ([`EngineConfig::fusion`]).
    pub fn fusion(mut self, enabled: bool) -> Self {
        self.config.fusion = enabled;
        self
    }

    /// Select the execution scheduler ([`EngineConfig::scheduler`]).
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Replica restart policy on operator panic
    /// ([`EngineConfig::restart`]).
    pub fn restart(mut self, policy: RestartPolicy) -> Self {
        self.config.restart = policy;
        self
    }

    /// Arm the stall watchdog ([`EngineConfig::stall_deadline`]).
    pub fn stall_deadline(mut self, deadline: Duration) -> Self {
        self.config.stall_deadline = Some(deadline);
        self
    }

    /// Finish the chain.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// Aggregated results of one engine run.
#[derive(Debug)]
pub struct RunReport {
    /// Wall-clock run time (including drain).
    pub elapsed: Duration,
    /// Tuples received by sink operators.
    pub sink_events: u64,
    /// `sink_events / elapsed` in events per second.
    pub throughput: f64,
    /// End-to-end latency (spout emit → sink receive), nanoseconds.
    pub latency_ns: Histogram,
    /// Input-side tuples consumed per operator. Spouts have no input and
    /// report 0 here — their emission counts are in `emitted`,
    /// so spout emission rate and sink consumption rate are distinguishable.
    #[deprecated(note = "use `RunReport::operator(op).processed` instead")]
    pub processed: Vec<u64>,
    /// Output-side tuples emitted per operator across all streams (sinks
    /// normally 0; spouts: their generation count).
    #[deprecated(note = "use `RunReport::operator(op).emitted` instead")]
    pub emitted: Vec<u64>,
    /// Queue-pressure events per operator: jumbo flushes that found a
    /// destination queue full, i.e. the producer stalled on back-pressure.
    /// Counted once per stalled flush (one jumbo to one destination
    /// queue), so a broadcast edge with several slow consumers records one
    /// stall per consumer queue.
    #[deprecated(note = "use `RunReport::operator(op).queue_full_events` instead")]
    pub queue_full_events: Vec<u64>,
    /// Queue crossings per operator: jumbo tuples this operator pushed to
    /// consumer queues. Fused edges deliver inline and never count here —
    /// the fused-vs-unfused A/B reads this to verify fusion actually
    /// removed crossings.
    #[deprecated(note = "use `RunReport::operator(op).queue_pushes` instead")]
    pub queue_pushes: Vec<u64>,
    /// Payload slabs freshly allocated by the batch fabric over the whole
    /// run (pool misses). Steady state should be dominated by
    /// [`RunReport::slab_recycled`] instead.
    pub slab_allocs: u64,
    /// Payload slabs reused from a producer arena pool (pool hits) — the
    /// zero-allocation steady-state path.
    pub slab_recycled: u64,
    /// Replica restarts per operator (supervision).
    op_restarts: Vec<u64>,
    /// Quarantined (dead-lettered) tuples per operator.
    op_quarantined: Vec<u64>,
    /// Faults attributed per operator.
    op_fault_counts: Vec<u64>,
    /// Every structured fault of the run, in occurrence order.
    faults: Vec<ReplicaFault>,
    /// Every watchdog stall observation of the run.
    stalls: Vec<StallEvent>,
    /// Tuples handled per global replica (spouts: emitted; bolts/sinks:
    /// consumed, including inline fused deliveries).
    replica_tuples: Vec<u64>,
    /// Nanoseconds each global replica spent inside its operator's
    /// `consume` (bolts/sinks only; spout slots stay 0).
    replica_busy: Vec<u64>,
    /// `(operator index, replica index)` of every global replica slot, in
    /// global-index order.
    replica_map: Vec<(usize, usize)>,
}

/// One replica's measured tuple rate — the per-replica signal the elastic
/// controller (and users, via [`RunReport::replica_rates`] or the live
/// [`EngineHandle::rates`]) reads to detect workload drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaRate {
    /// Logical operator index.
    pub op: usize,
    /// Replica index within the operator.
    pub replica: usize,
    /// Tuples this replica handled: emitted for spout replicas, consumed
    /// (queued pops plus inline fused deliveries) for bolts and sinks.
    pub tuples: u64,
    /// `tuples` divided by the sampling window, per second.
    pub rate: f64,
    /// Nanoseconds spent inside the operator's `consume` calls — execution
    /// plus emission, including time blocked pushing to full downstream
    /// queues, and including inline work of fused targets riding this
    /// replica. Spout replicas report 0 (generation is not instrumented).
    pub busy_ns: u64,
}

impl ReplicaRate {
    /// Measured service time per tuple in nanoseconds — the online
    /// counterpart of the cost model's per-tuple `T(p)`; `None` when the
    /// replica has no instrumented busy time (spouts, starved replicas).
    pub fn service_ns(&self) -> Option<f64> {
        (self.busy_ns > 0 && self.tuples > 0).then(|| self.busy_ns as f64 / self.tuples as f64)
    }
}

/// Per-operator slice of a [`RunReport`], indexed by logical operator (see
/// [`RunReport::operator`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpStats {
    /// Input-side tuples this operator consumed (0 for spouts).
    pub processed: u64,
    /// Output-side tuples this operator emitted across all streams.
    pub emitted: u64,
    /// Jumbo flushes that found a destination queue full (back-pressure
    /// stalls charged to this operator as a producer).
    pub queue_full_events: u64,
    /// Jumbo tuples this operator pushed to consumer queues (fused edges
    /// deliver inline and never count).
    pub queue_pushes: u64,
    /// Replica restarts granted to this operator by the
    /// [`RestartPolicy`].
    pub restarts: u64,
    /// Tuples quarantined (dead-lettered) at this operator: each poison
    /// tuple whose `execute` panicked, plus any tuple delivered to a dead
    /// fused instance. At-most-once for these; exactly-once otherwise.
    pub quarantined: u64,
    /// Faults attributed to this operator (each restart or death records
    /// one).
    pub faults: u64,
}

#[allow(deprecated)]
impl RunReport {
    /// Throughput in the paper's unit (k events/s).
    pub fn k_events_per_sec(&self) -> f64 {
        self.throughput / 1e3
    }

    /// All counters of one logical operator, by operator index — the
    /// supported replacement for indexing the deprecated parallel vectors.
    pub fn operator(&self, op: usize) -> OpStats {
        OpStats {
            processed: self.processed[op],
            emitted: self.emitted[op],
            queue_full_events: self.queue_full_events[op],
            queue_pushes: self.queue_pushes[op],
            restarts: self.op_restarts[op],
            quarantined: self.op_quarantined[op],
            faults: self.op_fault_counts[op],
        }
    }

    /// Number of logical operators covered by this report.
    pub fn operator_count(&self) -> usize {
        self.processed.len()
    }

    /// Every operator's counters, in operator order — convenient for
    /// whole-topology assertions (e.g. cross-configuration determinism).
    pub fn per_operator(&self) -> Vec<OpStats> {
        (0..self.operator_count())
            .map(|i| self.operator(i))
            .collect()
    }

    /// Measured input-side processing rate of one operator, tuples/sec
    /// (0 for spouts — see [`RunReport::output_rate`]).
    pub fn input_rate(&self, op: usize) -> f64 {
        self.operator(op).processed as f64 / self.elapsed.as_secs_f64()
    }

    /// Measured output-side emission rate of one operator, tuples/sec
    /// (the measured counterpart of the model's per-operator `ro`).
    pub fn output_rate(&self, op: usize) -> f64 {
        self.operator(op).emitted as f64 / self.elapsed.as_secs_f64()
    }

    /// Every structured fault of the run, in occurrence order (empty on a
    /// clean run).
    pub fn faults(&self) -> &[ReplicaFault] {
        &self.faults
    }

    /// Every watchdog stall observation (empty unless
    /// [`EngineConfig::stall_deadline`] was armed and a replica stalled).
    pub fn stalls(&self) -> &[StallEvent] {
        &self.stalls
    }

    /// Measured per-replica tuple rates over the whole run, in global
    /// replica order (operator-major). Spout replicas report their emission
    /// rate; bolt and sink replicas their consumption rate, counting inline
    /// fused deliveries against the fused operator's replica — the same
    /// per-replica signal [`EngineHandle::rates`] exposes live.
    pub fn replica_rates(&self) -> Vec<ReplicaRate> {
        let secs = self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        self.replica_map
            .iter()
            .zip(self.replica_tuples.iter().zip(&self.replica_busy))
            .map(|(&(op, replica), (&tuples, &busy_ns))| ReplicaRate {
                op,
                replica,
                tuples,
                rate: tuples as f64 / secs,
                busy_ns,
            })
            .collect()
    }

    /// Aggregated fault view of the run: faults, stalls, and run-wide
    /// restart/quarantine totals.
    pub fn fault_summary(&self) -> FaultSummary {
        FaultSummary {
            faults: self.faults.clone(),
            stalls: self.stalls.clone(),
            restarts: self.op_restarts.iter().sum(),
            quarantined: self.op_quarantined.iter().sum(),
        }
    }
}

/// One wired input of a replica: the queue plus the Formula 2 bookkeeping
/// the consumer charges per pop.
pub(crate) struct InputPort {
    pub(crate) queue: Arc<ReplicaQueue<JumboTuple>>,
    /// Output bytes per tuple of the producing operator (Formula 2's `N`).
    /// The producing *replica* is read per jumbo from
    /// [`JumboTuple::producer`], since fan-in (MPSC) ports carry jumbos
    /// from several producer replicas.
    pub(crate) producer_bytes: f64,
}

/// The wired, ready-to-run engine.
pub struct Engine {
    app: Arc<AppRuntime>,
    replication: Vec<usize>,
    config: EngineConfig,
    /// When set, *any* stop (run limit, drain, migration request) harvests
    /// operator state through `extract_state` instead of running `finish` —
    /// the deterministic migration-pause mode the elastic controller and
    /// the migration conformance tests use.
    capture_state_on_stop: bool,
    /// State handed over from a predecessor engine, installed into the
    /// matching replicas at start. Consumed by the first `start`.
    preload: Mutex<Vec<(usize, usize, Vec<StateEntry>)>>,
    /// Skew-aware KeyBy routing weights per *consumer* operator index
    /// (one weight per consumer replica), fed into the partitioners of
    /// every unfused KeyBy edge into that operator.
    keyby_weights: HashMap<usize, Vec<f64>>,
}

impl Engine {
    /// Build an engine running `replication[op]` replicas of each operator.
    pub fn new(
        app: AppRuntime,
        replication: Vec<usize>,
        config: EngineConfig,
    ) -> Result<Engine, String> {
        Engine::from_shared(Arc::new(app), replication, config)
    }

    /// Like [`Engine::new`] but sharing an already-wrapped [`AppRuntime`] —
    /// successive migration epochs rebuild the engine around the same app
    /// without re-registering operator factories.
    pub fn from_shared(
        app: Arc<AppRuntime>,
        replication: Vec<usize>,
        config: EngineConfig,
    ) -> Result<Engine, String> {
        app.validate()?;
        if replication.len() != app.topology.operator_count() {
            return Err("replication must cover every operator".into());
        }
        if replication.contains(&0) {
            return Err("replication level must be at least 1".into());
        }
        let total: usize = replication.iter().sum();
        if total > 512 {
            return Err(format!("{total} replicas exceed the 512-thread safety cap"));
        }
        Ok(Engine {
            app,
            replication,
            config,
            capture_state_on_stop: false,
            preload: Mutex::new(Vec::new()),
            keyby_weights: HashMap::new(),
        })
    }

    /// Harvest operator state on *every* stop — run limit, natural drain or
    /// migration request — instead of running `finish` hooks. The harvested
    /// entries come back through [`EngineHandle::join_with_state`]. This is
    /// the migration-pause mode: `finish` finals belong to the true end of
    /// the stream, which only the last epoch's (non-capturing) engine
    /// reaches.
    pub fn capture_state_on_stop(&mut self, capture: bool) {
        self.capture_state_on_stop = capture;
    }

    /// Stage migrated state for `replica` of operator `op`, installed via
    /// `install_state` right after the replica's operator is constructed
    /// (before it produces or consumes anything). Consumed by the first
    /// [`Engine::start`]; a restarted replica re-instances from the plain
    /// factory, exactly as before.
    pub fn preload_state(
        &self,
        op: usize,
        replica: usize,
        entries: Vec<StateEntry>,
    ) -> Result<(), String> {
        if op >= self.replication.len() {
            return Err(format!("operator index {op} out of range"));
        }
        if replica >= self.replication[op] {
            return Err(format!(
                "replica {replica} out of range for operator {op} ({} replicas)",
                self.replication[op]
            ));
        }
        self.preload.lock().push((op, replica, entries));
        Ok(())
    }

    /// Skew-aware KeyBy routing: weight the key-space share of each replica
    /// of consumer operator `op` (one weight per replica, relative). Fed
    /// into every unfused KeyBy edge into `op`; fused KeyBy edges keep the
    /// uniform aligned routing their pairing was computed for. See
    /// [`crate::partition::keyby_slot_table`] for the slot semantics.
    pub fn set_keyby_weights(&mut self, op: usize, weights: Vec<f64>) -> Result<(), String> {
        if op >= self.replication.len() {
            return Err(format!("operator index {op} out of range"));
        }
        if weights.len() != self.replication[op] {
            return Err(format!(
                "expected {} weights for operator {op}, got {}",
                self.replication[op],
                weights.len()
            ));
        }
        self.keyby_weights.insert(op, weights);
        Ok(())
    }

    /// Build an engine from an optimized [`ExecutionPlan`], charging the
    /// plan's NUMA fetch costs against `machine`'s latency matrix.
    pub fn with_plan(
        app: AppRuntime,
        plan: &ExecutionPlan,
        machine: &Machine,
        mut config: EngineConfig,
    ) -> Result<Engine, String> {
        config.numa_penalty = Some(NumaPenalty {
            machine: machine.clone(),
            replica_socket: plan_replica_sockets(&app.topology, plan),
            scale: 1.0,
        });
        Engine::new(app, plan.replication.clone(), config)
    }

    /// Virtual socket of every global replica index, when the engine was
    /// built from a plan ([`Engine::with_plan`]) or given an explicit
    /// [`NumaPenalty`].
    pub fn replica_sockets(&self) -> Option<&[SocketId]> {
        self.config
            .numa_penalty
            .as_ref()
            .map(|p| p.replica_socket.as_slice())
    }

    /// Total replica threads this engine will spawn.
    pub fn total_replicas(&self) -> usize {
        self.replication.iter().sum()
    }

    /// Run the wired topology until `limit` is reached, then drain every
    /// in-flight tuple and report. This is the single execution surface:
    /// [`Engine::run_for`] and [`Engine::run_until_events`] are thin
    /// wrappers over the two [`RunLimit`] variants.
    ///
    /// # Example
    ///
    /// Build a tiny spout → bolt → sink app, pick the queue fabric, fusion
    /// and scheduler through the config builder, and run to exhaustion:
    ///
    /// ```
    /// use brisk_dag::{CostProfile, TopologyBuilder, DEFAULT_STREAM};
    /// use brisk_runtime::{
    ///     AppRuntime, Collector, DynBolt, DynSpout, Engine, EngineConfig, QueueKind, RunLimit,
    ///     Scheduler, SpoutStatus, TupleView,
    /// };
    /// use std::time::Duration;
    ///
    /// struct Nums(u64);
    /// impl DynSpout for Nums {
    ///     fn next(&mut self, c: &mut Collector) -> SpoutStatus {
    ///         if self.0 == 0 {
    ///             return SpoutStatus::Exhausted;
    ///         }
    ///         self.0 -= 1;
    ///         let now = c.now_ns();
    ///         c.send_default(self.0, now, self.0);
    ///         SpoutStatus::Emitted(1)
    ///     }
    /// }
    /// struct Relay;
    /// impl DynBolt for Relay {
    ///     fn execute(&mut self, t: &TupleView<'_>, c: &mut Collector) {
    ///         let v = *t.value::<u64>().expect("u64 payloads");
    ///         c.send_default(v, t.event_ns, t.key);
    ///     }
    /// }
    /// struct Discard;
    /// impl DynBolt for Discard {
    ///     fn execute(&mut self, _t: &TupleView<'_>, _c: &mut Collector) {}
    /// }
    ///
    /// let mut b = TopologyBuilder::new("quick");
    /// let s = b.add_spout("nums", CostProfile::trivial());
    /// let x = b.add_bolt("relay", CostProfile::trivial());
    /// let k = b.add_sink("sink", CostProfile::trivial());
    /// b.connect_shuffle(s, x);
    /// b.connect_shuffle(x, k);
    /// let topology = b.build().unwrap();
    /// let (s, x, k) = (
    ///     topology.find("nums").unwrap(),
    ///     topology.find("relay").unwrap(),
    ///     topology.find("sink").unwrap(),
    /// );
    /// let app = AppRuntime::new(topology)
    ///     .spout(s, |_| Nums(200))
    ///     .bolt(x, |_| Relay)
    ///     .sink(k, |_| Discard);
    ///
    /// let config = EngineConfig::builder()
    ///     .queue_kind(QueueKind::Spsc)
    ///     .fusion(true)
    ///     .scheduler(Scheduler::CorePool { workers: 2 })
    ///     .build();
    /// let engine = Engine::new(app, vec![1, 1, 1], config).unwrap();
    /// let report = engine.run(RunLimit::Events {
    ///     events: 200,
    ///     timeout: Duration::from_secs(60),
    /// });
    /// assert_eq!(report.sink_events, 200);
    /// assert_eq!(report.operator(1).processed, 200);
    /// ```
    ///
    /// Plan-driven runs work the same way: build via [`Engine::with_plan`]
    /// (which charges the plan's NUMA fetch costs) and call
    /// `run(...)` / [`Engine::run_until_events`] on the result.
    pub fn run(&self, limit: RunLimit) -> RunReport {
        self.start(limit).join()
    }

    /// Run until `deadline` elapses, then drain and report
    /// (`RunLimit::Duration` convenience).
    pub fn run_for(&self, deadline: Duration) -> RunReport {
        self.run(RunLimit::Duration(deadline))
    }

    /// Run until the sinks have received at least `events` tuples (or
    /// `timeout` elapses), then drain and report
    /// (`RunLimit::Events` convenience). Deterministic-ish runs for tests.
    pub fn run_until_events(&self, events: u64, timeout: Duration) -> RunReport {
        self.run(RunLimit::Events { events, timeout })
    }

    /// Wire and spawn the topology, returning a live [`EngineHandle`]
    /// without blocking on the run limit. The handle exposes live
    /// per-replica rates ([`EngineHandle::rates`]) and the migration pause
    /// ([`EngineHandle::request_migration`]);
    /// [`EngineHandle::join`] drives the limit and reports — `run(limit)`
    /// is exactly `start(limit).join()`.
    pub fn start(&self, condition: RunLimit) -> EngineHandle {
        let topology = &self.app.topology;
        let n_ops = topology.operator_count();
        let replica_base: Vec<usize> = {
            let mut base = vec![0usize; n_ops];
            let mut acc = 0;
            for (i, b) in base.iter_mut().enumerate() {
                *b = acc;
                acc += self.replication[i];
            }
            base
        };
        let total_replicas: usize = self.replication.iter().sum();

        // Operator-chain fusion: 1:1 replica-paired collocated chains
        // (single-replica chains, Forward edges, aligned KeyBy) collapse
        // into their host executors; fused edges get no queues at all.
        let fusion = if self.config.fusion {
            FusionPlan::compute(topology, &self.replication, self.replica_sockets())
        } else {
            FusionPlan::disabled(topology)
        };
        let spawned_replicas = fusion.spawned_executors(&self.replication);
        // Scheduler selection: `Some(n)` means the core pool drives every
        // task on `n` workers; `None` keeps one OS thread per replica.
        let pool_workers = self.config.scheduler.pool_workers(spawned_replicas);
        // Oversubscription-aware wait ladder: when runtime threads
        // outnumber hardware cores, spinning burns the timeslices the
        // counterpart threads need, so waiters park almost immediately.
        // The pool never oversubscribes by construction — its thread count
        // is the worker count, not the replica count.
        let backoff_profile = BackoffProfile::detect(
            pool_workers.unwrap_or(spawned_replicas),
            self.config.poll_backoff,
        );
        let wake_hub = pool_workers.map(|_| Arc::new(WakeHub::new(total_replicas)));

        // Slab arenas for the zero-copy batch fabric: one pool per
        // (operator, replica) producer, all reporting into one engine-wide
        // stats sink so teardown can assert every slab came home.
        let slab_stats = Arc::new(SlabStats::default());
        let pools: Vec<Vec<Arc<SlabPool>>> = self
            .replication
            .iter()
            .map(|&r| {
                (0..r)
                    .map(|_| SlabPool::new(Arc::clone(&slab_stats)))
                    .collect()
            })
            .collect();

        // Queues per unfused logical edge. Output edges are grouped per
        // (operator, local replica) because fused-away operators emit from
        // their host's thread rather than a replica of their own.
        let mut inputs: Vec<Vec<InputPort>> = (0..total_replicas).map(|_| Vec::new()).collect();
        let mut op_outputs: Vec<Vec<Vec<OutputEdge>>> = self
            .replication
            .iter()
            .map(|&r| (0..r).map(|_| Vec::new()).collect())
            .collect();
        for (lei, edge) in topology.edges().iter().enumerate() {
            if fusion.is_edge_fused(lei) {
                continue; // delivered inline by the host executor
            }
            let np = self.replication[edge.from.0];
            let nc = match edge.partitioning {
                Partitioning::Global => 1,
                _ => self.replication[edge.to.0],
            };
            let producer_bytes = topology.operator(edge.from).cost.output_bytes;
            if matches!(edge.partitioning, Partitioning::Global) && np > 1 {
                // Funnel: several producer replicas feed the one consumer
                // replica. Sharing an SpscQueue between producers would be
                // a data race, so the wiring upgrades to the fan-in (MPSC)
                // fabric and the consumer polls a single port.
                let kind = self.config.queue_kind.for_producers(np);
                let q = Arc::new(ReplicaQueue::with_profile(
                    kind,
                    self.config.queue_capacity,
                    backoff_profile,
                ));
                inputs[replica_base[edge.to.0]].push(InputPort {
                    queue: Arc::clone(&q),
                    producer_bytes,
                });
                for (r, outputs) in op_outputs[edge.from.0].iter_mut().enumerate().take(np) {
                    outputs.push(OutputEdge::new(
                        lei,
                        edge.stream.clone(),
                        Partitioner::new(edge.partitioning, 1),
                        vec![Arc::clone(&q)],
                        vec![replica_base[edge.to.0]],
                        &pools[edge.from.0][r],
                    ));
                }
                continue;
            }
            if matches!(edge.partitioning, Partitioning::Forward) && np == nc {
                // Local forwarding at equal counts pins producer replica r
                // to consumer replica r, so only that one queue exists per
                // producer. (At unequal counts the pairing is meaningless
                // and the edge falls through to the general wiring below,
                // where the Forward partitioner degrades to Shuffle — the
                // model's even-spread, work-conserving treatment is then
                // exact.)
                for (r, outputs) in op_outputs[edge.from.0].iter_mut().enumerate().take(np) {
                    let cg = replica_base[edge.to.0] + r;
                    let q = Arc::new(ReplicaQueue::with_profile(
                        self.config.queue_kind,
                        self.config.queue_capacity,
                        backoff_profile,
                    ));
                    inputs[cg].push(InputPort {
                        queue: Arc::clone(&q),
                        producer_bytes,
                    });
                    // One queue: the router degenerates to "target 0".
                    outputs.push(OutputEdge::new(
                        lei,
                        edge.stream.clone(),
                        Partitioner::new(edge.partitioning, 1),
                        vec![q],
                        vec![cg],
                        &pools[edge.from.0][r],
                    ));
                }
                continue;
            }
            for (r, outputs) in op_outputs[edge.from.0].iter_mut().enumerate().take(np) {
                let mut queues = Vec::with_capacity(nc);
                let mut consumers = Vec::with_capacity(nc);
                for c in 0..nc {
                    let cg = replica_base[edge.to.0] + c;
                    // One producer replica, one consumer replica: the SPSC
                    // fabric's contract holds by construction.
                    let q = Arc::new(ReplicaQueue::with_profile(
                        self.config.queue_kind,
                        self.config.queue_capacity,
                        backoff_profile,
                    ));
                    inputs[cg].push(InputPort {
                        queue: Arc::clone(&q),
                        producer_bytes,
                    });
                    queues.push(q);
                    consumers.push(cg);
                }
                // Skew-aware KeyBy re-weighting: the controller's measured
                // per-replica load lands here as a weighted slot table.
                let mut partitioner = Partitioner::new(edge.partitioning, nc);
                if let Some(w) = self.keyby_weights.get(&edge.to.0) {
                    partitioner = partitioner.with_weights(w);
                }
                outputs.push(OutputEdge::new(
                    lei,
                    edge.stream.clone(),
                    partitioner,
                    queues,
                    consumers,
                    &pools[edge.from.0][r],
                ));
            }
        }

        // Shared run state. `live_replicas` counts tasks still running:
        // it lets the driver stop waiting early when finite (sized) spouts
        // exhaust and the whole pipeline drains before the event target or
        // deadline is reached, and tells pool workers when to exit.
        // Fused-away operators have no task of their own.
        let clock = Arc::new(EngineClock::new());
        let shared = Arc::new(EngineShared {
            app: Arc::clone(&self.app),
            config: self.config.clone(),
            backoff_profile,
            clock: Arc::clone(&clock),
            stop: AtomicBool::new(false),
            op_done: (0..n_ops).map(|_| AtomicBool::new(false)).collect(),
            op_live: self
                .replication
                .iter()
                .map(|&r| AtomicUsize::new(r))
                .collect(),
            processed: (0..n_ops).map(|_| AtomicU64::new(0)).collect(),
            emitted: (0..n_ops).map(|_| AtomicU64::new(0)).collect(),
            queue_full: (0..n_ops).map(|_| AtomicU64::new(0)).collect(),
            queue_pushes: (0..n_ops).map(|_| AtomicU64::new(0)).collect(),
            live_replicas: AtomicUsize::new(spawned_replicas),
            sink_progress: Arc::new(SinkProgress {
                events: AtomicU64::new(0),
            }),
            restarts: (0..n_ops).map(|_| AtomicU64::new(0)).collect(),
            quarantined: (0..n_ops).map(|_| AtomicU64::new(0)).collect(),
            op_faults: (0..n_ops).map(|_| AtomicU64::new(0)).collect(),
            faults: Mutex::new(Vec::new()),
            stalls: Mutex::new(Vec::new()),
            progress: (0..total_replicas).map(|_| AtomicU64::new(0)).collect(),
            replica_done: (0..total_replicas)
                .map(|_| AtomicBool::new(false))
                .collect(),
            harvest: AtomicBool::new(self.capture_state_on_stop),
            harvested: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            preload: {
                let slots: Vec<Mutex<Option<Vec<StateEntry>>>> =
                    (0..total_replicas).map(|_| Mutex::new(None)).collect();
                let mut covered = vec![false; n_ops];
                for (op, replica, entries) in std::mem::take(&mut *self.preload.lock()) {
                    covered[op] = true;
                    *slots[replica_base[op] + replica].lock() = Some(entries);
                }
                // A migrated operator's hand-off must reach EVERY replica:
                // one that received no entries still gets an (empty)
                // install so it learns the migration happened — a
                // budget-sharded spout would otherwise re-derive a fresh
                // factory share next to peers carrying the real positions,
                // duplicating input.
                for (op, &covered) in covered.iter().enumerate() {
                    if !covered {
                        continue;
                    }
                    for r in 0..self.replication[op] {
                        let slot = &slots[replica_base[op] + r];
                        let mut guard = slot.lock();
                        if guard.is_none() {
                            *guard = Some(Vec::new());
                        }
                    }
                }
                slots
            },
            replica_tuples: (0..total_replicas).map(|_| AtomicU64::new(0)).collect(),
            replica_busy_ns: (0..total_replicas).map(|_| AtomicU64::new(0)).collect(),
            replica_base: replica_base.clone(),
            replica_map: self
                .replication
                .iter()
                .enumerate()
                .flat_map(|(op, &r)| (0..r).map(move |i| (op, i)))
                .collect(),
        });

        // Build fused targets bottom-up (reverse topological order), so a
        // chain's tail exists before the operator that hosts it. Fusion
        // pairs replicas index-wise (a fused edge requires equal replica
        // counts), so each fused-away operator gets one instance *per
        // replica pair*, each with its own collector; replica r's subtree
        // then attaches to the chain host's replica-r collector.
        let mut pending_fused: Vec<Vec<Vec<FusedTarget>>> = self
            .replication
            .iter()
            .map(|&r| (0..r).map(|_| Vec::new()).collect())
            .collect();
        for &op in topology.topological_order().iter().rev() {
            if !fusion.is_fused_away(op) {
                continue;
            }
            let spec = topology.operator(op);
            let streams: Vec<String> = topology
                .edges()
                .iter()
                .enumerate()
                .filter(|&(lei, e)| e.to == op && fusion.is_edge_fused(lei))
                .map(|(_, e)| e.stream.clone())
                .collect();
            let host = fusion.direct_host_of(op);
            for r in 0..self.replication[op.0] {
                let ctx = BoltContext {
                    replica: r,
                    replicas: self.replication[op.0],
                };
                let mut bolt = match self.app.runtime(op) {
                    OperatorRuntime::Bolt(f) | OperatorRuntime::Sink(f) => f(ctx),
                    OperatorRuntime::Spout(_) => unreachable!("spouts are never fused away"),
                };
                if let Some(entries) = shared.take_preload(replica_base[op.0] + r) {
                    bolt.install_state(entries);
                }
                let mut collector = Collector::new(
                    replica_base[op.0] + r,
                    self.config.jumbo_size,
                    std::mem::take(&mut op_outputs[op.0][r]),
                    Arc::clone(&clock),
                )
                .with_fused(std::mem::take(&mut pending_fused[op.0][r]));
                if let Some(hub) = &wake_hub {
                    collector = collector.with_wake_hub(Arc::clone(hub));
                }
                let sink = (spec.kind == OperatorKind::Sink)
                    .then(|| FusedSinkState::new(Arc::clone(&shared.sink_progress)));
                pending_fused[host.0][r].push(FusedTarget {
                    op_index: op.0,
                    streams: streams.clone(),
                    bolt,
                    collector,
                    processed: 0,
                    sink,
                    ctx,
                    shared: Arc::clone(&shared),
                    host_op: host.0,
                    attempts: 0,
                    dead: false,
                });
            }
        }

        // Seed every spawned replica as a task, in reverse topological
        // order so consumers come up (or sit early in the pool's run
        // queues) before producers start pushing — not required for
        // correctness, helps startup latency.
        let spawn_order: Vec<brisk_dag::OperatorId> =
            topology.topological_order().iter().rev().copied().collect();
        let mut inputs_by_replica: Vec<Option<Vec<InputPort>>> =
            inputs.into_iter().map(Some).collect();
        let mut seeds: Vec<TaskSeed> = Vec::with_capacity(spawned_replicas);
        for op in spawn_order {
            if fusion.is_fused_away(op) {
                continue; // runs inline inside its chain host
            }
            let spec = topology.operator(op);
            for (r, outputs) in op_outputs[op.0].iter_mut().enumerate() {
                let global = replica_base[op.0] + r;
                // Replica r hosts the replica-r instances of its fused
                // subtree (index-aligned pairing).
                let mut collector = Collector::new(
                    global,
                    self.config.jumbo_size,
                    std::mem::take(outputs),
                    Arc::clone(&clock),
                )
                .with_fused(std::mem::take(&mut pending_fused[op.0][r]));
                if let Some(hub) = &wake_hub {
                    collector = collector.with_wake_hub(Arc::clone(hub));
                }
                seeds.push(TaskSeed {
                    global,
                    op_index: op.0,
                    kind: spec.kind,
                    ctx: BoltContext {
                        replica: r,
                        replicas: self.replication[op.0],
                    },
                    collector,
                    ports: inputs_by_replica[global].take().expect("inputs once"),
                    producer_ops: topology.producers_of(op).iter().map(|p| p.0).collect(),
                    name: format!("{}#{r}", spec.name),
                });
            }
        }

        // Arm the stall watchdog before the seeds move into their
        // executors: it observes bolts/sinks only (spouts have no input to
        // stall on) through shared progress counters and live queue handles.
        let watchdog = self.config.stall_deadline.map(|deadline| {
            let entries: Vec<WatchEntry> = seeds
                .iter()
                .filter(|s| s.kind != OperatorKind::Spout)
                .map(|s| WatchEntry {
                    global: s.global,
                    op_index: s.op_index,
                    replica: s.ctx.replica,
                    inputs: s.ports.iter().map(|p| Arc::clone(&p.queue)).collect(),
                    outputs: s.collector.queue_handles(),
                })
                .collect();
            supervise::spawn_watchdog(entries, Arc::clone(&shared), deadline)
        });

        let started = Instant::now();
        let running = match (&wake_hub, pool_workers) {
            (Some(hub), Some(workers)) => Running::Pool(scheduler::spawn_pool(
                seeds,
                Arc::clone(hub),
                Arc::clone(&shared),
                workers,
            )),
            _ => Running::Threads(
                seeds
                    .into_iter()
                    .map(|seed| {
                        let shared = Arc::clone(&shared);
                        let (op_index, replica) = (seed.op_index, seed.ctx.replica);
                        // Pre-captured for the emergency backstop: if the
                        // supervised body itself unwinds (a bug outside any
                        // guarded operator call), the thread still retires
                        // its accounting so the run can wind down.
                        let global = seed.global;
                        let hosted = seed.collector.hosted_ops();
                        let input_queues: Vec<Arc<ReplicaQueue<JumboTuple>>> =
                            seed.ports.iter().map(|p| Arc::clone(&p.queue)).collect();
                        let handle = std::thread::Builder::new()
                            .name(seed.name.clone())
                            .spawn(move || {
                                match catch_unwind(AssertUnwindSafe(|| run_replica(seed, &shared)))
                                {
                                    Ok(local) => local,
                                    Err(payload) => {
                                        emergency_retire(
                                            &shared,
                                            op_index,
                                            replica,
                                            global,
                                            &hosted,
                                            &input_queues,
                                            panic_message(payload.as_ref()),
                                        );
                                        None
                                    }
                                }
                            })
                            .expect("thread spawn");
                        (op_index, replica, handle)
                    })
                    .collect(),
            ),
        };
        EngineHandle {
            shared,
            running,
            watchdog,
            pools,
            slab_stats,
            limit: condition,
            started,
        }
    }
}

/// The two executor shapes a run can be driven by, held by the
/// [`EngineHandle`] until join.
enum Running {
    /// Per-thread handles tagged `(op_index, replica)` so a join
    /// error can still be attributed in the fault report.
    Threads(Vec<(usize, usize, std::thread::JoinHandle<Option<SinkLocal>>)>),
    Pool(PoolRun),
}

/// State harvested from one engine at a migration pause: one
/// `(operator index, replica index, entries)` record per replica whose
/// operator returned `Some` from `extract_state`.
pub type HarvestedState = Vec<(usize, usize, Vec<StateEntry>)>;

/// A live, running engine: the handle [`Engine::start`] returns before the
/// run limit is reached.
///
/// The handle is the elastic runtime's control surface — it exposes live
/// per-replica rates ([`EngineHandle::rates`]), sink progress, and the
/// tuple-safe migration pause: [`EngineHandle::request_migration`] flips
/// the engine into harvest mode and stops it; spouts exit at the next
/// emission boundary, bolts drain every in-flight tuple (a bolt only exits
/// once all its producers retired *and* its input queues are empty), and
/// each drained replica hands its state out through `extract_state`
/// instead of running `finish`. [`EngineHandle::join_with_state`] then
/// returns both the report and the harvested state for re-installation
/// into a successor engine.
pub struct EngineHandle {
    shared: Arc<EngineShared>,
    running: Running,
    watchdog: Option<std::thread::JoinHandle<()>>,
    pools: Vec<Vec<Arc<SlabPool>>>,
    slab_stats: Arc<SlabStats>,
    limit: RunLimit,
    started: Instant,
}

impl EngineHandle {
    /// Live per-replica tuple rates since start, in global replica order
    /// (operator-major): spout replicas report emission, bolt/sink replicas
    /// consumption (inline fused deliveries count against the fused
    /// operator's own replica). The controller samples this to detect
    /// drift; [`RunReport::replica_rates`] is the post-run equivalent.
    pub fn rates(&self) -> Vec<ReplicaRate> {
        let secs = self.started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        self.shared
            .replica_map
            .iter()
            .zip(
                self.shared
                    .replica_tuples
                    .iter()
                    .zip(&self.shared.replica_busy_ns),
            )
            .map(|(&(op, replica), (tuples, busy))| {
                let tuples = tuples.load(Ordering::Relaxed);
                ReplicaRate {
                    op,
                    replica,
                    tuples,
                    rate: tuples as f64 / secs,
                    busy_ns: busy.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Tuples received by sink operators so far (relaxed, monotone).
    pub fn sink_events(&self) -> u64 {
        self.shared.sink_progress.events.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the engine started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Whether every replica has retired (the pipeline drained or the run
    /// was stopped). [`EngineHandle::join`] returns promptly once true.
    pub fn is_finished(&self) -> bool {
        self.shared.live_replicas.load(Ordering::Relaxed) == 0
    }

    /// Stop the run before its limit: spouts exit at the next emission
    /// boundary and the pipeline drains — exactly the limit-reached path.
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Begin a migration pause: harvest mode on, then stop. Every replica
    /// drains its inputs (nothing in flight is dropped), hands its state
    /// out via `extract_state` instead of running `finish`, and retires.
    /// Collect the state with [`EngineHandle::join_with_state`].
    pub fn request_migration(&self) {
        self.shared.harvest.store(true, Ordering::SeqCst);
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Drive the run limit, then drain, join every executor and report.
    pub fn join(self) -> RunReport {
        self.join_inner().0
    }

    /// [`EngineHandle::join`] plus the state harvested at the stop (empty
    /// unless harvest mode was on — via [`Engine::capture_state_on_stop`]
    /// or [`EngineHandle::request_migration`]).
    pub fn join_with_state(self) -> (RunReport, HarvestedState) {
        self.join_inner()
    }

    fn join_inner(self) -> (RunReport, HarvestedState) {
        let EngineHandle {
            shared,
            running,
            watchdog,
            pools,
            slab_stats,
            limit,
            started,
        } = self;
        // Drive the stop condition; an external request_stop /
        // request_migration short-circuits either limit.
        match limit {
            RunLimit::Duration(d) => {
                let deadline = started + d;
                loop {
                    if shared.stop.load(Ordering::Relaxed)
                        || shared.live_replicas.load(Ordering::Relaxed) == 0
                    {
                        break; // stopped early, or finite spouts drained
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    std::thread::sleep((deadline - now).min(Duration::from_millis(1)));
                }
            }
            RunLimit::Events { events, timeout } => {
                let deadline = started + timeout;
                while shared.sink_progress.events.load(Ordering::Relaxed) < events
                    && shared.live_replicas.load(Ordering::Relaxed) > 0
                    && Instant::now() < deadline
                    && !shared.stop.load(Ordering::Relaxed)
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        shared.stop.store(true, Ordering::SeqCst);
        // Merge each sink task's local metrics after join — the run itself
        // never serialized replicas on a shared histogram.
        let mut sink_events = 0u64;
        let mut latency_ns = Histogram::new();
        match running {
            Running::Threads(handles) => {
                for (op_index, replica, h) in handles {
                    match h.join() {
                        Ok(Some(local)) => {
                            sink_events += local.events;
                            latency_ns.merge(&local.latency);
                        }
                        Ok(None) => {}
                        // The backstop inside the thread body already
                        // retired the replica's accounting before
                        // re-raising; a join error past it means even the
                        // backstop unwound. Record, never re-panic.
                        Err(payload) => shared.record_fault(
                            op_index,
                            replica,
                            FaultKind::ExecutorLoss,
                            panic_message(payload.as_ref()),
                            false,
                        ),
                    }
                }
            }
            Running::Pool(run) => {
                let local = run.join(&shared);
                sink_events = local.events;
                latency_ns.merge(&local.latency);
            }
        }
        if let Some(w) = watchdog {
            let _ = w.join();
        }

        // Every queue, collector and pending batch dropped with its task,
        // so every slab checked out of an arena must be home again. Debug
        // tripwire: a nonzero count is a refcount leak in the batch fabric.
        drop(pools);
        debug_assert_eq!(
            slab_stats.outstanding(),
            0,
            "slab leak at engine teardown: {} slab(s) still outstanding",
            slab_stats.outstanding()
        );

        let elapsed = started.elapsed();
        let load_all =
            |v: &[AtomicU64]| -> Vec<u64> { v.iter().map(|c| c.load(Ordering::Relaxed)).collect() };
        #[allow(deprecated)]
        let report = RunReport {
            elapsed,
            sink_events,
            throughput: sink_events as f64 / elapsed.as_secs_f64(),
            latency_ns,
            processed: load_all(&shared.processed),
            emitted: load_all(&shared.emitted),
            queue_full_events: load_all(&shared.queue_full),
            queue_pushes: load_all(&shared.queue_pushes),
            op_restarts: load_all(&shared.restarts),
            op_quarantined: load_all(&shared.quarantined),
            op_fault_counts: load_all(&shared.op_faults),
            slab_allocs: slab_stats.allocated(),
            slab_recycled: slab_stats.recycled(),
            faults: std::mem::take(&mut *shared.faults.lock()),
            stalls: std::mem::take(&mut *shared.stalls.lock()),
            replica_tuples: load_all(&shared.replica_tuples),
            replica_busy: load_all(&shared.replica_busy_ns),
            replica_map: shared.replica_map.clone(),
        };
        let mut harvested = std::mem::take(&mut *shared.harvested.lock());
        // A spout that exhausted its budget before the pause request flipped
        // the harvest flag exited without harvesting; its parked position is
        // still part of the migration hand-off (without it the successor's
        // fresh factories would re-derive full budget shares and duplicate
        // input). Retired state is dropped on a plain (non-migrating) stop.
        if shared.harvesting() {
            harvested.append(&mut *shared.retired.lock());
        }
        // Deterministic order for redistribution and tests: push order is
        // whatever thread interleaving the drain produced.
        harvested.sort_by_key(|h| (h.0, h.1));
        (report, harvested)
    }
}

/// Expand a plan's vertex-granular placement into the engine's per-replica
/// socket assignment. Global replica indices are operator-major (all
/// replicas of operator 0, then operator 1, …), and each — possibly
/// compressed — execution vertex covers `multiplicity` consecutive replicas
/// of its operator, in `vertices_of` order. Vertices an optimizer left
/// unplaced default to socket 0.
pub fn plan_replica_sockets(topology: &LogicalTopology, plan: &ExecutionPlan) -> Vec<SocketId> {
    let graph = ExecutionGraph::new(topology, &plan.replication, plan.compress_ratio);
    let mut replica_socket = vec![SocketId(0); plan.total_replicas()];
    let mut base = 0usize;
    for (op, _) in topology.operators() {
        for &v in graph.vertices_of(op) {
            let socket = plan.placement.socket_of(v).unwrap_or(SocketId(0));
            for r in 0..graph.vertex(v).multiplicity {
                replica_socket[base + r] = socket;
            }
            base += graph.vertex(v).multiplicity;
        }
    }
    replica_socket
}

/// Stop condition for [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLimit {
    /// Run for a fixed wall-clock duration, then drain and report.
    Duration(Duration),
    /// Run until the sinks have received at least `events` tuples, the
    /// pipeline drains (finite spouts), or `timeout` elapses — whichever
    /// comes first.
    Events {
        /// Sink-event target.
        events: u64,
        /// Wall-clock safety net.
        timeout: Duration,
    },
}

/// Engine state shared by every task of one run, whichever scheduler
/// drives them.
pub(crate) struct EngineShared {
    pub(crate) app: Arc<AppRuntime>,
    pub(crate) config: EngineConfig,
    pub(crate) backoff_profile: BackoffProfile,
    pub(crate) clock: Arc<EngineClock>,
    pub(crate) stop: AtomicBool,
    /// Per-operator "every replica retired" latches (consumers drain and
    /// exit once all their producers latch).
    pub(crate) op_done: Vec<AtomicBool>,
    /// Per-operator live instance counts (replicas + fused instances).
    pub(crate) op_live: Vec<AtomicUsize>,
    pub(crate) processed: Vec<AtomicU64>,
    pub(crate) emitted: Vec<AtomicU64>,
    pub(crate) queue_full: Vec<AtomicU64>,
    pub(crate) queue_pushes: Vec<AtomicU64>,
    /// Tasks still running — the driver's early-exit signal and the pool
    /// workers' shutdown condition.
    pub(crate) live_replicas: AtomicUsize,
    pub(crate) sink_progress: Arc<SinkProgress>,
    /// Per-operator replica restarts granted by the restart policy.
    pub(crate) restarts: Vec<AtomicU64>,
    /// Per-operator quarantined (dead-lettered) tuple counts.
    pub(crate) quarantined: Vec<AtomicU64>,
    /// Per-operator fault counts (mirrors `faults` for cheap per-op reads).
    pub(crate) op_faults: Vec<AtomicU64>,
    /// Structured fault records, in occurrence order.
    pub(crate) faults: Mutex<Vec<ReplicaFault>>,
    /// Watchdog stall observations.
    pub(crate) stalls: Mutex<Vec<StallEvent>>,
    /// Per-global-replica progress heartbeat sampled by the watchdog:
    /// bolts/sinks bump theirs once per consumed jumbo (and per backoff
    /// chunk while awaiting restart). Spouts never bump — the watchdog
    /// does not observe them.
    pub(crate) progress: Vec<AtomicU64>,
    /// Per-global-replica retirement flags so the watchdog skips finished
    /// replicas.
    pub(crate) replica_done: Vec<AtomicBool>,
    /// Migration-pause mode: when set at stop time, draining replicas hand
    /// their state out via `extract_state` instead of running `finish`.
    pub(crate) harvest: AtomicBool,
    /// State harvested at a migration pause: `(op, replica, entries)`.
    pub(crate) harvested: Mutex<Vec<(usize, usize, Vec<StateEntry>)>>,
    /// Final state of spouts that retired *before* any harvest was
    /// requested (a budget-sharded source drains long before a slow
    /// downstream finishes). Folded into `harvested` when the stop turns
    /// out to be a migration pause, discarded otherwise — without it, a
    /// migration racing spout exhaustion would lose the "budget spent"
    /// position and the successor's spouts would re-derive fresh shares.
    pub(crate) retired: Mutex<Vec<(usize, usize, Vec<StateEntry>)>>,
    /// Per-global-replica migrated-state install slots, taken exactly once
    /// at first instantiation (a restart re-instances stateless, as ever).
    pub(crate) preload: Vec<Mutex<Option<Vec<StateEntry>>>>,
    /// Per-global-replica tuple counters behind [`EngineHandle::rates`]:
    /// spout replicas count emissions, bolt/sink replicas consumed tuples
    /// (queued and inline-fused alike).
    pub(crate) replica_tuples: Vec<AtomicU64>,
    /// Nanoseconds each global replica spent inside `consume` (bolts/sinks
    /// only) — the online service-time signal cost recalibration reads.
    pub(crate) replica_busy_ns: Vec<AtomicU64>,
    /// First global replica index of each operator.
    pub(crate) replica_base: Vec<usize>,
    /// `(op, replica)` of every global replica index.
    pub(crate) replica_map: Vec<(usize, usize)>,
}

impl EngineShared {
    /// Operator name for fault attribution (`"<executor>"` when the fault
    /// is not attributable to an operator).
    pub(crate) fn op_name(&self, op_index: usize) -> String {
        if op_index == usize::MAX {
            return "<executor>".to_string();
        }
        self.app
            .topology
            .operator(OperatorId(op_index))
            .name
            .clone()
    }

    /// Record a structured fault (and charge the per-operator counter when
    /// attributable).
    pub(crate) fn record_fault(
        &self,
        op_index: usize,
        replica: usize,
        kind: FaultKind,
        message: String,
        restarted: bool,
    ) {
        if op_index != usize::MAX {
            self.op_faults[op_index].fetch_add(1, Ordering::Relaxed);
        }
        self.faults.lock().push(ReplicaFault {
            op_index,
            op_name: self.op_name(op_index),
            replica,
            kind,
            message,
            restarted,
        });
    }

    /// Fresh bolt/sink instance from the registered factory — the restart
    /// path's re-instantiation (used when `recover()` declines the state
    /// handoff).
    pub(crate) fn new_bolt_instance(&self, op_index: usize, ctx: BoltContext) -> Box<dyn DynBolt> {
        match self.app.runtime(OperatorId(op_index)) {
            OperatorRuntime::Bolt(f) | OperatorRuntime::Sink(f) => f(ctx),
            OperatorRuntime::Spout(_) => unreachable!("spouts restart through their own path"),
        }
    }

    /// Whether the run is stopping into a migration pause (state harvest)
    /// rather than a final shutdown (`finish` hooks).
    pub(crate) fn harvesting(&self) -> bool {
        self.harvest.load(Ordering::Acquire)
    }

    /// Claim the migrated state staged for a global replica, once.
    pub(crate) fn take_preload(&self, global: usize) -> Option<Vec<StateEntry>> {
        self.preload[global].lock().take()
    }

    /// Record one replica's extracted state (no-op for `None`: the
    /// operator declared itself stateless).
    pub(crate) fn harvest_state(
        &self,
        op_index: usize,
        replica: usize,
        entries: Option<Vec<StateEntry>>,
    ) {
        if let Some(entries) = entries {
            self.harvested.lock().push((op_index, replica, entries));
        }
    }

    /// Park the final state of a spout that retired before any harvest was
    /// requested (see the `retired` field).
    pub(crate) fn park_retired(
        &self,
        op_index: usize,
        replica: usize,
        entries: Option<Vec<StateEntry>>,
    ) {
        if let Some(entries) = entries {
            self.retired.lock().push((op_index, replica, entries));
        }
    }

    /// Fresh spout instance from the registered factory (restart path).
    pub(crate) fn new_spout_instance(
        &self,
        op_index: usize,
        ctx: BoltContext,
    ) -> Box<dyn DynSpout> {
        match self.app.runtime(OperatorId(op_index)) {
            OperatorRuntime::Spout(f) => f(ctx),
            _ => unreachable!("kind checked by validate()"),
        }
    }
}

/// Everything one spawned replica needs to run, produced by the engine's
/// wiring phase and consumed either by a dedicated thread
/// ([`Scheduler::ThreadPerReplica`]) or as a pool task
/// ([`Scheduler::CorePool`]).
pub(crate) struct TaskSeed {
    /// Global replica index — doubles as the pool's task id.
    pub(crate) global: usize,
    pub(crate) op_index: usize,
    pub(crate) kind: OperatorKind,
    pub(crate) ctx: BoltContext,
    pub(crate) collector: Collector,
    pub(crate) ports: Vec<InputPort>,
    pub(crate) producer_ops: Vec<usize>,
    /// Thread name under thread-per-replica execution.
    pub(crate) name: String,
}

fn run_replica(mut seed: TaskSeed, shared: &EngineShared) -> Option<SinkLocal> {
    let sink_local = match seed.kind {
        OperatorKind::Spout => {
            run_spout_supervised(&mut seed, shared);
            None
        }
        OperatorKind::Bolt | OperatorKind::Sink => run_bolt_supervised(&mut seed, shared),
    };
    // Let fused chain operators emit their final results, then flush every
    // buffer in the chain (depth-first, so tail emissions are shipped too).
    seed.collector.finish_fused();
    seed.collector.flush_all();
    merge_and_retire(&mut seed.collector, seed.op_index, sink_local, shared)
}

/// Force-retire a replica whose executor was lost (a panic that escaped
/// every operator guard, or a dead pool worker): record the fault, close
/// its *input* queues so blocked producers fail fast instead of parking
/// forever, and release its — and its fused subtree's — `op_live` latches
/// so downstream consumers drain and exit. Output queues are left open for
/// still-live consumers.
pub(crate) fn emergency_retire(
    shared: &EngineShared,
    op_index: usize,
    replica: usize,
    global: usize,
    hosted_ops: &[usize],
    input_queues: &[Arc<ReplicaQueue<JumboTuple>>],
    message: String,
) {
    shared.record_fault(op_index, replica, FaultKind::ExecutorLoss, message, false);
    for q in input_queues {
        q.close();
    }
    for &op in hosted_ops {
        if shared.op_live[op].fetch_sub(1, Ordering::AcqRel) == 1 {
            shared.op_done[op].store(true, Ordering::Release);
        }
    }
    if shared.op_live[op_index].fetch_sub(1, Ordering::AcqRel) == 1 {
        shared.op_done[op_index].store(true, Ordering::Release);
    }
    shared.replica_done[global].store(true, Ordering::Relaxed);
    shared.live_replicas.fetch_sub(1, Ordering::Relaxed);
}

/// Sleep a restart backoff in stop-aware chunks, bumping the replica's
/// progress heartbeat so the watchdog never flags a replica that is merely
/// waiting out its own backoff.
fn supervised_sleep(total: Duration, shared: &EngineShared, global: usize) {
    let mut remaining = total;
    while remaining > Duration::ZERO {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let chunk = remaining.min(Duration::from_millis(10));
        std::thread::sleep(chunk);
        remaining = remaining.saturating_sub(chunk);
        shared.progress[global].fetch_add(1, Ordering::Relaxed);
    }
}

/// Merge a finished task's collector-local counters (and its fused
/// subtree's) into the shared report state, then retire the task: release
/// `op_done` latches and decrement the live-task count. The collector must
/// be fully flushed. Shared by both schedulers.
pub(crate) fn merge_and_retire(
    collector: &mut Collector,
    op_index: usize,
    mut sink_local: Option<SinkLocal>,
    shared: &EngineShared,
) -> Option<SinkLocal> {
    // Collector counters stay task-local for the whole run so the hot path
    // never touches shared cache lines.
    shared.emitted[op_index].fetch_add(collector.emitted, Ordering::Relaxed);
    shared.queue_full[op_index].fetch_add(collector.stalled_flushes, Ordering::Relaxed);
    shared.queue_pushes[op_index].fetch_add(collector.flushes, Ordering::Relaxed);
    // Merge every fused operator instance's counters and sink metrics,
    // then retire it from `op_live` — a fused operator has one instance
    // per host replica, and the last host out releases its `op_done`
    // latch, exactly like real replicas do below.
    for mut target in collector.take_fused() {
        shared.processed[target.op_index].fetch_add(target.processed, Ordering::Relaxed);
        shared.emitted[target.op_index].fetch_add(target.collector.emitted, Ordering::Relaxed);
        shared.queue_full[target.op_index]
            .fetch_add(target.collector.stalled_flushes, Ordering::Relaxed);
        shared.queue_pushes[target.op_index].fetch_add(target.collector.flushes, Ordering::Relaxed);
        if let Some(state) = target.sink.take() {
            let local = sink_local.get_or_insert_with(SinkLocal::default);
            local.events += state.local.events;
            local.latency.merge(&state.local.latency);
        }
        if shared.op_live[target.op_index].fetch_sub(1, Ordering::AcqRel) == 1 {
            shared.op_done[target.op_index].store(true, Ordering::Release);
        }
    }
    // Last replica out marks the operator done, releasing consumers.
    if shared.op_live[op_index].fetch_sub(1, Ordering::AcqRel) == 1 {
        shared.op_done[op_index].store(true, Ordering::Release);
    }
    shared.replica_done[collector.replica()].store(true, Ordering::Relaxed);
    shared.live_replicas.fetch_sub(1, Ordering::Relaxed);
    sink_local
}

/// Thread-per-replica spout supervisor: run the generation loop, and on a
/// contained panic consult the restart policy — back off and re-instance
/// (or keep the instance when `recover()` opts in), or retire the replica
/// on first fault / exhausted budget.
fn run_spout_supervised(seed: &mut TaskSeed, shared: &EngineShared) {
    let op = brisk_dag::OperatorId(seed.op_index);
    let ctx = seed.ctx;
    let new_instance = || -> Box<dyn DynSpout> {
        match shared.app.runtime(op) {
            OperatorRuntime::Spout(f) => f(ctx),
            _ => unreachable!("kind checked by validate()"),
        }
    };
    let mut spout = new_instance();
    if let Some(entries) = shared.take_preload(seed.global) {
        spout.install_state(entries);
    }
    let mut attempts = 0u32;
    let mut died = false;
    loop {
        match run_spout_loop(spout.as_mut(), seed, shared) {
            Ok(()) => break,
            Err(message) => {
                attempts += 1;
                match shared.config.restart.delay_for(attempts) {
                    Some(delay) => {
                        shared.record_fault(
                            seed.op_index,
                            ctx.replica,
                            FaultKind::OperatorPanic,
                            message,
                            true,
                        );
                        shared.restarts[seed.op_index].fetch_add(1, Ordering::Relaxed);
                        supervised_sleep(delay, shared, seed.global);
                        if !spout.recover() {
                            spout = new_instance();
                        }
                    }
                    None => {
                        shared.record_fault(
                            seed.op_index,
                            ctx.replica,
                            FaultKind::OperatorPanic,
                            message,
                            false,
                        );
                        died = true;
                        break;
                    }
                }
            }
        }
    }
    // Migration pause: hand the source position to the successor engine.
    // A dead spout's position is unknown — its state stays unharvested,
    // consistent with the quarantine accounting.
    if !died {
        match catch_unwind(AssertUnwindSafe(|| spout.extract_state())) {
            Ok(entries) => {
                if shared.harvesting() {
                    shared.harvest_state(seed.op_index, ctx.replica, entries);
                } else {
                    // Not (yet) a migration: this spout exhausted its budget
                    // or the run stopped normally. Park the final position
                    // anyway — if a migration pause lands after this exit,
                    // join folds the parked state into the harvest so the
                    // successor does not re-derive a fresh budget share.
                    shared.park_retired(seed.op_index, ctx.replica, entries);
                }
            }
            Err(payload) => shared.record_fault(
                seed.op_index,
                ctx.replica,
                FaultKind::OperatorPanic,
                panic_message(payload.as_ref()),
                false,
            ),
        }
    }
}

/// One supervised stretch of the spout generation loop; returns `Err` with
/// the rendered panic payload when a `next` call unwinds.
fn run_spout_loop(
    spout: &mut dyn DynSpout,
    seed: &mut TaskSeed,
    shared: &EngineShared,
) -> Result<(), String> {
    let mut since_flush = 0u32;
    let mut backoff = Backoff::with_profile(shared.backoff_profile);
    loop {
        if shared.stop.load(Ordering::Relaxed) || seed.collector.output_closed {
            return Ok(());
        }
        let collector = &mut seed.collector;
        let status = catch_unwind(AssertUnwindSafe(|| spout.next(collector)))
            .map_err(|payload| panic_message(payload.as_ref()))?;
        match status {
            SpoutStatus::Emitted(n) => {
                shared.replica_tuples[seed.global].fetch_add(n as u64, Ordering::Relaxed);
                backoff.reset();
                since_flush += 1;
                if since_flush >= shared.config.flush_every {
                    seed.collector.flush_all();
                    since_flush = 0;
                }
            }
            SpoutStatus::Idle => {
                seed.collector.flush_all();
                since_flush = 0;
                backoff.snooze();
            }
            SpoutStatus::Exhausted => return Ok(()),
        }
    }
}

/// Jumbos drained from one port per consumer poll: enough to amortize the
/// ring's index publish, small enough to keep round-robin port fairness.
pub(crate) const POP_BATCH: usize = 4;

/// Round-robin scan state over a replica's input ports, shared by the poll
/// loop and the shutdown drain check.
pub(crate) struct PortCursor {
    n_ports: usize,
    next: usize,
}

impl PortCursor {
    pub(crate) fn new(n_ports: usize) -> PortCursor {
        PortCursor { n_ports, next: 0 }
    }

    /// Pop up to `max` jumbos from the first non-empty port at or after the
    /// cursor. Returns the port index served, advancing the cursor past it.
    pub(crate) fn poll(
        &mut self,
        ports: &[InputPort],
        out: &mut Vec<JumboTuple>,
        max: usize,
    ) -> Option<usize> {
        for off in 0..self.n_ports {
            let idx = (self.next + off) % self.n_ports;
            if ports[idx].queue.pop_n(out, max) > 0 {
                self.next = (idx + 1) % self.n_ports;
                return Some(idx);
            }
        }
        None
    }

    /// Whether every port is empty (lock-free reads; exact once the
    /// producers have finished).
    pub(crate) fn drained(&self, ports: &[InputPort]) -> bool {
        ports.iter().all(|p| p.queue.is_empty())
    }
}

/// A bolt's consume-side working state — the locals of the classic replica
/// thread loop, boxed up so a pool task can persist them across slices.
pub(crate) struct BoltState {
    pub(crate) bolt: Box<dyn DynBolt>,
    pub(crate) cursor: PortCursor,
    pub(crate) batch: Vec<JumboTuple>,
    /// Port the jumbos in `batch` were popped from — so a batch interrupted
    /// by a contained panic resumes against the right fetch-cost bookkeeping
    /// after a restart.
    pub(crate) batch_port: usize,
    /// Remainders of panic-interrupted batches — everything after the
    /// quarantined poison tuple, kept as zero-copy slices of the shared
    /// slab: replayed first after a restart, so a contained panic loses
    /// exactly the one quarantined tuple.
    pub(crate) pending: Vec<Batch>,
    pub(crate) sink_local: Option<SinkLocal>,
    pub(crate) since_flush: u32,
}

impl BoltState {
    pub(crate) fn new(bolt: Box<dyn DynBolt>, kind: OperatorKind, n_ports: usize) -> BoltState {
        BoltState {
            bolt,
            cursor: PortCursor::new(n_ports),
            batch: Vec::with_capacity(POP_BATCH),
            batch_port: 0,
            pending: Vec::new(),
            sink_local: (kind == OperatorKind::Sink).then(SinkLocal::default),
            since_flush: 0,
        }
    }
}

/// Consume the jumbos sitting in `state.batch` (popped from
/// `ports[state.batch_port]`): charge fetch costs, execute the bolt under
/// a panic guard, record sink metrics, and flush on the configured cadence.
/// The shared inner loop of both schedulers' bolt paths.
///
/// A panic inside `execute` returns `Err` with the rendered payload after
/// quarantining exactly the poison tuple: everything executed before it is
/// already counted, everything after it moves to `state.pending` for
/// replay once the supervisor restarts the operator, and the remaining
/// jumbos stay in `state.batch`.
pub(crate) fn consume_batch(
    state: &mut BoltState,
    ports: &[InputPort],
    collector: &mut Collector,
    op_index: usize,
    shared: &EngineShared,
) -> Result<(), String> {
    let producer_bytes = ports[state.batch_port].producer_bytes;
    while !state.batch.is_empty() {
        let jumbo = state.batch.remove(0);
        // Injected virtual-NUMA fetch penalty (Formula 2). The producing
        // replica is read off the jumbo header, since fan-in (MPSC) ports
        // interleave several producers.
        if let Some(p) = &shared.config.numa_penalty {
            let ns = p.fetch_ns(
                jumbo.producer,
                collector.replica(),
                producer_bytes,
                jumbo.len(),
            );
            spin_ns(ns);
        }
        if shared.config.extra_cost_ns_per_tuple > 0 {
            spin_ns(shared.config.extra_cost_ns_per_tuple * jumbo.len() as u64);
        }
        let total = jumbo.len();
        let now_ns = if state.sink_local.is_some() {
            shared.clock.now_ns()
        } else {
            0
        };
        // One guard per batch, not per tuple: catch_unwind is free on the
        // non-panic path, and the cursor pins the poison tuple on unwind.
        let batch = jumbo.batch;
        let cursor = BatchCursor::new(&batch);
        let bolt = &mut state.bolt;
        // Service-time instrumentation brackets only the consume call (the
        // injected NUMA spin above is modelled separately as `Tf`): one
        // clock pair per jumbo, amortized over the whole batch.
        let busy_start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| bolt.consume(&cursor, collector)));
        shared.replica_busy_ns[collector.replica()]
            .fetch_add(busy_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.progress[collector.replica()].fetch_add(1, Ordering::Relaxed);
        // Sink metrics are recorded post-hoc off the batch's event-time
        // lane (completed prefix only, on a fault) — one clock read per
        // batch, same resolution as before, no per-tuple bookkeeping
        // inside the hot loop.
        let record_sink = |state: &mut BoltState, upto: usize| {
            if let Some(local) = state.sink_local.as_mut() {
                for &ev in &batch.event_ns_lane()[..upto] {
                    local.latency.record(now_ns.saturating_sub(ev) as f64);
                }
                local.events += upto as u64;
                // Relaxed aggregate so `run_until_events` can poll.
                shared
                    .sink_progress
                    .events
                    .fetch_add(upto as u64, Ordering::Relaxed);
            }
        };
        match result {
            Ok(()) => {
                // Returning normally from `consume` counts the whole batch
                // as processed (the documented contract).
                record_sink(state, total);
                shared.processed[op_index].fetch_add(total as u64, Ordering::Relaxed);
                shared.replica_tuples[collector.replica()]
                    .fetch_add(total as u64, Ordering::Relaxed);
                state.since_flush += 1;
                if state.since_flush >= shared.config.flush_every {
                    collector.flush_all();
                    state.since_flush = 0;
                }
            }
            Err(payload) => {
                // `done` tuples completed and count as processed; tuple
                // `done` is the poison tuple — quarantined, never retried;
                // the tail replays after restart as a zero-copy slice of
                // the same slab (no payload clones to quarantine out of a
                // shared batch).
                let done = cursor.done().min(total);
                record_sink(state, done);
                shared.processed[op_index].fetch_add(done as u64, Ordering::Relaxed);
                shared.replica_tuples[collector.replica()]
                    .fetch_add(done as u64, Ordering::Relaxed);
                shared.quarantined[op_index].fetch_add(1, Ordering::Relaxed);
                if done + 1 < total {
                    state.pending.push(batch.slice(done + 1, total - done - 1));
                }
                return Err(panic_message(payload.as_ref()));
            }
        }
    }
    Ok(())
}

/// Replay tuples left over from a panic-interrupted jumbo (everything
/// after the quarantined poison tuple), one guarded call each — a repeat
/// offender quarantines again rather than wedging the replica.
pub(crate) fn replay_pending(
    state: &mut BoltState,
    collector: &mut Collector,
    op_index: usize,
    shared: &EngineShared,
) -> Result<(), String> {
    while let Some(front) = state.pending.first_mut() {
        // Detach one single-tuple slice off the front — a refcount bump on
        // the shared slab, never a payload clone. Replaying through
        // `consume` (not `execute`) keeps per-tuple semantics for batch
        // consumers and fault-injection wrappers alike.
        let one = front.slice(0, 1);
        if front.len() == 1 {
            state.pending.remove(0);
        } else {
            let rest = front.slice(1, front.len() - 1);
            *front = rest;
        }
        let cursor = BatchCursor::new(&one);
        let bolt = &mut state.bolt;
        let busy_start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| bolt.consume(&cursor, collector)));
        shared.replica_busy_ns[collector.replica()]
            .fetch_add(busy_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.progress[collector.replica()].fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(()) => {
                if let Some(local) = state.sink_local.as_mut() {
                    let now = shared.clock.now_ns();
                    local
                        .latency
                        .record(now.saturating_sub(one.event_ns(0)) as f64);
                    local.events += 1;
                    shared.sink_progress.events.fetch_add(1, Ordering::Relaxed);
                }
                shared.processed[op_index].fetch_add(1, Ordering::Relaxed);
                shared.replica_tuples[collector.replica()].fetch_add(1, Ordering::Relaxed);
            }
            Err(payload) => {
                shared.quarantined[op_index].fetch_add(1, Ordering::Relaxed);
                return Err(panic_message(payload.as_ref()));
            }
        }
    }
    Ok(())
}

/// Thread-per-replica bolt/sink supervisor: drive the consume loop, and on
/// a contained panic consult the restart policy. A granted restart backs
/// off, re-instances the operator (unless `recover()` keeps it) and
/// resumes against the same queues, collector and fused subtree; a denied
/// one closes the replica's *input* queues (producers fail fast; output
/// queues stay open for live consumers) and retires it through the normal
/// accounting path.
fn run_bolt_supervised(seed: &mut TaskSeed, shared: &EngineShared) -> Option<SinkLocal> {
    let ctx = seed.ctx;
    let mut state = BoltState::new(
        shared.new_bolt_instance(seed.op_index, ctx),
        seed.kind,
        seed.ports.len(),
    );
    if let Some(entries) = shared.take_preload(seed.global) {
        state.bolt.install_state(entries);
    }
    let mut attempts = 0u32;
    let mut died = false;
    loop {
        match run_bolt_loop(&mut state, seed, shared) {
            Ok(()) => break,
            Err(message) => {
                attempts += 1;
                match shared.config.restart.delay_for(attempts) {
                    Some(delay) => {
                        shared.record_fault(
                            seed.op_index,
                            ctx.replica,
                            FaultKind::OperatorPanic,
                            message,
                            true,
                        );
                        shared.restarts[seed.op_index].fetch_add(1, Ordering::Relaxed);
                        supervised_sleep(delay, shared, seed.global);
                        if !state.bolt.recover() {
                            state.bolt = shared.new_bolt_instance(seed.op_index, ctx);
                        }
                    }
                    None => {
                        shared.record_fault(
                            seed.op_index,
                            ctx.replica,
                            FaultKind::OperatorPanic,
                            message,
                            false,
                        );
                        // Fail fast upstream; never close our own outputs.
                        for p in &seed.ports {
                            p.queue.close();
                        }
                        died = true;
                        break;
                    }
                }
            }
        }
    }
    if !died {
        if shared.harvesting() {
            // Migration pause: extract state instead of finishing — finals
            // belong to the true end of stream, which only the last
            // (non-harvesting) epoch reaches.
            let bolt = &mut state.bolt;
            match catch_unwind(AssertUnwindSafe(|| bolt.extract_state())) {
                Ok(entries) => shared.harvest_state(seed.op_index, ctx.replica, entries),
                Err(payload) => shared.record_fault(
                    seed.op_index,
                    ctx.replica,
                    FaultKind::OperatorPanic,
                    panic_message(payload.as_ref()),
                    false,
                ),
            }
        } else if let Err(payload) =
            catch_unwind(AssertUnwindSafe(|| state.bolt.finish(&mut seed.collector)))
        {
            shared.record_fault(
                seed.op_index,
                ctx.replica,
                FaultKind::OperatorPanic,
                panic_message(payload.as_ref()),
                false,
            );
        }
    }
    state.sink_local
}

/// One supervised stretch of the bolt consume loop; returns `Err` with the
/// rendered panic payload when an `execute` call unwinds (the supervisor
/// decides restart vs. death).
fn run_bolt_loop(
    state: &mut BoltState,
    seed: &mut TaskSeed,
    shared: &EngineShared,
) -> Result<(), String> {
    let mut backoff = Backoff::with_profile(shared.backoff_profile);
    loop {
        // Restart housekeeping first: replay the interrupted jumbo's tail,
        // then finish any jumbos still batched from before the fault.
        replay_pending(state, &mut seed.collector, seed.op_index, shared)?;
        if !state.batch.is_empty() {
            backoff.reset();
            consume_batch(
                state,
                &seed.ports,
                &mut seed.collector,
                seed.op_index,
                shared,
            )?;
            continue;
        }
        match state.cursor.poll(&seed.ports, &mut state.batch, POP_BATCH) {
            Some(port_idx) => {
                backoff.reset();
                state.batch_port = port_idx;
                consume_batch(
                    state,
                    &seed.ports,
                    &mut seed.collector,
                    seed.op_index,
                    shared,
                )?;
            }
            None => {
                seed.collector.flush_all();
                state.since_flush = 0;
                let producers_done = seed
                    .producer_ops
                    .iter()
                    .all(|&p| shared.op_done[p].load(Ordering::Acquire));
                if producers_done {
                    if state.cursor.drained(&seed.ports) {
                        return Ok(());
                    }
                } else {
                    backoff.snooze();
                }
            }
        }
    }
}

/// Busy-wait for approximately `ns` nanoseconds.
fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    let target = Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::TupleView;
    use crate::operator::{DynBolt, DynSpout, SpoutStatus};
    use crate::tuple::Tuple;
    use brisk_dag::{CostProfile, TopologyBuilder, DEFAULT_STREAM};

    struct CountingSpout {
        next: u64,
        limit: u64,
    }
    impl DynSpout for CountingSpout {
        fn next(&mut self, c: &mut Collector) -> SpoutStatus {
            if self.next >= self.limit {
                return SpoutStatus::Exhausted;
            }
            let now = c.now_ns();
            c.send_default(self.next, now, self.next);
            self.next += 1;
            SpoutStatus::Emitted(1)
        }
    }

    struct DoublingBolt;
    impl DynBolt for DoublingBolt {
        fn execute(&mut self, t: &TupleView<'_>, c: &mut Collector) {
            let v = *t.value::<u64>().expect("u64 payload");
            c.send_default(v, t.event_ns, t.key);
            c.send_default(v, t.event_ns, t.key);
        }
    }

    struct NullSink;
    impl DynBolt for NullSink {
        fn execute(&mut self, _t: &TupleView<'_>, _c: &mut Collector) {}
    }

    fn app(limit: u64) -> AppRuntime {
        let mut b = TopologyBuilder::new("t");
        let s = b.add_spout("s", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        let t = b.build().expect("valid");
        let (s, x, k) = (
            t.find("s").expect("s"),
            t.find("x").expect("x"),
            t.find("k").expect("k"),
        );
        AppRuntime::new(t)
            .spout(s, move |_| CountingSpout { next: 0, limit })
            .bolt(x, |_| DoublingBolt)
            .sink(k, |_| NullSink)
    }

    /// Per-operator input-side counts via the supported accessor.
    fn processed(r: &RunReport) -> Vec<u64> {
        r.per_operator().iter().map(|o| o.processed).collect()
    }

    /// Per-operator output-side counts via the supported accessor.
    fn emitted(r: &RunReport) -> Vec<u64> {
        r.per_operator().iter().map(|o| o.emitted).collect()
    }

    /// Total queue crossings across all operators.
    fn total_pushes(r: &RunReport) -> u64 {
        r.per_operator().iter().map(|o| o.queue_pushes).sum()
    }

    #[test]
    fn pipeline_delivers_every_tuple_exactly_doubled() {
        let engine =
            Engine::new(app(1000), vec![1, 2, 2], EngineConfig::default()).expect("valid engine");
        let report = engine.run_until_events(2000, Duration::from_secs(20));
        assert_eq!(report.sink_events, 2000, "1000 inputs doubled");
        // Input side: spouts consume nothing, the bolt sees every sentence,
        // the sink consumes the doubled stream.
        assert_eq!(processed(&report), vec![0, 1000, 2000]);
        // Output side: spout emission and sink consumption are reported
        // separately and the doubling shows up between them.
        assert_eq!(emitted(&report), vec![1000, 2000, 0]);
        assert!(report.output_rate(0) > 0.0);
        assert!(report.input_rate(2) >= report.output_rate(0));
    }

    #[test]
    fn core_pool_delivers_exactly_like_thread_per_replica() {
        // The scheduler may change where and when tasks run — never how
        // many tuples flow. A 2-worker pool over 5 tasks must produce the
        // exact counter vectors of the threaded run above.
        let config = EngineConfig::builder()
            .scheduler(Scheduler::CorePool { workers: 2 })
            .build();
        let engine = Engine::new(app(1000), vec![1, 2, 2], config).expect("valid engine");
        let report = engine.run_until_events(2000, Duration::from_secs(60));
        assert_eq!(report.sink_events, 2000);
        assert_eq!(processed(&report), vec![0, 1000, 2000]);
        assert_eq!(emitted(&report), vec![1000, 2000, 0]);
        assert_eq!(report.latency_ns.count(), 2000, "sinks record latency");
    }

    #[test]
    fn single_worker_pool_survives_back_pressure_without_deadlock() {
        // One worker drives the whole pipeline through tiny queues: every
        // producer task hits back-pressure with nobody else to drain it.
        // Non-blocking flushes + task yield must keep the pool live (a
        // blocking push here would deadlock the lone worker forever).
        let config = EngineConfig::builder()
            .queue_capacity(2)
            .jumbo_size(8)
            .scheduler(Scheduler::CorePool { workers: 1 })
            .build();
        let engine = Engine::new(app(2000), vec![1, 2, 2], config).expect("valid engine");
        let report = engine.run_until_events(4000, Duration::from_secs(60));
        assert_eq!(report.sink_events, 4000);
        assert_eq!(processed(&report), vec![0, 2000, 4000]);
        let stalls: u64 = report
            .per_operator()
            .iter()
            .map(|o| o.queue_full_events)
            .sum();
        assert!(stalls > 0, "tiny queues must exercise the yield path");
    }

    #[test]
    fn auto_sized_pool_runs_oversubscribed_plans() {
        // workers = 0 sizes the pool to the host; 9 replicas on (possibly)
        // one core still drain to exhaustion.
        let config = EngineConfig::builder()
            .scheduler(Scheduler::CorePool { workers: 0 })
            .build();
        // Each of the 3 spout replicas feeds 600 sentences: 1800 in, 3600 out.
        let engine = Engine::new(app(600), vec![3, 3, 3], config).expect("valid engine");
        let report = engine.run_until_events(3600, Duration::from_secs(60));
        assert_eq!(report.sink_events, 3600);
        assert_eq!(processed(&report), vec![0, 1800, 3600]);
    }

    #[test]
    fn latency_is_recorded() {
        // [1,2,1] keeps real queue crossings in the pipeline (the bolt's
        // replication blocks fusion on both edges), so sink latency
        // reflects genuine queue dwell time. Fused-sink latency recording
        // is covered by `fusion_ab_is_equivalent_and_removes_every_crossing`.
        let engine =
            Engine::new(app(500), vec![1, 2, 1], EngineConfig::default()).expect("valid engine");
        let report = engine.run_until_events(1000, Duration::from_secs(20));
        assert_eq!(report.latency_ns.count(), 1000);
        assert!(report.latency_ns.percentile(99.0) > 0.0);
    }

    #[test]
    fn small_jumbo_still_correct() {
        let config = EngineConfig::builder().jumbo_size(1).build();
        let engine = Engine::new(app(300), vec![1, 1, 1], config).expect("valid engine");
        let report = engine.run_until_events(600, Duration::from_secs(20));
        assert_eq!(report.sink_events, 600);
    }

    #[test]
    fn numa_penalty_slows_remote_plans() {
        // Same app, same replication; one plan collocated, one split across
        // virtual sockets with a large latency. The remote plan must be
        // measurably slower.
        let machine = brisk_numa::MachineBuilder::new("virt")
            .sockets(2)
            .cores_per_socket(8)
            .clock_ghz(1.0)
            .local_latency_ns(50.0)
            .one_hop_latency_ns(20000.0) // exaggerated for test signal
            .max_hop_latency_ns(20000.0)
            .build();
        let mk_engine = |sockets: [usize; 3]| {
            let penalty = NumaPenalty {
                machine: machine.clone(),
                replica_socket: sockets.iter().map(|&s| SocketId(s)).collect(),
                scale: 1.0,
            };
            let config = EngineConfig::builder().numa_penalty(penalty).build();
            Engine::new(app(3000), vec![1, 1, 1], config).expect("valid engine")
        };
        let local = mk_engine([0, 0, 0]).run_until_events(6000, Duration::from_secs(30));
        let remote = mk_engine([0, 1, 0]).run_until_events(6000, Duration::from_secs(30));
        assert_eq!(local.sink_events, 6000);
        assert_eq!(remote.sink_events, 6000);
        assert!(
            remote.elapsed > local.elapsed,
            "remote {:?} should exceed local {:?}",
            remote.elapsed,
            local.elapsed
        );
    }

    #[test]
    fn with_plan_maps_compressed_vertices_to_replica_sockets() {
        // Multi-operator, multi-replica, compressed graph: replication
        // [2, 5, 1] at compress ratio 3 yields vertices s#0(x2) | x#0(x3),
        // x#1(x2) | k#0(x1). Each vertex's socket must fan out to exactly
        // the consecutive global replica indices it covers.
        use brisk_dag::VertexId;
        let machine = brisk_numa::MachineBuilder::new("map")
            .sockets(3)
            .cores_per_socket(8)
            .clock_ghz(1.0)
            .build();
        let app = app(10);
        let graph = ExecutionGraph::new(&app.topology, &[2, 5, 1], 3);
        assert_eq!(graph.vertex_count(), 4, "compression shape changed");
        let mut placement = brisk_dag::Placement::empty(graph.vertex_count());
        placement.place(VertexId(0), SocketId(1)); // s#0
        placement.place(VertexId(1), SocketId(0)); // x#0
        placement.place(VertexId(2), SocketId(2)); // x#1
        placement.place(VertexId(3), SocketId(1)); // k#0
        let plan = ExecutionPlan {
            replication: vec![2, 5, 1],
            compress_ratio: 3,
            placement,
        };
        let expected: Vec<SocketId> = [1, 1, 0, 0, 0, 2, 2, 1]
            .iter()
            .map(|&s| SocketId(s))
            .collect();
        assert_eq!(plan_replica_sockets(&app.topology, &plan), expected);
        let engine =
            Engine::with_plan(app, &plan, &machine, EngineConfig::default()).expect("valid engine");
        assert_eq!(engine.replica_sockets(), Some(expected.as_slice()));
        // The mapping is what the injected NUMA penalty charges: run it to
        // make sure the wired engine still delivers everything (two spout
        // replicas x 10 inputs, doubled by the bolt).
        let report = engine.run_until_events(u64::MAX, Duration::from_secs(20));
        assert_eq!(report.sink_events, 40);
    }

    #[test]
    fn fusion_ab_is_equivalent_and_removes_every_crossing() {
        // [1,1,1] fuses the whole pipeline into one executor. The A/B must
        // agree on every per-operator counter while the fused run performs
        // zero queue crossings. Running under debug assertions, this also
        // exercises the SPSC tripwires over the rewired graph.
        let run = |fusion: bool| {
            let config = EngineConfig::builder().fusion(fusion).build();
            let engine = Engine::new(app(1000), vec![1, 1, 1], config).expect("valid engine");
            engine.run_until_events(2000, Duration::from_secs(20))
        };
        let fused = run(true);
        let unfused = run(false);
        for report in [&fused, &unfused] {
            assert_eq!(report.sink_events, 2000);
            assert_eq!(processed(report), vec![0, 1000, 2000]);
            assert_eq!(emitted(report), vec![1000, 2000, 0]);
        }
        assert_eq!(
            total_pushes(&fused),
            0,
            "a fully fused chain crosses no queue"
        );
        assert!(
            total_pushes(&unfused) > 0,
            "the unfused run must pay real crossings"
        );
        assert_eq!(fused.latency_ns.count(), 2000, "fused sink records latency");
    }

    #[test]
    fn fused_chain_feeds_unfused_consumer_through_queues() {
        // s(1) -> x(1) fuses; x -> k(2) stays queued, pushed from the host
        // thread on behalf of the fused x. The sink replicas must shut down
        // cleanly via x's op_done latch (released by the host).
        let engine =
            Engine::new(app(500), vec![1, 1, 2], EngineConfig::default()).expect("valid engine");
        let report = engine.run_until_events(1000, Duration::from_secs(20));
        assert_eq!(report.sink_events, 1000);
        assert_eq!(processed(&report), vec![0, 500, 1000]);
        assert_eq!(emitted(&report), vec![500, 1000, 0]);
        assert_eq!(report.operator(0).queue_pushes, 0, "spout->x edge is fused");
        assert!(
            report.operator(1).queue_pushes > 0,
            "x->k edges stay queued"
        );
    }

    fn global_funnel_app(limit: u64) -> AppRuntime {
        let mut b = TopologyBuilder::new("funnel");
        let s = b.add_spout("s", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, k, brisk_dag::Partitioning::Global);
        let t = b.build().expect("valid");
        let (s, k) = (t.find("s").expect("s"), t.find("k").expect("k"));
        AppRuntime::new(t)
            .spout(s, move |ctx| CountingSpout {
                next: ctx.replica as u64 * limit,
                limit: (ctx.replica as u64 + 1) * limit,
            })
            .sink(k, |_| NullSink)
    }

    #[test]
    fn global_funnel_routes_multiple_producers_through_the_mpsc_fabric() {
        // Three spout replicas funnel into one sink replica over a Global
        // edge: under the SPSC preference the engine must upgrade the
        // shared queue to the MPSC ring — the debug tripwires would panic
        // if an SpscQueue ever saw two producers. Every tuple arrives
        // exactly once.
        for kind in [QueueKind::Spsc, QueueKind::Mutex, QueueKind::Mpsc] {
            let config = EngineConfig::builder().queue_kind(kind).build();
            let engine =
                Engine::new(global_funnel_app(400), vec![3, 1], config).expect("valid engine");
            let report = engine.run_until_events(1200, Duration::from_secs(20));
            assert_eq!(report.sink_events, 1200, "{kind}");
            assert_eq!(report.operator(0).emitted, 1200, "{kind}");
            assert_eq!(report.operator(1).processed, 1200, "{kind}");
        }
    }

    struct BroadcastSpout {
        next: u64,
        limit: u64,
    }
    impl DynSpout for BroadcastSpout {
        fn next(&mut self, c: &mut Collector) -> SpoutStatus {
            if self.next >= self.limit {
                return SpoutStatus::Exhausted;
            }
            let now = c.now_ns();
            c.send_default(self.next, now, self.next);
            self.next += 1;
            SpoutStatus::Emitted(1)
        }
    }

    #[test]
    fn broadcast_counts_emitted_once_per_tuple_and_processed_per_copy() {
        // Pins the RunReport accounting semantics on Broadcast fan-out:
        // the producer's `emitted` counts each logical tuple ONCE (not once
        // per target replica), while the consumer side counts every
        // delivered copy — so a 3-replica broadcast shows emitted = N and
        // processed = sink_events = 3N.
        let mut b = TopologyBuilder::new("bc");
        let s = b.add_spout("s", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, k, brisk_dag::Partitioning::Broadcast);
        let t = b.build().expect("valid");
        let (s, k) = (t.find("s").expect("s"), t.find("k").expect("k"));
        let app = AppRuntime::new(t)
            .spout(s, |_| BroadcastSpout {
                next: 0,
                limit: 600,
            })
            .sink(k, |_| NullSink);
        let engine = Engine::new(app, vec![1, 3], EngineConfig::default()).expect("valid engine");
        let report = engine.run_until_events(1800, Duration::from_secs(20));
        assert_eq!(
            report.operator(0).emitted,
            600,
            "one count per tuple, not per copy"
        );
        assert_eq!(
            report.operator(1).processed,
            1800,
            "each replica counts its copy"
        );
        assert_eq!(report.sink_events, 1800);
        // Crossings ship per (jumbo, target queue): three consumer queues
        // mean at least three pushes, and never fewer than the stalls.
        assert!(report.operator(0).queue_pushes >= 3);
        assert!(report.operator(0).queue_full_events <= report.operator(0).queue_pushes);
        // Broadcast is a refcount bump: each sealed slab feeds all three
        // replicas, so slab seals are bounded by the *logical* tuple count
        // — a fabric that copied per destination would need 3× the slabs.
        assert!(report.slab_allocs > 0, "the run used the batch fabric");
        assert!(
            report.slab_allocs + report.slab_recycled <= 600,
            "slab seals scale with logical tuples, not destination copies \
             (allocs {} + recycled {})",
            report.slab_allocs,
            report.slab_recycled
        );
    }

    fn forward_app(limit: u64) -> AppRuntime {
        // spout -> x over Forward (pairwise-fusable at equal counts),
        // x -> k over Shuffle.
        let mut b = TopologyBuilder::new("fwd");
        let s = b.add_spout("s", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, x, brisk_dag::Partitioning::Forward);
        b.connect_shuffle(x, k);
        let t = b.build().expect("valid");
        let (s, x, k) = (
            t.find("s").expect("s"),
            t.find("x").expect("x"),
            t.find("k").expect("k"),
        );
        AppRuntime::new(t)
            .spout(s, move |ctx| CountingSpout {
                next: ctx.replica as u64 * limit,
                limit: (ctx.replica as u64 + 1) * limit,
            })
            .bolt(x, |_| DoublingBolt)
            .sink(k, |_| NullSink)
    }

    #[test]
    fn forward_pairwise_fusion_ab_matches_and_silences_the_edge() {
        // 3:3 Forward pairs fuse: the A/B must agree on every counter
        // while the fused run's spout pushes nothing (its only edge is
        // fused); the hosted x instances still push to the sink queue.
        let run = |fusion: bool| {
            let config = EngineConfig::builder().fusion(fusion).build();
            let engine =
                Engine::new(forward_app(400), vec![3, 3, 1], config).expect("valid engine");
            engine.run_until_events(2400, Duration::from_secs(20))
        };
        let fused = run(true);
        let unfused = run(false);
        for report in [&fused, &unfused] {
            assert_eq!(report.sink_events, 2400);
            assert_eq!(processed(report), vec![0, 1200, 2400]);
            assert_eq!(emitted(report), vec![1200, 2400, 0]);
        }
        assert_eq!(
            fused.operator(0).queue_pushes,
            0,
            "fused Forward edge is silent"
        );
        assert!(
            fused.operator(1).queue_pushes > 0,
            "hosted x still pushes to k"
        );
        assert!(
            unfused.operator(0).queue_pushes > 0,
            "unfused pairs pay crossings"
        );
    }

    #[test]
    fn forward_with_unequal_counts_degrades_to_shuffle_without_fusing() {
        // 4 producers into 2 consumers: the pairing is meaningless, so the
        // edge degrades to Shuffle's even spread — every tuple arrives
        // exactly once, nothing fuses (counts differ), and the model's
        // work-conserving pooling matches what the engine executes.
        let engine =
            Engine::new(forward_app(250), vec![4, 2, 1], EngineConfig::default()).expect("valid");
        let report = engine.run_until_events(2000, Duration::from_secs(20));
        assert_eq!(report.sink_events, 2000);
        assert_eq!(report.operator(1).processed, 1000);
        assert!(
            report.operator(0).queue_pushes > 0,
            "4:2 Forward stays queued"
        );
    }

    /// Sink that asserts every tuple it sees hashes to its own replica
    /// index — the aligned-KeyBy pairing contract.
    struct ResidueAssertingSink {
        replica: usize,
        replicas: usize,
    }
    impl DynBolt for ResidueAssertingSink {
        fn execute(&mut self, t: &TupleView<'_>, _c: &mut Collector) {
            assert_eq!(
                (Tuple::mix_key(t.key) % self.replicas as u64) as usize,
                self.replica,
                "key {} leaked to replica {}",
                t.key,
                self.replica
            );
        }
    }

    /// Bolt that re-emits its input under the same key (key-preserving).
    struct KeyKeepingBolt;
    impl DynBolt for KeyKeepingBolt {
        fn execute(&mut self, t: &TupleView<'_>, c: &mut Collector) {
            let v = *t.value::<u64>().expect("u64 payload");
            c.send_default(v + 1, t.event_ns, t.key);
        }
    }

    #[test]
    fn aligned_keyby_pairwise_fusion_preserves_key_routing() {
        // s -> a (KeyBy) -> k (KeyBy), a key-preserving, [1, 2, 2]: the
        // a->k edge fuses pairwise, and every inline delivery must carry a
        // key belonging to that replica's shard — the sink instances
        // assert it tuple by tuple (a violation panics the host thread).
        let mut b = TopologyBuilder::new("aligned");
        let s = b.add_spout("s", CostProfile::trivial());
        let a = b.add_bolt("a", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, a, brisk_dag::Partitioning::KeyBy);
        b.connect(a, DEFAULT_STREAM, k, brisk_dag::Partitioning::KeyBy);
        b.set_key_preserving(a);
        let t = b.build().expect("valid");
        let (s, a, k) = (
            t.find("s").expect("s"),
            t.find("a").expect("a"),
            t.find("k").expect("k"),
        );
        let app = AppRuntime::new(t)
            .spout(s, |_| CountingSpout {
                next: 0,
                limit: 1000,
            })
            .bolt(a, |_| KeyKeepingBolt)
            .sink(k, |ctx| ResidueAssertingSink {
                replica: ctx.replica,
                replicas: ctx.replicas,
            });
        let engine = Engine::new(app, vec![1, 2, 2], EngineConfig::default()).expect("valid");
        let report = engine.run_until_events(1000, Duration::from_secs(20));
        assert_eq!(report.sink_events, 1000);
        assert_eq!(processed(&report), vec![0, 1000, 1000]);
        assert_eq!(report.operator(1).queue_pushes, 0, "a->k fused pairwise");
        assert!(report.operator(0).queue_pushes > 0, "1:2 head stays queued");
        assert_eq!(report.latency_ns.count(), 1000, "fused sinks record");
    }

    #[test]
    fn rejects_bad_replication() {
        assert!(Engine::new(app(10), vec![1, 1], EngineConfig::default()).is_err());
        assert!(Engine::new(app(10), vec![1, 0, 1], EngineConfig::default()).is_err());
    }

    #[test]
    fn exhausted_spouts_end_the_run_before_the_event_target() {
        // 100 inputs can only ever produce 200 sink events; asking for more
        // must return as soon as the pipeline drains, not burn the timeout.
        let engine =
            Engine::new(app(100), vec![1, 1, 1], EngineConfig::default()).expect("valid engine");
        let t0 = Instant::now();
        let report = engine.run_until_events(u64::MAX, Duration::from_secs(30));
        assert_eq!(report.sink_events, 200);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "drained pipeline should return early, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn run_for_duration_terminates() {
        let engine =
            Engine::new(app(u64::MAX), vec![1, 1, 1], EngineConfig::default()).expect("valid");
        let report = engine.run_for(Duration::from_millis(200));
        assert!(report.sink_events > 0);
        assert!(report.throughput > 0.0);
    }
}
