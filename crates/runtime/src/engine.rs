//! The threaded execution engine.
//!
//! One OS thread per operator replica, wired by bounded queues carrying
//! jumbo tuples. Shutdown cascades topologically: the run deadline stops the
//! spouts; a bolt exits once every producer operator has finished *and* its
//! input queues are drained, so no tuple in flight is lost.
//!
//! On a development host there is no 8-socket NUMA machine to pin against,
//! so the engine keeps placement as bookkeeping and can optionally *inject*
//! the remote-fetch penalty of a virtual machine ([`NumaPenalty`]): when a
//! consumer pops a jumbo produced on a different (virtual) socket it spins
//! for `tuples × ceil(N/S) × L(i,j)` nanoseconds — the exact Formula 2 cost
//! the real hardware would charge. This keeps execution-plan shapes
//! meaningful end to end.

use crate::fusion::{FusedSinkState, FusedTarget, SinkLocal, SinkProgress};
use crate::operator::{
    AppRuntime, BoltContext, Collector, EngineClock, OperatorRuntime, OutputEdge, SpoutStatus,
};
use crate::partition::Partitioner;
use crate::queue::{QueueKind, ReplicaQueue};
use crate::spsc::{Backoff, BackoffProfile};
use crate::tuple::JumboTuple;
use brisk_dag::{
    ExecutionGraph, ExecutionPlan, FusionPlan, LogicalTopology, OperatorKind, Partitioning,
};
use brisk_metrics::Histogram;
use brisk_numa::{Machine, SocketId, CACHE_LINE_BYTES};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Injected NUMA fetch costs for a virtual machine.
#[derive(Debug, Clone)]
pub struct NumaPenalty {
    /// The virtual machine whose latency matrix is charged.
    pub machine: Machine,
    /// Virtual socket of every global replica index.
    pub replica_socket: Vec<SocketId>,
    /// Scale factor on the injected spin (1.0 = charge full Formula 2 cost).
    pub scale: f64,
}

impl NumaPenalty {
    fn fetch_ns(&self, producer: usize, consumer: usize, bytes: f64, tuples: usize) -> u64 {
        let (i, j) = (self.replica_socket[producer], self.replica_socket[consumer]);
        if i == j {
            return 0;
        }
        let lines = (bytes / CACHE_LINE_BYTES as f64).ceil().max(1.0);
        (lines * self.machine.latency_ns(i, j) * self.scale * tuples as f64) as u64
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Which queue fabric wires replica pairs (default: lock-free SPSC).
    pub queue_kind: QueueKind,
    /// Queue capacity in jumbo tuples.
    pub queue_capacity: usize,
    /// Tuples batched per jumbo tuple (1 disables the jumbo optimization).
    pub jumbo_size: usize,
    /// Park interval ceiling for the adaptive spin → yield → park back-off
    /// ladder (see [`Backoff`]) — governs both idle executors polling
    /// empty inputs and producers blocked on a full SPSC ring.
    pub poll_backoff: Duration,
    /// Emit-side flush cadence, in operator invocations.
    pub flush_every: u32,
    /// Optional virtual-NUMA fetch penalty.
    pub numa_penalty: Option<NumaPenalty>,
    /// Artificial extra cost per consumed tuple, in nanoseconds — lets tests
    /// and examples emulate heavier (distributed-style) engines. Charged on
    /// the queue pop path, so fused edges (which never cross a queue) skip
    /// it, like they skip the NUMA penalty.
    pub extra_cost_ns_per_tuple: u64,
    /// Operator-chain fusion (default on): 1:1 collocated producer→consumer
    /// chains collapse into a single executor calling the downstream
    /// operator inline instead of routing through a queue (see
    /// [`brisk_dag::FusionPlan`] for eligibility). Disable for A/B runs.
    pub fusion: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_kind: QueueKind::default(),
            queue_capacity: 64,
            jumbo_size: 64,
            poll_backoff: Duration::from_micros(100),
            flush_every: 256,
            numa_penalty: None,
            extra_cost_ns_per_tuple: 0,
            fusion: true,
        }
    }
}

/// Aggregated results of one engine run.
#[derive(Debug)]
pub struct RunReport {
    /// Wall-clock run time (including drain).
    pub elapsed: Duration,
    /// Tuples received by sink operators.
    pub sink_events: u64,
    /// `sink_events / elapsed` in events per second.
    pub throughput: f64,
    /// End-to-end latency (spout emit → sink receive), nanoseconds.
    pub latency_ns: Histogram,
    /// Input-side tuples consumed per operator. Spouts have no input and
    /// report 0 here — their emission counts are in [`RunReport::emitted`],
    /// so spout emission rate and sink consumption rate are distinguishable.
    pub processed: Vec<u64>,
    /// Output-side tuples emitted per operator across all streams (sinks
    /// normally 0; spouts: their generation count).
    pub emitted: Vec<u64>,
    /// Queue-pressure events per operator: jumbo flushes that found a
    /// destination queue full, i.e. the producer stalled on back-pressure.
    /// Counted once per stalled flush (one jumbo to one destination
    /// queue), so a broadcast edge with several slow consumers records one
    /// stall per consumer queue.
    pub queue_full_events: Vec<u64>,
    /// Queue crossings per operator: jumbo tuples this operator pushed to
    /// consumer queues. Fused edges deliver inline and never count here —
    /// the fused-vs-unfused A/B reads this to verify fusion actually
    /// removed crossings.
    pub queue_pushes: Vec<u64>,
}

impl RunReport {
    /// Throughput in the paper's unit (k events/s).
    pub fn k_events_per_sec(&self) -> f64 {
        self.throughput / 1e3
    }

    /// Measured input-side processing rate of one operator, tuples/sec
    /// (0 for spouts — see [`RunReport::output_rate`]).
    pub fn input_rate(&self, op: usize) -> f64 {
        self.processed[op] as f64 / self.elapsed.as_secs_f64()
    }

    /// Measured output-side emission rate of one operator, tuples/sec
    /// (the measured counterpart of the model's per-operator `ro`).
    pub fn output_rate(&self, op: usize) -> f64 {
        self.emitted[op] as f64 / self.elapsed.as_secs_f64()
    }
}

struct InputPort {
    queue: Arc<ReplicaQueue<JumboTuple>>,
    /// Output bytes per tuple of the producing operator (Formula 2's `N`).
    /// The producing *replica* is read per jumbo from
    /// [`JumboTuple::producer`], since fan-in (MPSC) ports carry jumbos
    /// from several producer replicas.
    producer_bytes: f64,
}

/// The wired, ready-to-run engine.
pub struct Engine {
    app: Arc<AppRuntime>,
    replication: Vec<usize>,
    config: EngineConfig,
}

impl Engine {
    /// Build an engine running `replication[op]` replicas of each operator.
    pub fn new(
        app: AppRuntime,
        replication: Vec<usize>,
        config: EngineConfig,
    ) -> Result<Engine, String> {
        app.validate()?;
        if replication.len() != app.topology.operator_count() {
            return Err("replication must cover every operator".into());
        }
        if replication.contains(&0) {
            return Err("replication level must be at least 1".into());
        }
        let total: usize = replication.iter().sum();
        if total > 512 {
            return Err(format!("{total} replicas exceed the 512-thread safety cap"));
        }
        Ok(Engine {
            app: Arc::new(app),
            replication,
            config,
        })
    }

    /// Build an engine from an optimized [`ExecutionPlan`], charging the
    /// plan's NUMA fetch costs against `machine`'s latency matrix.
    pub fn with_plan(
        app: AppRuntime,
        plan: &ExecutionPlan,
        machine: &Machine,
        mut config: EngineConfig,
    ) -> Result<Engine, String> {
        config.numa_penalty = Some(NumaPenalty {
            machine: machine.clone(),
            replica_socket: plan_replica_sockets(&app.topology, plan),
            scale: 1.0,
        });
        Engine::new(app, plan.replication.clone(), config)
    }

    /// Virtual socket of every global replica index, when the engine was
    /// built from a plan ([`Engine::with_plan`]) or given an explicit
    /// [`NumaPenalty`].
    pub fn replica_sockets(&self) -> Option<&[SocketId]> {
        self.config
            .numa_penalty
            .as_ref()
            .map(|p| p.replica_socket.as_slice())
    }

    /// Total replica threads this engine will spawn.
    pub fn total_replicas(&self) -> usize {
        self.replication.iter().sum()
    }

    /// Run until `deadline` elapses, then drain and report.
    pub fn run_for(&self, deadline: Duration) -> RunReport {
        self.run_inner(StopCondition::After(deadline))
    }

    /// Run until the sinks have received at least `events` tuples (or
    /// `timeout` elapses), then drain and report. Deterministic-ish runs for
    /// tests.
    pub fn run_until_events(&self, events: u64, timeout: Duration) -> RunReport {
        self.run_inner(StopCondition::Events { events, timeout })
    }

    fn run_inner(&self, condition: StopCondition) -> RunReport {
        let topology = &self.app.topology;
        let n_ops = topology.operator_count();
        let replica_base: Vec<usize> = {
            let mut base = vec![0usize; n_ops];
            let mut acc = 0;
            for (i, b) in base.iter_mut().enumerate() {
                *b = acc;
                acc += self.replication[i];
            }
            base
        };
        let total_replicas: usize = self.replication.iter().sum();

        // Operator-chain fusion: 1:1 replica-paired collocated chains
        // (single-replica chains, Forward edges, aligned KeyBy) collapse
        // into their host executors; fused edges get no queues at all.
        let fusion = if self.config.fusion {
            FusionPlan::compute(topology, &self.replication, self.replica_sockets())
        } else {
            FusionPlan::disabled(topology)
        };
        let spawned_replicas = fusion.spawned_executors(&self.replication);
        // Oversubscription-aware wait ladder: when replica threads
        // outnumber hardware cores, spinning burns the timeslices the
        // counterpart threads need, so waiters park almost immediately.
        let backoff_profile = BackoffProfile::detect(spawned_replicas, self.config.poll_backoff);

        // Queues per unfused logical edge. Output edges are grouped per
        // (operator, local replica) because fused-away operators emit from
        // their host's thread rather than a replica of their own.
        let mut inputs: Vec<Vec<InputPort>> = (0..total_replicas).map(|_| Vec::new()).collect();
        let mut op_outputs: Vec<Vec<Vec<OutputEdge>>> = self
            .replication
            .iter()
            .map(|&r| (0..r).map(|_| Vec::new()).collect())
            .collect();
        for (lei, edge) in topology.edges().iter().enumerate() {
            if fusion.is_edge_fused(lei) {
                continue; // delivered inline by the host executor
            }
            let np = self.replication[edge.from.0];
            let nc = match edge.partitioning {
                Partitioning::Global => 1,
                _ => self.replication[edge.to.0],
            };
            let producer_bytes = topology.operator(edge.from).cost.output_bytes;
            if matches!(edge.partitioning, Partitioning::Global) && np > 1 {
                // Funnel: several producer replicas feed the one consumer
                // replica. Sharing an SpscQueue between producers would be
                // a data race, so the wiring upgrades to the fan-in (MPSC)
                // fabric and the consumer polls a single port.
                let kind = self.config.queue_kind.for_producers(np);
                let q = Arc::new(ReplicaQueue::with_profile(
                    kind,
                    self.config.queue_capacity,
                    backoff_profile,
                ));
                inputs[replica_base[edge.to.0]].push(InputPort {
                    queue: Arc::clone(&q),
                    producer_bytes,
                });
                for outputs in op_outputs[edge.from.0].iter_mut().take(np) {
                    outputs.push(OutputEdge {
                        logical_edge: lei,
                        stream: edge.stream.clone(),
                        partitioner: Partitioner::new(edge.partitioning, 1),
                        queues: vec![Arc::clone(&q)],
                        buffers: vec![Vec::new()],
                    });
                }
                continue;
            }
            if matches!(edge.partitioning, Partitioning::Forward) && np == nc {
                // Local forwarding at equal counts pins producer replica r
                // to consumer replica r, so only that one queue exists per
                // producer. (At unequal counts the pairing is meaningless
                // and the edge falls through to the general wiring below,
                // where the Forward partitioner degrades to Shuffle — the
                // model's even-spread, work-conserving treatment is then
                // exact.)
                for (r, outputs) in op_outputs[edge.from.0].iter_mut().enumerate().take(np) {
                    let cg = replica_base[edge.to.0] + r;
                    let q = Arc::new(ReplicaQueue::with_profile(
                        self.config.queue_kind,
                        self.config.queue_capacity,
                        backoff_profile,
                    ));
                    inputs[cg].push(InputPort {
                        queue: Arc::clone(&q),
                        producer_bytes,
                    });
                    outputs.push(OutputEdge {
                        logical_edge: lei,
                        stream: edge.stream.clone(),
                        // One queue: the router degenerates to "target 0".
                        partitioner: Partitioner::new(edge.partitioning, 1),
                        queues: vec![q],
                        buffers: vec![Vec::new()],
                    });
                }
                continue;
            }
            for outputs in op_outputs[edge.from.0].iter_mut().take(np) {
                let mut queues = Vec::with_capacity(nc);
                for c in 0..nc {
                    let cg = replica_base[edge.to.0] + c;
                    // One producer replica, one consumer replica: the SPSC
                    // fabric's contract holds by construction.
                    let q = Arc::new(ReplicaQueue::with_profile(
                        self.config.queue_kind,
                        self.config.queue_capacity,
                        backoff_profile,
                    ));
                    inputs[cg].push(InputPort {
                        queue: Arc::clone(&q),
                        producer_bytes,
                    });
                    queues.push(q);
                }
                outputs.push(OutputEdge {
                    logical_edge: lei,
                    stream: edge.stream.clone(),
                    partitioner: Partitioner::new(edge.partitioning, nc),
                    queues,
                    buffers: (0..nc).map(|_| Vec::new()).collect(),
                });
            }
        }

        // Shared run state.
        let clock = Arc::new(EngineClock::new());
        let stop = Arc::new(AtomicBool::new(false));
        let op_done: Arc<Vec<AtomicBool>> =
            Arc::new((0..n_ops).map(|_| AtomicBool::new(false)).collect());
        let op_live: Arc<Vec<AtomicUsize>> = Arc::new(
            self.replication
                .iter()
                .map(|&r| AtomicUsize::new(r))
                .collect(),
        );
        let processed: Arc<Vec<AtomicU64>> =
            Arc::new((0..n_ops).map(|_| AtomicU64::new(0)).collect());
        let emitted: Arc<Vec<AtomicU64>> =
            Arc::new((0..n_ops).map(|_| AtomicU64::new(0)).collect());
        let queue_full: Arc<Vec<AtomicU64>> =
            Arc::new((0..n_ops).map(|_| AtomicU64::new(0)).collect());
        let queue_pushes: Arc<Vec<AtomicU64>> =
            Arc::new((0..n_ops).map(|_| AtomicU64::new(0)).collect());
        // Replica *threads* still running: lets the driver stop waiting
        // early when finite (sized) spouts exhaust and the whole pipeline
        // drains before the event target or deadline is reached. Fused-away
        // operators have no thread of their own.
        let live_replicas = Arc::new(AtomicUsize::new(spawned_replicas));
        let sink_progress = Arc::new(SinkProgress {
            events: AtomicU64::new(0),
        });

        // Build fused targets bottom-up (reverse topological order), so a
        // chain's tail exists before the operator that hosts it. Fusion
        // pairs replicas index-wise (a fused edge requires equal replica
        // counts), so each fused-away operator gets one instance *per
        // replica pair*, each with its own collector; replica r's subtree
        // then attaches to the chain host's replica-r collector.
        let mut pending_fused: Vec<Vec<Vec<FusedTarget>>> = self
            .replication
            .iter()
            .map(|&r| (0..r).map(|_| Vec::new()).collect())
            .collect();
        for &op in topology.topological_order().iter().rev() {
            if !fusion.is_fused_away(op) {
                continue;
            }
            let spec = topology.operator(op);
            let streams: Vec<String> = topology
                .edges()
                .iter()
                .enumerate()
                .filter(|&(lei, e)| e.to == op && fusion.is_edge_fused(lei))
                .map(|(_, e)| e.stream.clone())
                .collect();
            let host = fusion.direct_host_of(op);
            for r in 0..self.replication[op.0] {
                let ctx = BoltContext {
                    replica: r,
                    replicas: self.replication[op.0],
                };
                let bolt = match self.app.runtime(op) {
                    OperatorRuntime::Bolt(f) | OperatorRuntime::Sink(f) => f(ctx),
                    OperatorRuntime::Spout(_) => unreachable!("spouts are never fused away"),
                };
                let collector = Collector::new(
                    replica_base[op.0] + r,
                    self.config.jumbo_size,
                    std::mem::take(&mut op_outputs[op.0][r]),
                    Arc::clone(&clock),
                )
                .with_fused(std::mem::take(&mut pending_fused[op.0][r]));
                let sink = (spec.kind == OperatorKind::Sink)
                    .then(|| FusedSinkState::new(Arc::clone(&sink_progress)));
                pending_fused[host.0][r].push(FusedTarget {
                    op_index: op.0,
                    streams: streams.clone(),
                    bolt,
                    collector,
                    processed: 0,
                    sink,
                });
            }
        }

        let started = Instant::now();
        let mut handles = Vec::with_capacity(spawned_replicas);

        // Spawn in reverse topological order so consumers are polling before
        // producers start pushing (not required for correctness, helps
        // startup latency).
        let spawn_order: Vec<brisk_dag::OperatorId> =
            topology.topological_order().iter().rev().copied().collect();
        let mut inputs_by_replica: Vec<Option<Vec<InputPort>>> =
            inputs.into_iter().map(Some).collect();

        for op in spawn_order {
            if fusion.is_fused_away(op) {
                continue; // runs inline inside its chain host
            }
            let spec = topology.operator(op);
            for (r, outputs) in op_outputs[op.0].iter_mut().enumerate() {
                let global = replica_base[op.0] + r;
                // Replica r hosts the replica-r instances of its fused
                // subtree (index-aligned pairing).
                let collector = Collector::new(
                    global,
                    self.config.jumbo_size,
                    std::mem::take(outputs),
                    Arc::clone(&clock),
                )
                .with_fused(std::mem::take(&mut pending_fused[op.0][r]));
                let ports = inputs_by_replica[global].take().expect("inputs once");
                let ctx = BoltContext {
                    replica: r,
                    replicas: self.replication[op.0],
                };
                let app = Arc::clone(&self.app);
                let stop = Arc::clone(&stop);
                let op_done = Arc::clone(&op_done);
                let op_live = Arc::clone(&op_live);
                let processed = Arc::clone(&processed);
                let emitted = Arc::clone(&emitted);
                let queue_full = Arc::clone(&queue_full);
                let queue_pushes = Arc::clone(&queue_pushes);
                let live_replicas = Arc::clone(&live_replicas);
                let sink_progress = Arc::clone(&sink_progress);
                let clock = Arc::clone(&clock);
                let config = self.config.clone();
                let kind = spec.kind;
                let op_index = op.0;
                let producer_ops: Vec<usize> =
                    topology.producers_of(op).iter().map(|p| p.0).collect();
                let name = format!("{}#{r}", spec.name);

                let handle = std::thread::Builder::new()
                    .name(name)
                    .spawn(move || {
                        run_replica(ReplicaArgs {
                            app,
                            kind,
                            op_index,
                            ctx,
                            collector,
                            ports,
                            producer_ops,
                            stop,
                            op_done,
                            op_live,
                            processed,
                            emitted,
                            queue_full,
                            queue_pushes,
                            live_replicas,
                            sink_progress,
                            clock,
                            config,
                            backoff_profile,
                        })
                    })
                    .expect("thread spawn");
                handles.push(handle);
            }
        }

        // Drive the stop condition.
        match condition {
            StopCondition::After(d) => std::thread::sleep(d),
            StopCondition::Events { events, timeout } => {
                let deadline = Instant::now() + timeout;
                while sink_progress.events.load(Ordering::Relaxed) < events
                    && live_replicas.load(Ordering::Relaxed) > 0
                    && Instant::now() < deadline
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        stop.store(true, Ordering::SeqCst);
        // Merge each sink replica's thread-local metrics after join — the
        // run itself never serialized replicas on a shared histogram.
        let mut sink_events = 0u64;
        let mut latency_ns = Histogram::new();
        for h in handles {
            if let Some(local) = h.join().expect("replica thread panicked") {
                sink_events += local.events;
                latency_ns.merge(&local.latency);
            }
        }

        let elapsed = started.elapsed();
        let load_all =
            |v: &[AtomicU64]| -> Vec<u64> { v.iter().map(|c| c.load(Ordering::Relaxed)).collect() };
        RunReport {
            elapsed,
            sink_events,
            throughput: sink_events as f64 / elapsed.as_secs_f64(),
            latency_ns,
            processed: load_all(&processed),
            emitted: load_all(&emitted),
            queue_full_events: load_all(&queue_full),
            queue_pushes: load_all(&queue_pushes),
        }
    }
}

/// Expand a plan's vertex-granular placement into the engine's per-replica
/// socket assignment. Global replica indices are operator-major (all
/// replicas of operator 0, then operator 1, …), and each — possibly
/// compressed — execution vertex covers `multiplicity` consecutive replicas
/// of its operator, in `vertices_of` order. Vertices an optimizer left
/// unplaced default to socket 0.
pub fn plan_replica_sockets(topology: &LogicalTopology, plan: &ExecutionPlan) -> Vec<SocketId> {
    let graph = ExecutionGraph::new(topology, &plan.replication, plan.compress_ratio);
    let mut replica_socket = vec![SocketId(0); plan.total_replicas()];
    let mut base = 0usize;
    for (op, _) in topology.operators() {
        for &v in graph.vertices_of(op) {
            let socket = plan.placement.socket_of(v).unwrap_or(SocketId(0));
            for r in 0..graph.vertex(v).multiplicity {
                replica_socket[base + r] = socket;
            }
            base += graph.vertex(v).multiplicity;
        }
    }
    replica_socket
}

enum StopCondition {
    After(Duration),
    Events { events: u64, timeout: Duration },
}

struct ReplicaArgs {
    app: Arc<AppRuntime>,
    kind: OperatorKind,
    op_index: usize,
    ctx: BoltContext,
    collector: Collector,
    ports: Vec<InputPort>,
    producer_ops: Vec<usize>,
    stop: Arc<AtomicBool>,
    op_done: Arc<Vec<AtomicBool>>,
    op_live: Arc<Vec<AtomicUsize>>,
    processed: Arc<Vec<AtomicU64>>,
    emitted: Arc<Vec<AtomicU64>>,
    queue_full: Arc<Vec<AtomicU64>>,
    queue_pushes: Arc<Vec<AtomicU64>>,
    live_replicas: Arc<AtomicUsize>,
    sink_progress: Arc<SinkProgress>,
    clock: Arc<EngineClock>,
    config: EngineConfig,
    backoff_profile: BackoffProfile,
}

fn run_replica(mut args: ReplicaArgs) -> Option<SinkLocal> {
    let mut sink_local = match args.kind {
        OperatorKind::Spout => {
            run_spout(&mut args);
            None
        }
        OperatorKind::Bolt | OperatorKind::Sink => run_bolt(&mut args),
    };
    // Let fused chain operators emit their final results, then flush every
    // buffer in the chain (depth-first, so tail emissions are shipped too).
    args.collector.finish_fused();
    args.collector.flush_all();
    // Merge the collector's thread-local output-side counters (kept local
    // for the whole run so the hot path never touches shared cache lines).
    args.emitted[args.op_index].fetch_add(args.collector.emitted, Ordering::Relaxed);
    args.queue_full[args.op_index].fetch_add(args.collector.stalled_flushes, Ordering::Relaxed);
    args.queue_pushes[args.op_index].fetch_add(args.collector.flushes, Ordering::Relaxed);
    // Merge every fused operator instance's counters and sink metrics,
    // then retire it from `op_live` — a fused operator has one instance
    // per host replica, and the last host out releases its `op_done`
    // latch, exactly like real replicas do below.
    for mut target in args.collector.take_fused() {
        args.processed[target.op_index].fetch_add(target.processed, Ordering::Relaxed);
        args.emitted[target.op_index].fetch_add(target.collector.emitted, Ordering::Relaxed);
        args.queue_full[target.op_index]
            .fetch_add(target.collector.stalled_flushes, Ordering::Relaxed);
        args.queue_pushes[target.op_index].fetch_add(target.collector.flushes, Ordering::Relaxed);
        if let Some(state) = target.sink.take() {
            let local = sink_local.get_or_insert_with(SinkLocal::default);
            local.events += state.local.events;
            local.latency.merge(&state.local.latency);
        }
        if args.op_live[target.op_index].fetch_sub(1, Ordering::AcqRel) == 1 {
            args.op_done[target.op_index].store(true, Ordering::Release);
        }
    }
    // Last replica out marks the operator done, releasing consumers.
    if args.op_live[args.op_index].fetch_sub(1, Ordering::AcqRel) == 1 {
        args.op_done[args.op_index].store(true, Ordering::Release);
    }
    args.live_replicas.fetch_sub(1, Ordering::Relaxed);
    sink_local
}

fn run_spout(args: &mut ReplicaArgs) {
    let op = brisk_dag::OperatorId(args.op_index);
    let mut spout = match args.app.runtime(op) {
        OperatorRuntime::Spout(f) => f(args.ctx),
        _ => unreachable!("kind checked by validate()"),
    };
    let mut since_flush = 0u32;
    let mut backoff = Backoff::with_profile(args.backoff_profile);
    loop {
        if args.stop.load(Ordering::Relaxed) || args.collector.output_closed {
            break;
        }
        match spout.next(&mut args.collector) {
            SpoutStatus::Emitted(_) => {
                backoff.reset();
                since_flush += 1;
                if since_flush >= args.config.flush_every {
                    args.collector.flush_all();
                    since_flush = 0;
                }
            }
            SpoutStatus::Idle => {
                args.collector.flush_all();
                since_flush = 0;
                backoff.snooze();
            }
            SpoutStatus::Exhausted => break,
        }
    }
}

/// Jumbos drained from one port per consumer poll: enough to amortize the
/// ring's index publish, small enough to keep round-robin port fairness.
const POP_BATCH: usize = 4;

/// Round-robin scan state over a replica's input ports, shared by the poll
/// loop and the shutdown drain check.
struct PortCursor {
    n_ports: usize,
    next: usize,
}

impl PortCursor {
    fn new(n_ports: usize) -> PortCursor {
        PortCursor { n_ports, next: 0 }
    }

    /// Pop up to `max` jumbos from the first non-empty port at or after the
    /// cursor. Returns the port index served, advancing the cursor past it.
    fn poll(
        &mut self,
        ports: &[InputPort],
        out: &mut Vec<JumboTuple>,
        max: usize,
    ) -> Option<usize> {
        for off in 0..self.n_ports {
            let idx = (self.next + off) % self.n_ports;
            if ports[idx].queue.pop_n(out, max) > 0 {
                self.next = (idx + 1) % self.n_ports;
                return Some(idx);
            }
        }
        None
    }

    /// Whether every port is empty (lock-free reads; exact once the
    /// producers have finished).
    fn drained(&self, ports: &[InputPort]) -> bool {
        ports.iter().all(|p| p.queue.is_empty())
    }
}

fn run_bolt(args: &mut ReplicaArgs) -> Option<SinkLocal> {
    let op = brisk_dag::OperatorId(args.op_index);
    let mut bolt = match args.app.runtime(op) {
        OperatorRuntime::Bolt(f) | OperatorRuntime::Sink(f) => f(args.ctx),
        OperatorRuntime::Spout(_) => unreachable!("kind checked by validate()"),
    };
    let mut sink_local = (args.kind == OperatorKind::Sink).then(SinkLocal::default);
    let mut cursor = PortCursor::new(args.ports.len());
    let mut backoff = Backoff::with_profile(args.backoff_profile);
    let mut batch: Vec<JumboTuple> = Vec::with_capacity(POP_BATCH);
    let mut since_flush = 0u32;
    loop {
        match cursor.poll(&args.ports, &mut batch, POP_BATCH) {
            Some(port_idx) => {
                backoff.reset();
                let producer_bytes = args.ports[port_idx].producer_bytes;
                for jumbo in batch.drain(..) {
                    // Injected virtual-NUMA fetch penalty (Formula 2). The
                    // producing replica is read off the jumbo header, since
                    // fan-in (MPSC) ports interleave several producers.
                    if let Some(p) = &args.config.numa_penalty {
                        let ns = p.fetch_ns(
                            jumbo.producer,
                            args.collector.replica(),
                            producer_bytes,
                            jumbo.len(),
                        );
                        spin_ns(ns);
                    }
                    if args.config.extra_cost_ns_per_tuple > 0 {
                        spin_ns(args.config.extra_cost_ns_per_tuple * jumbo.len() as u64);
                    }
                    if let Some(local) = sink_local.as_mut() {
                        let now = args.clock.now_ns();
                        for t in &jumbo.tuples {
                            local.latency.record(now.saturating_sub(t.event_ns) as f64);
                        }
                        local.events += jumbo.len() as u64;
                        // Relaxed aggregate so `run_until_events` can poll.
                        args.sink_progress
                            .events
                            .fetch_add(jumbo.len() as u64, Ordering::Relaxed);
                    }
                    for t in &jumbo.tuples {
                        bolt.execute(t, &mut args.collector);
                    }
                    args.processed[args.op_index].fetch_add(jumbo.len() as u64, Ordering::Relaxed);
                    since_flush += 1;
                    if since_flush >= args.config.flush_every {
                        args.collector.flush_all();
                        since_flush = 0;
                    }
                }
            }
            None => {
                args.collector.flush_all();
                since_flush = 0;
                let producers_done = args
                    .producer_ops
                    .iter()
                    .all(|&p| args.op_done[p].load(Ordering::Acquire));
                if producers_done {
                    if cursor.drained(&args.ports) {
                        break;
                    }
                } else {
                    backoff.snooze();
                }
            }
        }
    }
    bolt.finish(&mut args.collector);
    sink_local
}

/// Busy-wait for approximately `ns` nanoseconds.
fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    let target = Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{DynBolt, DynSpout, SpoutStatus};
    use crate::tuple::Tuple;
    use brisk_dag::{CostProfile, TopologyBuilder, DEFAULT_STREAM};

    struct CountingSpout {
        next: u64,
        limit: u64,
    }
    impl DynSpout for CountingSpout {
        fn next(&mut self, c: &mut Collector) -> SpoutStatus {
            if self.next >= self.limit {
                return SpoutStatus::Exhausted;
            }
            let now = c.now_ns();
            c.emit(DEFAULT_STREAM, Tuple::keyed(self.next, now, self.next));
            self.next += 1;
            SpoutStatus::Emitted(1)
        }
    }

    struct DoublingBolt;
    impl DynBolt for DoublingBolt {
        fn execute(&mut self, t: &Tuple, c: &mut Collector) {
            let v = *t.value::<u64>().expect("u64 payload");
            c.emit(DEFAULT_STREAM, Tuple::keyed(v, t.event_ns, t.key));
            c.emit(DEFAULT_STREAM, Tuple::keyed(v, t.event_ns, t.key));
        }
    }

    struct NullSink;
    impl DynBolt for NullSink {
        fn execute(&mut self, _t: &Tuple, _c: &mut Collector) {}
    }

    fn app(limit: u64) -> AppRuntime {
        let mut b = TopologyBuilder::new("t");
        let s = b.add_spout("s", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        let t = b.build().expect("valid");
        let (s, x, k) = (
            t.find("s").expect("s"),
            t.find("x").expect("x"),
            t.find("k").expect("k"),
        );
        AppRuntime::new(t)
            .spout(s, move |_| CountingSpout { next: 0, limit })
            .bolt(x, |_| DoublingBolt)
            .sink(k, |_| NullSink)
    }

    #[test]
    fn pipeline_delivers_every_tuple_exactly_doubled() {
        let engine =
            Engine::new(app(1000), vec![1, 2, 2], EngineConfig::default()).expect("valid engine");
        let report = engine.run_until_events(2000, Duration::from_secs(20));
        assert_eq!(report.sink_events, 2000, "1000 inputs doubled");
        // Input side: spouts consume nothing, the bolt sees every sentence,
        // the sink consumes the doubled stream.
        assert_eq!(report.processed[0], 0);
        assert_eq!(report.processed[1], 1000);
        assert_eq!(report.processed[2], 2000);
        // Output side: spout emission and sink consumption are reported
        // separately and the doubling shows up between them.
        assert_eq!(report.emitted[0], 1000);
        assert_eq!(report.emitted[1], 2000);
        assert_eq!(report.emitted[2], 0);
        assert!(report.output_rate(0) > 0.0);
        assert!(report.input_rate(2) >= report.output_rate(0));
    }

    #[test]
    fn latency_is_recorded() {
        // [1,2,1] keeps real queue crossings in the pipeline (the bolt's
        // replication blocks fusion on both edges), so sink latency
        // reflects genuine queue dwell time. Fused-sink latency recording
        // is covered by `fusion_ab_is_equivalent_and_removes_every_crossing`.
        let engine =
            Engine::new(app(500), vec![1, 2, 1], EngineConfig::default()).expect("valid engine");
        let report = engine.run_until_events(1000, Duration::from_secs(20));
        assert_eq!(report.latency_ns.count(), 1000);
        assert!(report.latency_ns.percentile(99.0) > 0.0);
    }

    #[test]
    fn small_jumbo_still_correct() {
        let config = EngineConfig {
            jumbo_size: 1,
            ..EngineConfig::default()
        };
        let engine = Engine::new(app(300), vec![1, 1, 1], config).expect("valid engine");
        let report = engine.run_until_events(600, Duration::from_secs(20));
        assert_eq!(report.sink_events, 600);
    }

    #[test]
    fn numa_penalty_slows_remote_plans() {
        // Same app, same replication; one plan collocated, one split across
        // virtual sockets with a large latency. The remote plan must be
        // measurably slower.
        let machine = brisk_numa::MachineBuilder::new("virt")
            .sockets(2)
            .cores_per_socket(8)
            .clock_ghz(1.0)
            .local_latency_ns(50.0)
            .one_hop_latency_ns(20000.0) // exaggerated for test signal
            .max_hop_latency_ns(20000.0)
            .build();
        let mk_engine = |sockets: [usize; 3]| {
            let penalty = NumaPenalty {
                machine: machine.clone(),
                replica_socket: sockets.iter().map(|&s| SocketId(s)).collect(),
                scale: 1.0,
            };
            let config = EngineConfig {
                numa_penalty: Some(penalty),
                ..EngineConfig::default()
            };
            Engine::new(app(3000), vec![1, 1, 1], config).expect("valid engine")
        };
        let local = mk_engine([0, 0, 0]).run_until_events(6000, Duration::from_secs(30));
        let remote = mk_engine([0, 1, 0]).run_until_events(6000, Duration::from_secs(30));
        assert_eq!(local.sink_events, 6000);
        assert_eq!(remote.sink_events, 6000);
        assert!(
            remote.elapsed > local.elapsed,
            "remote {:?} should exceed local {:?}",
            remote.elapsed,
            local.elapsed
        );
    }

    #[test]
    fn with_plan_maps_compressed_vertices_to_replica_sockets() {
        // Multi-operator, multi-replica, compressed graph: replication
        // [2, 5, 1] at compress ratio 3 yields vertices s#0(x2) | x#0(x3),
        // x#1(x2) | k#0(x1). Each vertex's socket must fan out to exactly
        // the consecutive global replica indices it covers.
        use brisk_dag::VertexId;
        let machine = brisk_numa::MachineBuilder::new("map")
            .sockets(3)
            .cores_per_socket(8)
            .clock_ghz(1.0)
            .build();
        let app = app(10);
        let graph = ExecutionGraph::new(&app.topology, &[2, 5, 1], 3);
        assert_eq!(graph.vertex_count(), 4, "compression shape changed");
        let mut placement = brisk_dag::Placement::empty(graph.vertex_count());
        placement.place(VertexId(0), SocketId(1)); // s#0
        placement.place(VertexId(1), SocketId(0)); // x#0
        placement.place(VertexId(2), SocketId(2)); // x#1
        placement.place(VertexId(3), SocketId(1)); // k#0
        let plan = ExecutionPlan {
            replication: vec![2, 5, 1],
            compress_ratio: 3,
            placement,
        };
        let expected: Vec<SocketId> = [1, 1, 0, 0, 0, 2, 2, 1]
            .iter()
            .map(|&s| SocketId(s))
            .collect();
        assert_eq!(plan_replica_sockets(&app.topology, &plan), expected);
        let engine =
            Engine::with_plan(app, &plan, &machine, EngineConfig::default()).expect("valid engine");
        assert_eq!(engine.replica_sockets(), Some(expected.as_slice()));
        // The mapping is what the injected NUMA penalty charges: run it to
        // make sure the wired engine still delivers everything (two spout
        // replicas x 10 inputs, doubled by the bolt).
        let report = engine.run_until_events(u64::MAX, Duration::from_secs(20));
        assert_eq!(report.sink_events, 40);
    }

    #[test]
    fn fusion_ab_is_equivalent_and_removes_every_crossing() {
        // [1,1,1] fuses the whole pipeline into one executor. The A/B must
        // agree on every per-operator counter while the fused run performs
        // zero queue crossings. Running under debug assertions, this also
        // exercises the SPSC tripwires over the rewired graph.
        let run = |fusion: bool| {
            let config = EngineConfig {
                fusion,
                ..EngineConfig::default()
            };
            let engine = Engine::new(app(1000), vec![1, 1, 1], config).expect("valid engine");
            engine.run_until_events(2000, Duration::from_secs(20))
        };
        let fused = run(true);
        let unfused = run(false);
        for report in [&fused, &unfused] {
            assert_eq!(report.sink_events, 2000);
            assert_eq!(report.processed, vec![0, 1000, 2000]);
            assert_eq!(report.emitted, vec![1000, 2000, 0]);
        }
        assert_eq!(
            fused.queue_pushes.iter().sum::<u64>(),
            0,
            "a fully fused chain crosses no queue"
        );
        assert!(
            unfused.queue_pushes.iter().sum::<u64>() > 0,
            "the unfused run must pay real crossings"
        );
        assert_eq!(fused.latency_ns.count(), 2000, "fused sink records latency");
    }

    #[test]
    fn fused_chain_feeds_unfused_consumer_through_queues() {
        // s(1) -> x(1) fuses; x -> k(2) stays queued, pushed from the host
        // thread on behalf of the fused x. The sink replicas must shut down
        // cleanly via x's op_done latch (released by the host).
        let engine =
            Engine::new(app(500), vec![1, 1, 2], EngineConfig::default()).expect("valid engine");
        let report = engine.run_until_events(1000, Duration::from_secs(20));
        assert_eq!(report.sink_events, 1000);
        assert_eq!(report.processed, vec![0, 500, 1000]);
        assert_eq!(report.emitted, vec![500, 1000, 0]);
        assert_eq!(report.queue_pushes[0], 0, "spout->x edge is fused");
        assert!(report.queue_pushes[1] > 0, "x->k edges stay queued");
    }

    fn global_funnel_app(limit: u64) -> AppRuntime {
        let mut b = TopologyBuilder::new("funnel");
        let s = b.add_spout("s", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, k, brisk_dag::Partitioning::Global);
        let t = b.build().expect("valid");
        let (s, k) = (t.find("s").expect("s"), t.find("k").expect("k"));
        AppRuntime::new(t)
            .spout(s, move |ctx| CountingSpout {
                next: ctx.replica as u64 * limit,
                limit: (ctx.replica as u64 + 1) * limit,
            })
            .sink(k, |_| NullSink)
    }

    #[test]
    fn global_funnel_routes_multiple_producers_through_the_mpsc_fabric() {
        // Three spout replicas funnel into one sink replica over a Global
        // edge: under the SPSC preference the engine must upgrade the
        // shared queue to the MPSC ring — the debug tripwires would panic
        // if an SpscQueue ever saw two producers. Every tuple arrives
        // exactly once.
        for kind in [QueueKind::Spsc, QueueKind::Mutex, QueueKind::Mpsc] {
            let config = EngineConfig {
                queue_kind: kind,
                ..EngineConfig::default()
            };
            let engine =
                Engine::new(global_funnel_app(400), vec![3, 1], config).expect("valid engine");
            let report = engine.run_until_events(1200, Duration::from_secs(20));
            assert_eq!(report.sink_events, 1200, "{kind}");
            assert_eq!(report.emitted[0], 1200, "{kind}");
            assert_eq!(report.processed[1], 1200, "{kind}");
        }
    }

    struct BroadcastSpout {
        next: u64,
        limit: u64,
    }
    impl DynSpout for BroadcastSpout {
        fn next(&mut self, c: &mut Collector) -> SpoutStatus {
            if self.next >= self.limit {
                return SpoutStatus::Exhausted;
            }
            let now = c.now_ns();
            c.emit(DEFAULT_STREAM, Tuple::keyed(self.next, now, self.next));
            self.next += 1;
            SpoutStatus::Emitted(1)
        }
    }

    #[test]
    fn broadcast_counts_emitted_once_per_tuple_and_processed_per_copy() {
        // Pins the RunReport accounting semantics on Broadcast fan-out:
        // the producer's `emitted` counts each logical tuple ONCE (not once
        // per target replica), while the consumer side counts every
        // delivered copy — so a 3-replica broadcast shows emitted = N and
        // processed = sink_events = 3N.
        let mut b = TopologyBuilder::new("bc");
        let s = b.add_spout("s", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, k, brisk_dag::Partitioning::Broadcast);
        let t = b.build().expect("valid");
        let (s, k) = (t.find("s").expect("s"), t.find("k").expect("k"));
        let app = AppRuntime::new(t)
            .spout(s, |_| BroadcastSpout {
                next: 0,
                limit: 600,
            })
            .sink(k, |_| NullSink);
        let engine = Engine::new(app, vec![1, 3], EngineConfig::default()).expect("valid engine");
        let report = engine.run_until_events(1800, Duration::from_secs(20));
        assert_eq!(report.emitted[0], 600, "one count per tuple, not per copy");
        assert_eq!(report.processed[1], 1800, "each replica counts its copy");
        assert_eq!(report.sink_events, 1800);
        // Crossings ship per (jumbo, target queue): three consumer queues
        // mean at least three pushes, and never fewer than the stalls.
        assert!(report.queue_pushes[0] >= 3);
        assert!(report.queue_full_events[0] <= report.queue_pushes[0]);
    }

    fn forward_app(limit: u64) -> AppRuntime {
        // spout -> x over Forward (pairwise-fusable at equal counts),
        // x -> k over Shuffle.
        let mut b = TopologyBuilder::new("fwd");
        let s = b.add_spout("s", CostProfile::trivial());
        let x = b.add_bolt("x", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, x, brisk_dag::Partitioning::Forward);
        b.connect_shuffle(x, k);
        let t = b.build().expect("valid");
        let (s, x, k) = (
            t.find("s").expect("s"),
            t.find("x").expect("x"),
            t.find("k").expect("k"),
        );
        AppRuntime::new(t)
            .spout(s, move |ctx| CountingSpout {
                next: ctx.replica as u64 * limit,
                limit: (ctx.replica as u64 + 1) * limit,
            })
            .bolt(x, |_| DoublingBolt)
            .sink(k, |_| NullSink)
    }

    #[test]
    fn forward_pairwise_fusion_ab_matches_and_silences_the_edge() {
        // 3:3 Forward pairs fuse: the A/B must agree on every counter
        // while the fused run's spout pushes nothing (its only edge is
        // fused); the hosted x instances still push to the sink queue.
        let run = |fusion: bool| {
            let config = EngineConfig {
                fusion,
                ..EngineConfig::default()
            };
            let engine =
                Engine::new(forward_app(400), vec![3, 3, 1], config).expect("valid engine");
            engine.run_until_events(2400, Duration::from_secs(20))
        };
        let fused = run(true);
        let unfused = run(false);
        for report in [&fused, &unfused] {
            assert_eq!(report.sink_events, 2400);
            assert_eq!(report.processed, vec![0, 1200, 2400]);
            assert_eq!(report.emitted, vec![1200, 2400, 0]);
        }
        assert_eq!(fused.queue_pushes[0], 0, "fused Forward edge is silent");
        assert!(fused.queue_pushes[1] > 0, "hosted x still pushes to k");
        assert!(unfused.queue_pushes[0] > 0, "unfused pairs pay crossings");
    }

    #[test]
    fn forward_with_unequal_counts_degrades_to_shuffle_without_fusing() {
        // 4 producers into 2 consumers: the pairing is meaningless, so the
        // edge degrades to Shuffle's even spread — every tuple arrives
        // exactly once, nothing fuses (counts differ), and the model's
        // work-conserving pooling matches what the engine executes.
        let engine =
            Engine::new(forward_app(250), vec![4, 2, 1], EngineConfig::default()).expect("valid");
        let report = engine.run_until_events(2000, Duration::from_secs(20));
        assert_eq!(report.sink_events, 2000);
        assert_eq!(report.processed[1], 1000);
        assert!(report.queue_pushes[0] > 0, "4:2 Forward stays queued");
    }

    /// Sink that asserts every tuple it sees hashes to its own replica
    /// index — the aligned-KeyBy pairing contract.
    struct ResidueAssertingSink {
        replica: usize,
        replicas: usize,
    }
    impl DynBolt for ResidueAssertingSink {
        fn execute(&mut self, t: &Tuple, _c: &mut Collector) {
            assert_eq!(
                (Tuple::mix_key(t.key) % self.replicas as u64) as usize,
                self.replica,
                "key {} leaked to replica {}",
                t.key,
                self.replica
            );
        }
    }

    /// Bolt that re-emits its input under the same key (key-preserving).
    struct KeyKeepingBolt;
    impl DynBolt for KeyKeepingBolt {
        fn execute(&mut self, t: &Tuple, c: &mut Collector) {
            let v = *t.value::<u64>().expect("u64 payload");
            c.emit(DEFAULT_STREAM, Tuple::keyed(v + 1, t.event_ns, t.key));
        }
    }

    #[test]
    fn aligned_keyby_pairwise_fusion_preserves_key_routing() {
        // s -> a (KeyBy) -> k (KeyBy), a key-preserving, [1, 2, 2]: the
        // a->k edge fuses pairwise, and every inline delivery must carry a
        // key belonging to that replica's shard — the sink instances
        // assert it tuple by tuple (a violation panics the host thread).
        let mut b = TopologyBuilder::new("aligned");
        let s = b.add_spout("s", CostProfile::trivial());
        let a = b.add_bolt("a", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect(s, DEFAULT_STREAM, a, brisk_dag::Partitioning::KeyBy);
        b.connect(a, DEFAULT_STREAM, k, brisk_dag::Partitioning::KeyBy);
        b.set_key_preserving(a);
        let t = b.build().expect("valid");
        let (s, a, k) = (
            t.find("s").expect("s"),
            t.find("a").expect("a"),
            t.find("k").expect("k"),
        );
        let app = AppRuntime::new(t)
            .spout(s, |_| CountingSpout {
                next: 0,
                limit: 1000,
            })
            .bolt(a, |_| KeyKeepingBolt)
            .sink(k, |ctx| ResidueAssertingSink {
                replica: ctx.replica,
                replicas: ctx.replicas,
            });
        let engine = Engine::new(app, vec![1, 2, 2], EngineConfig::default()).expect("valid");
        let report = engine.run_until_events(1000, Duration::from_secs(20));
        assert_eq!(report.sink_events, 1000);
        assert_eq!(report.processed, vec![0, 1000, 1000]);
        assert_eq!(report.queue_pushes[1], 0, "a->k fused pairwise");
        assert!(report.queue_pushes[0] > 0, "1:2 head stays queued");
        assert_eq!(report.latency_ns.count(), 1000, "fused sinks record");
    }

    #[test]
    fn rejects_bad_replication() {
        assert!(Engine::new(app(10), vec![1, 1], EngineConfig::default()).is_err());
        assert!(Engine::new(app(10), vec![1, 0, 1], EngineConfig::default()).is_err());
    }

    #[test]
    fn exhausted_spouts_end_the_run_before_the_event_target() {
        // 100 inputs can only ever produce 200 sink events; asking for more
        // must return as soon as the pipeline drains, not burn the timeout.
        let engine =
            Engine::new(app(100), vec![1, 1, 1], EngineConfig::default()).expect("valid engine");
        let t0 = Instant::now();
        let report = engine.run_until_events(u64::MAX, Duration::from_secs(30));
        assert_eq!(report.sink_events, 200);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "drained pipeline should return early, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn run_for_duration_terminates() {
        let engine =
            Engine::new(app(u64::MAX), vec![1, 1, 1], EngineConfig::default()).expect("valid");
        let report = engine.run_for(Duration::from_millis(200));
        assert!(report.sink_events > 0);
        assert!(report.throughput > 0.0);
    }
}
