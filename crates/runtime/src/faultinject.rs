//! Deterministic fault injection for supervision testing.
//!
//! A [`FaultPlan`] describes *where* faults fire — "panic on the Nth tuple
//! processed by replica `r` of operator `op`", or "sleep `d` on a schedule
//! of tuples" — and [`FaultPlan::instrument`] wraps the matching operator
//! factories of an [`AppRuntime`] so the faults fire at exactly those
//! points, run after run, under every scheduler, queue fabric and fusion
//! setting. Trigger state lives in `Arc`s created at instrument time, so a
//! restarted replica shares the same trigger and an already-fired panic
//! never re-fires.
//!
//! Injected wrappers panic *before* invoking the inner operator, so the
//! poison tuple never half-executes, and they opt in to explicit state
//! handoff ([`DynBolt::recover`] / [`DynSpout::recover`] return `true`):
//! a restart keeps the inner operator instance — and, for spouts, the
//! generation cursor — making post-fault counter vectors deterministic.

use crate::batch::TupleView;
use crate::operator::{
    AppRuntime, BoltContext, Collector, DynBolt, DynSpout, OperatorRuntime, SpoutStatus,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

/// Panic payloads produced by injected faults start with this prefix;
/// [`silence_injected_panics`] filters on it.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault";

#[derive(Clone)]
struct PanicSpec {
    op: usize,
    replica: usize,
    /// 1-based invocation ordinal the panic fires on.
    nth: u64,
    seen: Arc<AtomicU64>,
    fired: Arc<AtomicBool>,
}

#[derive(Clone)]
struct DelaySpec {
    op: usize,
    replica: usize,
    /// Sleep on every invocation where `seen % every == 0` (0 disables).
    every: u64,
    /// Sleep once, on exactly this 1-based invocation (0 disables).
    nth: u64,
    delay: Duration,
    seen: Arc<AtomicU64>,
}

/// A deterministic fault schedule over an application's operators.
///
/// ```
/// use brisk_runtime::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .panic_on_nth(2, 0, 30) // 30th tuple of op 2, replica 0
///     .delay_every(4, 0, 8, Duration::from_micros(50));
/// assert_eq!(plan.panic_count(), 1);
/// ```
#[derive(Clone, Default)]
pub struct FaultPlan {
    panics: Vec<PanicSpec>,
    delays: Vec<DelaySpec>,
}

impl FaultPlan {
    /// An empty plan (instrumenting with it is a no-op).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Panic on the `nth` (1-based) invocation of operator `op`'s replica
    /// `replica` — the `nth` tuple executed by a bolt/sink, or the `nth`
    /// `next` call of a spout (fired *before* the spout generates, so no
    /// input is lost across the restart).
    pub fn panic_on_nth(mut self, op: usize, replica: usize, nth: u64) -> FaultPlan {
        self.panics.push(PanicSpec {
            op,
            replica,
            nth: nth.max(1),
            seen: Arc::new(AtomicU64::new(0)),
            fired: Arc::new(AtomicBool::new(false)),
        });
        self
    }

    /// Sleep `delay` on every `every`-th invocation of operator `op`'s
    /// replica `replica` (a deterministic slow-operator emulation).
    pub fn delay_every(mut self, op: usize, replica: usize, every: u64, delay: Duration) -> Self {
        self.delays.push(DelaySpec {
            op,
            replica,
            every: every.max(1),
            nth: 0,
            delay,
            seen: Arc::new(AtomicU64::new(0)),
        });
        self
    }

    /// Sleep `delay` once, on exactly the `nth` (1-based) invocation of
    /// operator `op`'s replica `replica` — a one-shot stall emulation for
    /// watchdog tests.
    pub fn delay_on_nth(mut self, op: usize, replica: usize, nth: u64, delay: Duration) -> Self {
        self.delays.push(DelaySpec {
            op,
            replica,
            every: 0,
            nth: nth.max(1),
            delay,
            seen: Arc::new(AtomicU64::new(0)),
        });
        self
    }

    /// Number of scheduled panics.
    pub fn panic_count(&self) -> usize {
        self.panics.len()
    }

    /// Wrap the factories of every operator this plan targets, so the
    /// returned app fires the scheduled faults deterministically.
    pub fn instrument(&self, mut app: AppRuntime) -> AppRuntime {
        let n = app.topology.operator_count();
        for op in 0..n {
            let panics: Vec<PanicSpec> =
                self.panics.iter().filter(|p| p.op == op).cloned().collect();
            let delays: Vec<DelaySpec> =
                self.delays.iter().filter(|d| d.op == op).cloned().collect();
            if panics.is_empty() && delays.is_empty() {
                continue;
            }
            let runtime = app.runtimes[op]
                .take()
                .expect("instrument before validate: operator has no implementation");
            app.runtimes[op] = Some(match runtime {
                OperatorRuntime::Spout(f) => OperatorRuntime::Spout(wrap_spout(f, panics, delays)),
                OperatorRuntime::Bolt(f) => OperatorRuntime::Bolt(wrap_bolt(f, panics, delays)),
                OperatorRuntime::Sink(f) => OperatorRuntime::Sink(wrap_bolt(f, panics, delays)),
            });
        }
        app
    }
}

type SpoutFactory = Box<dyn Fn(BoltContext) -> Box<dyn DynSpout> + Send + Sync>;
type BoltFactory = Box<dyn Fn(BoltContext) -> Box<dyn DynBolt> + Send + Sync>;

fn wrap_spout(inner: SpoutFactory, panics: Vec<PanicSpec>, delays: Vec<DelaySpec>) -> SpoutFactory {
    Box::new(move |ctx| {
        Box::new(InjectedSpout {
            inner: inner(ctx),
            panics: panics
                .iter()
                .filter(|p| p.replica == ctx.replica)
                .cloned()
                .collect(),
            delays: delays
                .iter()
                .filter(|d| d.replica == ctx.replica)
                .cloned()
                .collect(),
        })
    })
}

fn wrap_bolt(inner: BoltFactory, panics: Vec<PanicSpec>, delays: Vec<DelaySpec>) -> BoltFactory {
    Box::new(move |ctx| {
        Box::new(InjectedBolt {
            inner: inner(ctx),
            panics: panics
                .iter()
                .filter(|p| p.replica == ctx.replica)
                .cloned()
                .collect(),
            delays: delays
                .iter()
                .filter(|d| d.replica == ctx.replica)
                .cloned()
                .collect(),
        })
    })
}

/// Advance every trigger by one invocation; sleep scheduled delays, then
/// fire a scheduled panic (at most once per spec, across restarts).
fn tick(panics: &[PanicSpec], delays: &[DelaySpec]) {
    for d in delays {
        let n = d.seen.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = (d.every > 0 && n % d.every == 0) || (d.nth > 0 && n == d.nth);
        if fire {
            std::thread::sleep(d.delay);
        }
    }
    for p in panics {
        let n = p.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if n == p.nth && !p.fired.swap(true, Ordering::SeqCst) {
            panic!(
                "{INJECTED_PANIC_PREFIX}: op {} replica {} invocation {}",
                p.op, p.replica, n
            );
        }
    }
}

struct InjectedSpout {
    inner: Box<dyn DynSpout>,
    panics: Vec<PanicSpec>,
    delays: Vec<DelaySpec>,
}

impl DynSpout for InjectedSpout {
    fn next(&mut self, collector: &mut Collector) -> SpoutStatus {
        tick(&self.panics, &self.delays);
        self.inner.next(collector)
    }

    fn recover(&mut self) -> bool {
        true // keep the inner generation cursor across restarts
    }
}

struct InjectedBolt {
    inner: Box<dyn DynBolt>,
    panics: Vec<PanicSpec>,
    delays: Vec<DelaySpec>,
}

impl DynBolt for InjectedBolt {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        tick(&self.panics, &self.delays);
        self.inner.execute(tuple, collector);
    }

    // `consume` is intentionally NOT forwarded to the inner bolt: the
    // default drains the batch through `execute` above, which is what
    // makes the fault trigger fire once per *tuple* (deterministic
    // ordinals) rather than once per batch.

    fn finish(&mut self, collector: &mut Collector) {
        self.inner.finish(collector);
    }

    fn recover(&mut self) -> bool {
        true // keep inner operator state across restarts
    }
}

/// Install a process-wide panic hook that swallows the backtrace spam of
/// *injected* panics (they are expected and caught by the supervisor)
/// while delegating every other panic to the previous hook. Idempotent.
pub fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if msg.starts_with(INJECTED_PANIC_PREFIX) {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_fire_once_and_share_state_across_instances() {
        let plan = FaultPlan::new().panic_on_nth(0, 0, 3);
        let spec = plan.panics[0].clone();
        // Two wrapper "instances" sharing the trigger, as across a restart.
        let a = vec![spec.clone()];
        let b = vec![spec];
        tick(&a, &[]);
        tick(&a, &[]);
        let hit = std::panic::catch_unwind(|| tick(&a, &[]));
        assert!(hit.is_err(), "third invocation panics");
        // The restarted instance sees fired=true: no re-fire ever.
        for _ in 0..10 {
            tick(&b, &[]);
        }
    }

    #[test]
    fn delay_schedules_do_not_panic() {
        let plan = FaultPlan::new()
            .delay_every(0, 0, 2, Duration::from_micros(1))
            .delay_on_nth(0, 0, 3, Duration::from_micros(1));
        for _ in 0..8 {
            tick(&[], &plan.delays);
        }
    }
}
