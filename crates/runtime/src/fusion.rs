//! Executor-level operator fusion: run a fused-away consumer inline.
//!
//! When a [`brisk_dag::FusionPlan`] collapses a 1:1 collocated
//! producer→consumer edge, the consumer stops being an executor of its own:
//! its operator instance moves *into the producer's thread* as a
//! [`FusedTarget`] attached to the producer's [`Collector`]. An emit on a
//! fused stream then calls the downstream operator's `execute` directly —
//! no jumbo accumulation, no queue push/pop, no poll/back-off loop, no
//! fetch-cost injection — while the downstream operator keeps its **own**
//! collector for everything it emits, so chains compose (a fused bolt can
//! itself host further fused targets) and unfused downstream edges keep
//! their normal queue wiring.
//!
//! Accounting stays per logical operator: each target tracks the tuples it
//! consumed inline and (for sinks) its latency histogram; the engine merges
//! these into the [`crate::engine::RunReport`] after the host thread joins,
//! exactly as it does for real replicas. A fused operator has one instance
//! **per replica pair** (fusion requires equal replica counts; the
//! single-replica chain is the n = 1 case), each riding host replica `i`'s
//! collector. Shutdown therefore counts instances down through the shared
//! `op_live` counter exactly like real replicas do — only the **last**
//! host replica to exit releases the fused operator's `op_done` latch, so
//! unfused downstream consumers never stop while a sibling pair is still
//! emitting.

use crate::batch::TupleView;
use crate::engine::EngineShared;
use crate::operator::{BoltContext, Collector, DynBolt};
use crate::supervise::{panic_message, FaultKind};
use brisk_metrics::Histogram;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, relaxed sink progress counter — only used so
/// `Engine::run_until_events` can poll from the driver thread. The
/// authoritative per-replica metrics ([`SinkLocal`]) are thread-local (or
/// fused-target-local) and merged after join.
pub(crate) struct SinkProgress {
    pub(crate) events: AtomicU64,
}

/// Per-sink metrics owned by one replica thread (or one fused sink target)
/// for the whole run and merged into the report after the thread joins.
#[derive(Default)]
pub(crate) struct SinkLocal {
    pub(crate) events: u64,
    pub(crate) latency: Histogram,
}

/// Sink bookkeeping of a fused-away sink operator.
pub(crate) struct FusedSinkState {
    pub(crate) local: SinkLocal,
    pub(crate) progress: Arc<SinkProgress>,
    /// Clock value shared by a batch of deliveries: the queued sink path
    /// reads the clock once per jumbo (64 tuples by default) and stamps
    /// the whole batch with it; refreshing every [`CLOCK_BATCH`] inline
    /// deliveries keeps the fused path's latency resolution — and its
    /// per-tuple cost — equivalent instead of paying one `Instant::now`
    /// per tuple on the hottest path.
    cached_now_ns: u64,
    until_refresh: u32,
}

/// Deliveries per clock refresh on the fused sink path; mirrors the
/// default jumbo size the queued path amortizes its clock read over.
const CLOCK_BATCH: u32 = 64;

impl FusedSinkState {
    pub(crate) fn new(progress: Arc<SinkProgress>) -> FusedSinkState {
        FusedSinkState {
            local: SinkLocal::default(),
            progress,
            cached_now_ns: 0,
            until_refresh: 0,
        }
    }
}

/// A fused-away consumer operator, hosted inline by a producer's
/// [`Collector`].
pub(crate) struct FusedTarget {
    /// Logical operator index of the fused-away consumer.
    pub(crate) op_index: usize,
    /// Stream names of the fused producer→consumer edges — one entry per
    /// fused logical edge, so parallel edges on the same stream deliver
    /// once per edge, mirroring queue wiring.
    pub(crate) streams: Vec<String>,
    /// The consumer's operator instance, executed inline.
    pub(crate) bolt: Box<dyn DynBolt>,
    /// The consumer's own output stage (recurses into further fused
    /// targets down the chain).
    pub(crate) collector: Collector,
    /// Input-side tuples consumed inline (merged into
    /// `RunReport::processed`).
    pub(crate) processed: u64,
    /// Present when the fused consumer is a sink.
    pub(crate) sink: Option<FusedSinkState>,
    /// Construction context of the fused operator instance — the restart
    /// path re-instances through the registered factory with it.
    pub(crate) ctx: BoltContext,
    /// Shared run state: fault records and quarantine counters.
    pub(crate) shared: Arc<EngineShared>,
    /// Logical operator index of the chain host (fault attribution names
    /// the fused op, with the host recorded alongside).
    pub(crate) host_op: usize,
    /// Contained panics so far, checked against the restart policy.
    pub(crate) attempts: u32,
    /// Restart budget exhausted: deliveries dead-letter (quarantine) and
    /// the host winds down via its `output_closed` check.
    pub(crate) dead: bool,
}

impl FusedTarget {
    /// Consume one tuple inline: run the operator under a panic guard and
    /// record sink metrics (if terminal). The tuple arrives as a borrowed
    /// [`TupleView`] straight off the producer's stack — fusion's whole
    /// point is that nothing crosses a queue (or touches a slab) here.
    ///
    /// A contained panic quarantines the tuple and attributes a
    /// [`FaultKind::FusedPanic`] to the *fused* operator, not the host.
    /// Restart is inline (re-instance or `recover()`) with no backoff: a
    /// fused target runs on its host's thread, and sleeping here would
    /// stall the host and everything it feeds.
    pub(crate) fn deliver(&mut self, tuple: &TupleView<'_>) {
        if self.dead {
            // Dead-letter accounting keeps conservation exact: every tuple
            // the producer emitted is either processed or quarantined.
            self.shared.quarantined[self.op_index].fetch_add(1, Ordering::Relaxed);
            return;
        }
        let bolt = &mut self.bolt;
        let collector = &mut self.collector;
        match catch_unwind(AssertUnwindSafe(|| bolt.execute(tuple, collector))) {
            Ok(()) => {
                self.processed += 1;
                // Per-replica rate signal for the elastic controller: an
                // inline delivery counts against the fused operator's own
                // replica, exactly like a queued pop would.
                self.shared.replica_tuples
                    [self.shared.replica_base[self.op_index] + self.ctx.replica]
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(sink) = &mut self.sink {
                    if sink.until_refresh == 0 {
                        sink.cached_now_ns = self.collector.now_ns();
                        sink.until_refresh = CLOCK_BATCH;
                    }
                    sink.until_refresh -= 1;
                    sink.local
                        .latency
                        .record(sink.cached_now_ns.saturating_sub(tuple.event_ns) as f64);
                    sink.local.events += 1;
                    // Relaxed aggregate so `run_until_events` can poll.
                    sink.progress.events.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                self.shared.quarantined[self.op_index].fetch_add(1, Ordering::Relaxed);
                self.attempts += 1;
                let granted = self
                    .shared
                    .config
                    .restart
                    .delay_for(self.attempts)
                    .is_some();
                self.shared.record_fault(
                    self.op_index,
                    self.ctx.replica,
                    FaultKind::FusedPanic {
                        host_op: self.host_op,
                    },
                    message,
                    granted,
                );
                if granted {
                    self.shared.restarts[self.op_index].fetch_add(1, Ordering::Relaxed);
                    if !self.bolt.recover() {
                        self.bolt = self.shared.new_bolt_instance(self.op_index, self.ctx);
                    }
                } else {
                    self.dead = true;
                }
            }
        }
    }

    /// Shutdown `finish` for the fused operator, panic-guarded so a faulty
    /// finalizer is recorded instead of unwinding through the host's
    /// teardown. Skipped for a dead instance. During a migration pause the
    /// instance hands its state out via `extract_state` instead — same
    /// contract as a real replica's drain.
    pub(crate) fn finish(&mut self) {
        if self.dead {
            return;
        }
        let bolt = &mut self.bolt;
        if self.shared.harvesting() {
            match catch_unwind(AssertUnwindSafe(|| bolt.extract_state())) {
                Ok(entries) => self
                    .shared
                    .harvest_state(self.op_index, self.ctx.replica, entries),
                Err(payload) => self.shared.record_fault(
                    self.op_index,
                    self.ctx.replica,
                    FaultKind::FusedPanic {
                        host_op: self.host_op,
                    },
                    panic_message(payload.as_ref()),
                    false,
                ),
            }
            return;
        }
        let collector = &mut self.collector;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| bolt.finish(collector))) {
            self.shared.record_fault(
                self.op_index,
                self.ctx.replica,
                FaultKind::FusedPanic {
                    host_op: self.host_op,
                },
                panic_message(payload.as_ref()),
                false,
            );
        }
    }
}
