//! Deterministic workload drift for elastic-runtime testing.
//!
//! A [`DriftPlan`] describes *when* an operator's per-tuple cost changes —
//! "after the first `N` tuples across all replicas of operator `op`, every
//! further tuple costs an extra `d`" — and [`DriftPlan::instrument`] wraps
//! the matching operator factories of an [`AppRuntime`] so the cost step
//! fires at exactly that point, run after run, under every scheduler,
//! queue fabric and fusion setting. The trigger counter lives in an `Arc`
//! created at instrument time and is shared by every replica (and every
//! restart), so drift onset is a property of *global* progress, not of any
//! one replica's tuple count.
//!
//! Unlike [`crate::faultinject::FaultPlan`]'s wrappers, drift wrappers
//! forward [`DynSpout::extract_state`] / [`DynBolt::install_state`] to the
//! inner operator: drift exists to exercise the elastic controller, whose
//! migrations must be able to hand the *inner* operator's state across
//! epochs.

use crate::batch::TupleView;
use crate::operator::{
    AppRuntime, BoltContext, Collector, DynBolt, DynSpout, OperatorRuntime, SpoutStatus, StateEntry,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone)]
struct SlowSpec {
    /// Global (cross-replica) invocation count after which drift is live.
    after: u64,
    /// Extra busy-spin cost per invocation once drift is live.
    extra: Duration,
    seen: Arc<AtomicU64>,
}

/// A deterministic workload-drift schedule over an application's operators.
///
/// ```
/// use brisk_runtime::DriftPlan;
/// use std::time::Duration;
///
/// // Op 2 becomes 3µs/tuple more expensive after 10k tuples.
/// let plan = DriftPlan::new().slow_after(2, 10_000, Duration::from_micros(3));
/// assert_eq!(plan.step_count(), 1);
/// ```
#[derive(Clone, Default)]
pub struct DriftPlan {
    slows: Vec<(usize, SlowSpec)>,
}

impl DriftPlan {
    /// An empty plan (instrumenting with it is a no-op).
    pub fn new() -> DriftPlan {
        DriftPlan::default()
    }

    /// After `after_tuples` total invocations of operator `op` (summed
    /// across its replicas), every further invocation busy-spins `extra`
    /// before running the inner operator — a step change in per-tuple cost
    /// that shifts the bottleneck the optimizer planned for.
    pub fn slow_after(mut self, op: usize, after_tuples: u64, extra: Duration) -> DriftPlan {
        self.slows.push((
            op,
            SlowSpec {
                after: after_tuples,
                extra,
                seen: Arc::new(AtomicU64::new(0)),
            },
        ));
        self
    }

    /// Number of scheduled cost steps.
    pub fn step_count(&self) -> usize {
        self.slows.len()
    }

    /// Wrap the factories of every operator this plan targets, so the
    /// returned app drifts deterministically.
    pub fn instrument(&self, mut app: AppRuntime) -> AppRuntime {
        let n = app.topology.operator_count();
        for op in 0..n {
            let slows: Vec<SlowSpec> = self
                .slows
                .iter()
                .filter(|(o, _)| *o == op)
                .map(|(_, s)| s.clone())
                .collect();
            if slows.is_empty() {
                continue;
            }
            let runtime = app.runtimes[op]
                .take()
                .expect("instrument before validate: operator has no implementation");
            app.runtimes[op] = Some(match runtime {
                OperatorRuntime::Spout(f) => OperatorRuntime::Spout(wrap_spout(f, slows)),
                OperatorRuntime::Bolt(f) => OperatorRuntime::Bolt(wrap_bolt(f, slows)),
                OperatorRuntime::Sink(f) => OperatorRuntime::Sink(wrap_bolt(f, slows)),
            });
        }
        app
    }
}

type SpoutFactory = Box<dyn Fn(BoltContext) -> Box<dyn DynSpout> + Send + Sync>;
type BoltFactory = Box<dyn Fn(BoltContext) -> Box<dyn DynBolt> + Send + Sync>;

fn wrap_spout(inner: SpoutFactory, slows: Vec<SlowSpec>) -> SpoutFactory {
    Box::new(move |ctx| {
        Box::new(DriftSpout {
            inner: inner(ctx),
            slows: slows.clone(),
        })
    })
}

fn wrap_bolt(inner: BoltFactory, slows: Vec<SlowSpec>) -> BoltFactory {
    Box::new(move |ctx| {
        Box::new(DriftBolt {
            inner: inner(ctx),
            slows: slows.clone(),
        })
    })
}

/// Advance every trigger by one invocation; busy-spin the live steps.
/// Spinning (not sleeping) models a genuinely more expensive computation:
/// the replica's core stays occupied, so back-pressure and the measured
/// per-replica rates respond exactly as they would to real cost drift.
fn drift_tick(slows: &[SlowSpec]) {
    for s in slows {
        let n = s.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if n > s.after {
            let end = Instant::now() + s.extra;
            while Instant::now() < end {
                std::hint::spin_loop();
            }
        }
    }
}

struct DriftSpout {
    inner: Box<dyn DynSpout>,
    slows: Vec<SlowSpec>,
}

impl DynSpout for DriftSpout {
    fn next(&mut self, collector: &mut Collector) -> SpoutStatus {
        drift_tick(&self.slows);
        self.inner.next(collector)
    }

    fn recover(&mut self) -> bool {
        self.inner.recover()
    }

    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        self.inner.extract_state()
    }

    fn install_state(&mut self, entries: Vec<StateEntry>) {
        self.inner.install_state(entries);
    }
}

struct DriftBolt {
    inner: Box<dyn DynBolt>,
    slows: Vec<SlowSpec>,
}

impl DynBolt for DriftBolt {
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector) {
        drift_tick(&self.slows);
        self.inner.execute(tuple, collector);
    }

    // `consume` is intentionally NOT forwarded: the default drains the
    // batch through `execute` above, so the cost step applies per *tuple*
    // — a per-batch spin would understate drift by the batch factor.

    fn finish(&mut self, collector: &mut Collector) {
        self.inner.finish(collector);
    }

    fn recover(&mut self) -> bool {
        self.inner.recover()
    }

    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        self.inner.extract_state()
    }

    fn install_state(&mut self, entries: Vec<StateEntry>) {
        self.inner.install_state(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_counts_globally_across_clones() {
        let plan = DriftPlan::new().slow_after(0, 3, Duration::from_nanos(1));
        let spec = plan.slows[0].1.clone();
        let a = vec![spec.clone()];
        let b = vec![spec.clone()];
        // Two replicas sharing one trigger: 2 + 2 invocations cross the
        // threshold of 3 on the fourth tick overall.
        drift_tick(&a);
        drift_tick(&b);
        drift_tick(&a);
        assert_eq!(spec.seen.load(Ordering::Relaxed), 3);
        drift_tick(&b);
        assert_eq!(spec.seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn empty_plan_is_noop_on_step_count() {
        assert_eq!(DriftPlan::new().step_count(), 0);
    }
}
