//! Lock-free multi-producer single-consumer ring — the fan-in fabric.
//!
//! Operator fusion (and, later, work-stealing) makes several producer
//! *threads* feed one consumer queue — the one wiring shape the SPSC ring's
//! contract forbids. This ring reuses the SPSC fabric's padded power-of-two
//! skeleton but lets any number of threads push:
//!
//! * **CAS-claimed slots**: producers claim a monotonically increasing
//!   *ticket* with a compare-and-swap on the shared tail, then write their
//!   slot privately. Contention is a single CAS retry loop — no lock, no
//!   condvar.
//! * **Per-slot sequence numbers** (Vyukov-style): each slot carries an
//!   atomic sequence the writer bumps to `ticket + 1` after the payload
//!   write, so the consumer observes slots strictly in ticket order and a
//!   slot is never read half-written. On wrap, the consumer re-arms the
//!   slot at `ticket + ring`, handing it back to the producer side.
//! * **Cache-line isolation**: the shared tail and the consumer's head
//!   live on separate 128-byte lines ([`CachePadded`], shared with
//!   `spsc.rs`), so consumer progress does not invalidate the producers'
//!   CAS line and vice versa.
//!
//! Ordering guarantees: globally, items pop in ticket order (the order
//! producers won their CAS); per producer, pushes pop in that producer's
//! program order (FIFO per producer). Capacity is an exact back-pressure
//! bound: `push` blocks on the same spin → yield → park ladder
//! ([`Backoff`]) as the SPSC ring.
//!
//! Close/drain semantics match the other fabrics: `close` fails subsequent
//! pushes and wakes blocked producers within one park interval; items
//! already in the ring remain poppable so shutdown drains every in-flight
//! tuple.
//!
//! The single-consumer half of the contract still holds: at most one
//! thread may pop at a time (debug builds carry the same best-effort
//! tripwire as the SPSC ring). `len`, `is_empty`, `close` and `is_closed`
//! are safe from any thread.

use crate::spsc::{Backoff, BackoffProfile, CachePadded, PushError};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One ring slot: the Vyukov sequence plus the payload cell.
struct Slot<T> {
    /// `ticket` while free for the producer that claims `ticket`;
    /// `ticket + 1` once written; `ticket + ring` after consumption
    /// (= free for the producer that claims `ticket + ring`).
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer single-consumer ring buffer.
///
/// See the [module docs](self) for the design and contract.
pub struct MpscQueue<T> {
    slots: Box<[Slot<T>]>,
    /// `ring_size - 1`; ring size is `capacity.next_power_of_two()`.
    mask: usize,
    /// User-visible capacity (exact back-pressure bound, ≤ ring size).
    capacity: usize,
    /// Wait-ladder shape for blocking-push waits.
    profile: BackoffProfile,
    /// Next ticket to claim; CAS-incremented by producers.
    tail: CachePadded<AtomicUsize>,
    /// Next ticket to pop; written only by the consumer.
    head: CachePadded<AtomicUsize>,
    closed: AtomicBool,
    /// Debug-build tripwire catching concurrent consumers (producers are
    /// allowed to be concurrent here — that is the point of the fabric).
    #[cfg(debug_assertions)]
    pop_active: AtomicBool,
}

// SAFETY: slot ownership is handed between threads through the per-slot
// sequence protocol (Acquire/Release pairs on `seq`); the indices are
// atomics. `T: Send` is required because items cross threads.
unsafe impl<T: Send> Send for MpscQueue<T> {}
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> MpscQueue<T> {
    /// Ring holding at most `capacity` items, with the default
    /// blocking-push park interval.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MpscQueue<T> {
        MpscQueue::with_profile(
            capacity,
            BackoffProfile::dedicated(Duration::from_micros(100)),
        )
    }

    /// Ring with an explicit wait-ladder shape for blocking-push waits.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_profile(capacity: usize, profile: BackoffProfile) -> MpscQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        let ring = capacity.next_power_of_two();
        let slots = (0..ring)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        MpscQueue {
            slots,
            mask: ring - 1,
            capacity,
            profile,
            tail: CachePadded(AtomicUsize::new(0)),
            head: CachePadded(AtomicUsize::new(0)),
            closed: AtomicBool::new(false),
            #[cfg(debug_assertions)]
            pop_active: AtomicBool::new(false),
        }
    }

    /// Capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking push. Safe from any number of threads concurrently.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed(item));
        }
        let tail = loop {
            // Exact capacity bound: head only grows, so a ticket admitted
            // here stays within `capacity` outstanding items. Load order
            // matters: reading head (Acquire) *before* tail guarantees
            // `head ≤ tail` for the snapshots — a stale tail read before a
            // fresh head could make the subtraction underflow and report a
            // drained ring as Full. Reading head before the CAS keeps the
            // check conservative.
            let head = self.head.0.load(Ordering::Acquire);
            let tail = self.tail.0.load(Ordering::Relaxed);
            if tail.wrapping_sub(head) >= self.capacity {
                return Err(PushError::Full(item));
            }
            match self.tail.0.compare_exchange_weak(
                tail,
                tail.wrapping_add(1),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break tail,
                Err(_) => continue,
            }
        };
        let slot = &self.slots[tail & self.mask];
        // The capacity check plus the consumer's seq-before-head publishing
        // order guarantee the slot is already re-armed for this ticket.
        debug_assert_eq!(slot.seq.load(Ordering::Acquire), tail);
        // SAFETY: the CAS above made this thread the unique owner of
        // ticket `tail`; the consumer will not read the slot until the
        // Release store below.
        unsafe { (*slot.value.get()).write(item) };
        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Blocking push: walks the spin → yield → park ladder while the ring
    /// is full (back-pressure). Returns `Err(item)` if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        self.push_tracked(item).map(|_| ())
    }

    /// Blocking push that additionally reports whether it found the ring
    /// full and had to wait (`Ok(true)`) — the engine's queue-pressure
    /// signal.
    pub fn push_tracked(&self, item: T) -> Result<bool, T> {
        let mut item = match self.try_push(item) {
            Ok(()) => return Ok(false),
            Err(PushError::Closed(i)) => return Err(i),
            Err(PushError::Full(i)) => i,
        };
        let mut backoff = Backoff::with_profile(self.profile);
        loop {
            backoff.snooze();
            match self.try_push(item) {
                Ok(()) => return Ok(true),
                Err(PushError::Closed(i)) => return Err(i),
                Err(PushError::Full(i)) => item = i,
            }
        }
    }

    /// Push with a deadline computed before any waiting. `Err(item)` on
    /// close *or* timeout.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), T> {
        let deadline = Instant::now() + timeout;
        let mut item = item;
        let mut backoff = Backoff::with_profile(self.profile);
        loop {
            match self.try_push(item) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(i)) => return Err(i),
                Err(PushError::Full(i)) => {
                    if Instant::now() >= deadline {
                        return Err(i);
                    }
                    item = i;
                    backoff.snooze();
                }
            }
        }
    }

    /// Blocking batch push. The batch is claimed item by item (other
    /// producers may interleave), so only per-producer FIFO holds across a
    /// batch. `Err(remaining)` if the queue closes mid-batch.
    pub fn push_n(&self, items: Vec<T>) -> Result<(), Vec<T>> {
        let mut iter = items.into_iter();
        while let Some(item) = iter.next() {
            if let Err(rest) = self.push(item) {
                let mut remaining = vec![rest];
                remaining.extend(iter);
                return Err(remaining);
            }
        }
        Ok(())
    }

    /// Non-blocking pop. Consumer-side only.
    pub fn try_pop(&self) -> Option<T> {
        #[cfg(debug_assertions)]
        let _role = RoleGuard::enter(&self.pop_active);
        let head = self.head.0.load(Ordering::Relaxed);
        let slot = &self.slots[head & self.mask];
        if slot.seq.load(Ordering::Acquire) != head.wrapping_add(1) {
            return None; // ticket `head` not yet published
        }
        // SAFETY: the writer of ticket `head` published the payload with
        // the Release store observed above.
        let item = unsafe { (*slot.value.get()).assume_init_read() };
        // Re-arm the slot for the producer that will claim ticket
        // `head + ring`, *before* publishing the new head — a producer that
        // observes the new head must find the slot already re-armed.
        slot.seq
            .store(head.wrapping_add(self.mask + 1), Ordering::Release);
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Batch pop: moves up to `max` contiguous published items into `out`
    /// with a single head publish. Returns how many were popped.
    /// Consumer-side only.
    pub fn pop_n(&self, out: &mut Vec<T>, max: usize) -> usize {
        #[cfg(debug_assertions)]
        let _role = RoleGuard::enter(&self.pop_active);
        let head = self.head.0.load(Ordering::Relaxed);
        let mut n = 0usize;
        while n < max {
            let ticket = head.wrapping_add(n);
            let slot = &self.slots[ticket & self.mask];
            if slot.seq.load(Ordering::Acquire) != ticket.wrapping_add(1) {
                break;
            }
            // SAFETY: ticket published by its writer (Acquire pairs with
            // the writer's Release store on `seq`).
            out.push(unsafe { (*slot.value.get()).assume_init_read() });
            slot.seq
                .store(ticket.wrapping_add(self.mask + 1), Ordering::Release);
            n += 1;
        }
        if n > 0 {
            self.head.0.store(head.wrapping_add(n), Ordering::Release);
        }
        n
    }

    /// Number of queued (claimed) items right now — approximate while
    /// producers are in flight, exact when they are quiescent (the
    /// engine's drain check).
    pub fn len(&self) -> usize {
        let head = self.head.0.load(Ordering::Acquire);
        let tail = self.tail.0.load(Ordering::Acquire);
        tail.wrapping_sub(head).min(self.capacity)
    }

    /// Whether the queue is currently empty (no claimed tickets).
    pub fn is_empty(&self) -> bool {
        let head = self.head.0.load(Ordering::Acquire);
        let tail = self.tail.0.load(Ordering::Acquire);
        head == tail
    }

    /// Close the queue: subsequent pushes fail; blocked producers observe
    /// the flag within one park interval. Queued items remain poppable
    /// (drain-on-shutdown).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether [`MpscQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        // Drop published items still in flight. `&mut self` proves
        // exclusivity; unpublished (claimed-but-unwritten) tickets cannot
        // exist here because every producer borrow has ended.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let mut i = head;
        while i != tail {
            // SAFETY: slots in [head, tail) hold initialized items.
            unsafe { (*self.slots[i & self.mask].value.get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// Debug-build guard asserting the single-consumer half of the contract.
#[cfg(debug_assertions)]
struct RoleGuard<'a>(&'a AtomicBool);

#[cfg(debug_assertions)]
impl<'a> RoleGuard<'a> {
    fn enter(flag: &'a AtomicBool) -> RoleGuard<'a> {
        assert!(
            !flag.swap(true, Ordering::Acquire),
            "concurrent consumers detected: MpscQueue allows only one consumer at a time"
        );
        RoleGuard(flag)
    }
}

#[cfg(debug_assertions)]
impl Drop for RoleGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_producer() {
        let q = MpscQueue::new(8);
        for i in 0..5 {
            q.push(i).expect("open");
        }
        for i in 0..5 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn capacity_is_exact_even_when_rounded_up() {
        // 6 rounds to an 8-slot ring but back-pressure binds at 6.
        let q = MpscQueue::new(6);
        for i in 0..6 {
            assert!(q.try_push(i).is_ok());
        }
        assert!(matches!(q.try_push(99), Err(PushError::Full(99))));
        assert_eq!(q.len(), 6);
        assert_eq!(q.try_pop(), Some(0));
        assert!(q.try_push(99).is_ok());
    }

    #[test]
    fn close_wakes_blocked_producer_and_preserves_drain() {
        let q = Arc::new(MpscQueue::new(1));
        q.push(0u8).expect("open");
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert!(handle.join().expect("no panic").is_err());
        assert_eq!(q.try_pop(), Some(0));
        assert!(q.push(2).is_err());
    }

    #[test]
    fn push_timeout_expires() {
        let q = MpscQueue::new(1);
        q.push(1u8).expect("open");
        let t0 = Instant::now();
        assert!(q.push_timeout(2, Duration::from_millis(20)).is_err());
        assert!(t0.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn batch_ops_roundtrip() {
        let q = MpscQueue::new(16);
        q.push_n((0..10).collect()).expect("open");
        assert_eq!(q.len(), 10);
        let mut out = Vec::new();
        assert_eq!(q.pop_n(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.pop_n(&mut out, 100), 6);
        assert_eq!(out[4..], [4, 5, 6, 7, 8, 9]);
        assert_eq!(q.pop_n(&mut out, 1), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn wraparound_many_times() {
        let q = MpscQueue::new(4);
        for round in 0..1000u64 {
            q.push(round).expect("open");
            assert_eq!(q.try_pop(), Some(round));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drop_releases_in_flight_items() {
        let q = MpscQueue::new(8);
        let marker = Arc::new(());
        for _ in 0..5 {
            q.push(Arc::clone(&marker)).expect("open");
        }
        q.try_pop();
        drop(q);
        assert_eq!(Arc::strong_count(&marker), 1, "all queued clones dropped");
    }

    #[test]
    fn four_producers_exactly_once_and_fifo_per_producer() {
        let q = Arc::new(MpscQueue::new(16));
        let producers = 4usize;
        let per_producer = 5_000u32;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    q.push((p, i)).expect("open");
                }
            }));
        }
        let mut seen = vec![Vec::new(); producers];
        let expect = producers as u32 * per_producer;
        let mut got = Vec::new();
        let mut count = 0;
        while count < expect {
            let n = q.pop_n(&mut got, 8);
            if n == 0 {
                std::thread::yield_now();
                continue;
            }
            for (p, i) in got.drain(..) {
                seen[p].push(i);
                count += 1;
            }
        }
        for h in handles {
            h.join().expect("no panic");
        }
        assert!(q.is_empty());
        // Exactly once + FIFO per producer: each producer's stream arrives
        // complete and in order.
        for s in seen {
            let expect: Vec<u32> = (0..per_producer).collect();
            assert_eq!(s, expect);
        }
    }
}
