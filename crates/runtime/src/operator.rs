//! The user-facing operator API (Storm/Heron-style, per the paper's goal of
//! API compatibility) and the per-task output collector.
//!
//! Applications implement [`DynSpout`] for sources and [`DynBolt`] for
//! bolts/sinks, and register a *factory* per operator so each replica gets
//! its own state. The [`Collector`] is the task's partition controller +
//! output batching stage: values sent through the typed
//! [`Collector::send`] path are routed per edge strategy and accumulated
//! into arena-backed [`crate::batch::Batch`]es that ship to the consumer
//! queues as [`JumboTuple`] container handles.

use crate::batch::{Batch, BatchBuilder, BatchCursor, SlabPool, TupleView};
use crate::fusion::FusedTarget;
use crate::partition::{Partitioner, RouteTargets};
use crate::queue::{QueueKind, ReplicaQueue};
use crate::scheduler::WakeHub;
use crate::spsc::PushError;
use crate::tuple::{JumboTuple, Tuple};
use brisk_dag::{LogicalTopology, OperatorId, OperatorKind};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

/// One unit of migratable operator state: a routing key plus an opaque
/// byte payload the operator itself encodes/decodes.
///
/// The key is what plan migration routes on: for keyed (KeyBy) operators
/// it must be the same `u64` partition key the operator's *input* tuples
/// carry, so redistributing entries with the partitioner's routing
/// function lands each entry on the replica that will receive that key's
/// tuples under the new plan. Spouts use their replica index as the key —
/// a source's stream position is bound to the replica, not to a tuple key.
pub type StateEntry = (u64, Vec<u8>);

/// Result of one spout invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpoutStatus {
    /// The spout emitted this many tuples and has more available.
    Emitted(usize),
    /// Nothing available right now; the executor backs off briefly.
    Idle,
    /// The source is exhausted; the spout replica shuts down.
    Exhausted,
}

/// A source operator replica.
pub trait DynSpout: Send {
    /// Produce the next tuple(s) into `collector`.
    fn next(&mut self, collector: &mut Collector) -> SpoutStatus;

    /// Called after this replica panicked and the restart policy granted a
    /// restart. Return `true` to keep this instance (explicit state
    /// handoff); the default `false` discards it and the supervisor builds
    /// a fresh instance from the operator factory.
    fn recover(&mut self) -> bool {
        false
    }

    /// Hand this replica's source position out for plan migration
    /// (generalizing [`DynSpout::recover`]'s in-place handoff to an
    /// across-engines one): called after the replica drains during a
    /// migration pause. Return `Some` to move the state (the entries are
    /// re-installed via [`DynSpout::install_state`] into the successor
    /// engine's replica); the default `None` marks the spout stateless for
    /// migration purposes.
    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        None
    }

    /// Install migrated state into a freshly constructed replica, before it
    /// produces anything. The default ignores the entries.
    fn install_state(&mut self, _entries: Vec<StateEntry>) {}
}

/// A processing (bolt) or terminal (sink) operator replica.
///
/// Input arrives batch-at-a-time through [`DynBolt::consume`]; the default
/// implementation drains the batch cursor through the per-tuple
/// [`DynBolt::execute`], so most operators only implement `execute`.
/// Batch-wholesale operators (e.g. a parser that wants the whole `&[T]`
/// payload slice with a single per-batch downcast) override `consume`
/// instead and honor the [`BatchCursor`] completion contract.
pub trait DynBolt: Send {
    /// Process one input tuple, emitting zero or more outputs.
    fn execute(&mut self, tuple: &TupleView<'_>, collector: &mut Collector);

    /// Process one input batch. Returning normally counts the entire batch
    /// as processed; on panic, the cursor's [`BatchCursor::done`] count
    /// pins the poison tuple for quarantine and the remainder is replayed.
    fn consume(&mut self, input: &BatchCursor<'_>, collector: &mut Collector) {
        while let Some(view) = input.next() {
            self.execute(&view, collector);
        }
    }

    /// Called once at shutdown so stateful bolts can emit final results.
    fn finish(&mut self, _collector: &mut Collector) {}

    /// Called after this replica panicked and the restart policy granted a
    /// restart. Return `true` to keep this instance (explicit state
    /// handoff); the default `false` discards it and the supervisor builds
    /// a fresh instance from the operator factory.
    fn recover(&mut self) -> bool {
        false
    }

    /// Hand this replica's accumulated state out for plan migration: called
    /// instead of [`DynBolt::finish`] after the replica drains during a
    /// migration pause (finals belong to the true end of stream, which the
    /// successor engine reaches). Keyed operators must key each entry by
    /// the partition key of the input tuples it was built from, so
    /// redistribution tracks the new plan's routing. The default `None`
    /// marks the bolt stateless for migration purposes.
    fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
        None
    }

    /// Install migrated state into a freshly constructed replica, before it
    /// processes anything. A replica may receive entries harvested from
    /// several predecessor replicas (rescaling), so implementations should
    /// merge rather than overwrite. The default ignores the entries.
    fn install_state(&mut self, _entries: Vec<StateEntry>) {}
}

/// Construction context handed to operator factories.
#[derive(Debug, Clone, Copy)]
pub struct BoltContext {
    /// Replica index within the operator (0-based).
    pub replica: usize,
    /// Total replicas of the operator under the active plan.
    pub replicas: usize,
}

/// Factory for one operator's replicas.
pub enum OperatorRuntime {
    /// Spout factory.
    Spout(Box<dyn Fn(BoltContext) -> Box<dyn DynSpout> + Send + Sync>),
    /// Bolt factory.
    Bolt(Box<dyn Fn(BoltContext) -> Box<dyn DynBolt> + Send + Sync>),
    /// Sink factory (a bolt that does not emit; the engine also counts its
    /// inputs for throughput/latency reporting).
    Sink(Box<dyn Fn(BoltContext) -> Box<dyn DynBolt> + Send + Sync>),
}

impl OperatorRuntime {
    fn kind(&self) -> OperatorKind {
        match self {
            OperatorRuntime::Spout(_) => OperatorKind::Spout,
            OperatorRuntime::Bolt(_) => OperatorKind::Bolt,
            OperatorRuntime::Sink(_) => OperatorKind::Sink,
        }
    }
}

/// A logical topology paired with executable operator implementations.
pub struct AppRuntime {
    /// The application DAG.
    pub topology: LogicalTopology,
    pub(crate) runtimes: Vec<Option<OperatorRuntime>>,
}

impl AppRuntime {
    /// Start wiring implementations for `topology`.
    pub fn new(topology: LogicalTopology) -> AppRuntime {
        let n = topology.operator_count();
        AppRuntime {
            topology,
            runtimes: (0..n).map(|_| None).collect(),
        }
    }

    /// Register a spout implementation.
    pub fn spout<S, F>(mut self, op: OperatorId, factory: F) -> Self
    where
        S: DynSpout + 'static,
        F: Fn(BoltContext) -> S + Send + Sync + 'static,
    {
        self.runtimes[op.0] = Some(OperatorRuntime::Spout(Box::new(move |ctx| {
            Box::new(factory(ctx))
        })));
        self
    }

    /// Register a bolt implementation.
    pub fn bolt<B, F>(mut self, op: OperatorId, factory: F) -> Self
    where
        B: DynBolt + 'static,
        F: Fn(BoltContext) -> B + Send + Sync + 'static,
    {
        self.runtimes[op.0] = Some(OperatorRuntime::Bolt(Box::new(move |ctx| {
            Box::new(factory(ctx))
        })));
        self
    }

    /// Register a sink implementation.
    pub fn sink<B, F>(mut self, op: OperatorId, factory: F) -> Self
    where
        B: DynBolt + 'static,
        F: Fn(BoltContext) -> B + Send + Sync + 'static,
    {
        self.runtimes[op.0] = Some(OperatorRuntime::Sink(Box::new(move |ctx| {
            Box::new(factory(ctx))
        })));
        self
    }

    /// Check that every operator has an implementation of the right kind.
    pub fn validate(&self) -> Result<(), String> {
        for (id, spec) in self.topology.operators() {
            match &self.runtimes[id.0] {
                None => return Err(format!("operator '{}' has no implementation", spec.name)),
                Some(rt) if rt.kind() != spec.kind => {
                    return Err(format!(
                        "operator '{}' is declared {:?} but implemented as {:?}",
                        spec.name,
                        spec.kind,
                        rt.kind()
                    ))
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// The registered factory for `op`.
    ///
    /// # Panics
    /// Panics when the operator has no implementation (call
    /// [`AppRuntime::validate`] first).
    pub fn runtime(&self, op: OperatorId) -> &OperatorRuntime {
        self.runtimes[op.0]
            .as_ref()
            .expect("operator implementation missing")
    }
}

/// One output buffer: the partitioner plus per-consumer batch accumulation
/// and the destination queues.
pub(crate) struct OutputEdge {
    /// Index into `LogicalTopology::edges`.
    pub logical_edge: usize,
    /// Stream name this edge subscribes to.
    pub stream: String,
    pub partitioner: Partitioner,
    /// One queue per consumer replica (empty slots for `Global` non-zero
    /// replicas are simply absent: queue list is indexed by consumer
    /// replica). Each queue has this task as its only producer, which is
    /// what makes the SPSC fabric exact.
    pub queues: Vec<Arc<ReplicaQueue<JumboTuple>>>,
    /// Global replica index of the consumer behind each queue — the
    /// core-pool scheduler's wake-on-push target (unused, but cheap to
    /// carry, under thread-per-replica execution).
    pub consumers: Vec<usize>,
    /// Broadcast edges accumulate into *one* shared builder: the sealed
    /// slab is shared across every consumer by refcount bump.
    pub broadcast: bool,
    /// Open typed accumulation: one builder per consumer, or a single
    /// shared builder on broadcast edges.
    pub builders: Vec<BatchBuilder>,
    /// Sealed batches awaiting a successful queue push, per consumer
    /// (non-blocking mode parks stalled jumbos here; order is preserved).
    pub sealed: Vec<VecDeque<JumboTuple>>,
}

impl OutputEdge {
    pub(crate) fn new(
        logical_edge: usize,
        stream: String,
        partitioner: Partitioner,
        queues: Vec<Arc<ReplicaQueue<JumboTuple>>>,
        consumers: Vec<usize>,
        pool: &Arc<SlabPool>,
    ) -> OutputEdge {
        let n = queues.len();
        let broadcast = partitioner.is_broadcast();
        let builder_count = if broadcast { 1 } else { n };
        OutputEdge {
            logical_edge,
            stream,
            partitioner,
            queues,
            consumers,
            broadcast,
            builders: (0..builder_count)
                .map(|_| BatchBuilder::new(Arc::clone(pool)))
                .collect(),
            sealed: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }
}

/// How [`Collector::flush_one`] treats a full destination queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlushMode {
    /// Thread-per-replica execution: the producer thread blocks on the
    /// queue's wait ladder — blocking *is* the back-pressure signal.
    Blocking,
    /// Core-pool execution: the push is non-blocking; a full queue hands
    /// the jumbo back, the tuples return to their buffer, and the task
    /// reports [`Collector::is_backpressured`] so its worker can yield to
    /// other tasks instead of stalling the whole pool.
    NonBlocking,
}

/// The task-side emit interface: routes, batches and ships tuples — and,
/// when operator fusion is active, runs fused-away consumers inline.
pub struct Collector {
    producer_replica: usize,
    jumbo_size: usize,
    edges: Vec<OutputEdge>,
    /// Shared-arrangement groups: for each edge, the *follower* broadcast
    /// edges on the same stream whose consumers receive handles to this
    /// (leader) edge's sealed slabs. Followers keep no builders of their
    /// own — the arrangement is materialized once, however many
    /// downstream queries subscribe.
    shared_followers: Vec<Vec<usize>>,
    /// Inverse map: `Some(leader)` when this edge rides another edge's
    /// builder instead of accumulating itself.
    follower_of: Vec<Option<usize>>,
    /// Fused-away consumers executed inline on emit (operator fusion).
    fused: Vec<FusedTarget>,
    clock: Arc<EngineClock>,
    /// Full-queue policy: block the thread (thread-per-replica) or hand
    /// the jumbo back so the task can yield (core pool).
    mode: FlushMode,
    /// Core-pool wake hub: a successful push marks the consumer's task
    /// ready. `None` under thread-per-replica execution.
    wake_hub: Option<Arc<WakeHub>>,
    /// True while some destination buffer could not flush (non-blocking
    /// mode only); cleared when [`Collector::flush_all`] gets everything
    /// through.
    backpressured: bool,
    /// Tracks a contiguous back-pressure episode so `stalled_flushes`
    /// counts each episode once, not once per retry sweep.
    in_stall: bool,
    /// Tuples emitted by this task (all streams).
    pub emitted: u64,
    /// Jumbo tuples successfully pushed to destination queues — the queue
    /// crossings operator fusion exists to eliminate (fused edges never
    /// touch this counter).
    pub flushes: u64,
    /// Queue-pressure counter: jumbo flushes that found their destination
    /// queue already full, i.e. moments this task was (about to be) blocked
    /// by back-pressure from a slow consumer. Counted once per stalled
    /// flush (one jumbo to one destination queue), so a broadcast edge
    /// with `n` slow consumers records `n` distinct stalls per sweep.
    pub stalled_flushes: u64,
    /// True once any destination queue is closed (engine shutting down),
    /// including queues downstream of a fused chain.
    pub output_closed: bool,
}

impl Collector {
    pub(crate) fn new(
        producer_replica: usize,
        jumbo_size: usize,
        mut edges: Vec<OutputEdge>,
        clock: Arc<EngineClock>,
    ) -> Collector {
        // Same-stream Broadcast edges form one shared-arrangement group:
        // the first (leader) edge's builder accumulates the stream once
        // and every member ships handles to the same sealed slab, so an
        // index consumed by several downstream queries seals one
        // maintainer's worth of slabs, not one per query.
        let mut shared_followers: Vec<Vec<usize>> = vec![Vec::new(); edges.len()];
        let mut follower_of: Vec<Option<usize>> = vec![None; edges.len()];
        for i in 0..edges.len() {
            if !edges[i].broadcast || follower_of[i].is_some() {
                continue;
            }
            for j in (i + 1)..edges.len() {
                if edges[j].broadcast
                    && follower_of[j].is_none()
                    && edges[j].stream == edges[i].stream
                {
                    follower_of[j] = Some(i);
                    shared_followers[i].push(j);
                }
            }
        }
        for (j, leader) in follower_of.iter().enumerate() {
            if leader.is_some() {
                edges[j].builders.clear();
            }
        }
        Collector {
            producer_replica,
            jumbo_size,
            edges,
            shared_followers,
            follower_of,
            fused: Vec::new(),
            clock,
            mode: FlushMode::Blocking,
            wake_hub: None,
            backpressured: false,
            in_stall: false,
            emitted: 0,
            flushes: 0,
            stalled_flushes: 0,
            output_closed: false,
        }
    }

    /// Attach fused-away consumers to run inline on emit.
    pub(crate) fn with_fused(mut self, fused: Vec<FusedTarget>) -> Collector {
        self.fused = fused;
        self
    }

    /// Switch to core-pool flushing: non-blocking pushes plus wake-on-push
    /// through `hub`. Applied to every collector in a task's fused subtree
    /// by the engine when the `CorePool` scheduler is selected.
    pub(crate) fn with_wake_hub(mut self, hub: Arc<WakeHub>) -> Collector {
        self.mode = FlushMode::NonBlocking;
        self.wake_hub = Some(hub);
        self
    }

    /// Whether some destination buffer is waiting on a full queue
    /// (non-blocking mode), anywhere in this collector's fused subtree.
    /// The owning task must yield instead of consuming more input.
    pub(crate) fn is_backpressured(&self) -> bool {
        self.backpressured || self.fused.iter().any(|t| t.collector.is_backpressured())
    }

    /// Nanoseconds since engine start (used by spouts to stamp event time).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Global replica index of the task that owns this collector.
    pub fn replica(&self) -> usize {
        self.producer_replica
    }

    /// Send `value` on `stream` with explicit event time and partitioning
    /// key — the typed batch path. The value lands directly in a typed,
    /// arena-backed batch builder (no per-tuple `Arc`); routing, batching
    /// and back-pressure are handled here, and the call may block when a
    /// destination queue is full. Fused edges bypass all of that: the
    /// downstream operator runs inline on a borrowed view, right here in
    /// the producer's thread.
    pub fn send<T: Any + Send + Sync + Clone>(
        &mut self,
        stream: &str,
        value: T,
        event_ns: u64,
        key: u64,
    ) {
        self.send_impl(stream, value, event_ns, key);
    }

    /// Send on the default stream (key 0 is conventional for un-keyed
    /// values, but any key works).
    pub fn send_default<T: Any + Send + Sync + Clone>(
        &mut self,
        value: T,
        event_ns: u64,
        key: u64,
    ) {
        self.send_impl(brisk_dag::DEFAULT_STREAM, value, event_ns, key);
    }

    /// Emit a pre-wrapped legacy tuple on `stream`.
    #[deprecated(
        since = "0.8.0",
        note = "use the typed batch path: `Collector::send(stream, value, event_ns, key)`"
    )]
    pub fn emit(&mut self, stream: &str, tuple: Tuple) {
        let (event_ns, key) = (tuple.event_ns, tuple.key);
        self.send_impl(stream, tuple, event_ns, key);
    }

    /// Emit a pre-wrapped legacy tuple on the default stream.
    #[deprecated(
        since = "0.8.0",
        note = "use the typed batch path: `Collector::send_default(value, event_ns, key)`"
    )]
    pub fn emit_default(&mut self, tuple: Tuple) {
        let (event_ns, key) = (tuple.event_ns, tuple.key);
        self.send_impl(brisk_dag::DEFAULT_STREAM, tuple, event_ns, key);
    }

    fn send_impl<T: Any + Send + Sync + Clone>(
        &mut self,
        stream: &str,
        value: T,
        event_ns: u64,
        key: u64,
    ) {
        self.emitted += 1;
        // Fused consumers run first, on a borrowed view — after this the
        // value is moved into a batch builder.
        for fi in 0..self.fused.len() {
            let deliveries = self.fused[fi]
                .streams
                .iter()
                .filter(|s| s.as_str() == stream)
                .count();
            if deliveries == 0 {
                continue;
            }
            let view = TupleView::of_value(&value, event_ns, key);
            let target = &mut self.fused[fi];
            for _ in 0..deliveries {
                target.deliver(&view);
            }
            // A dead fused target (restart budget exhausted) can no longer
            // make progress: treat it like a closed output so the host
            // winds down instead of feeding a black hole forever.
            if target.collector.output_closed || target.dead {
                self.output_closed = true;
            }
        }
        // Queue edges: move the value into the last subscribing edge,
        // clone only for the earlier ones (single-subscriber streams — the
        // common case — never clone). Shared-arrangement followers don't
        // count: their consumers are served by the leader's builder.
        let mut remaining = self
            .edges
            .iter()
            .enumerate()
            .filter(|(i, e)| e.stream == stream && self.follower_of[*i].is_none())
            .count();
        if remaining == 0 {
            return;
        }
        let mut value = Some(value);
        for ei in 0..self.edges.len() {
            if self.edges[ei].stream != stream || self.follower_of[ei].is_some() {
                continue;
            }
            remaining -= 1;
            let v = if remaining == 0 {
                value.take().expect("last subscriber takes the value")
            } else {
                value.as_ref().expect("value present").clone()
            };
            self.push_value(ei, v, event_ns, key);
        }
    }

    /// Append one value to edge `ei`'s builder for its routed consumer,
    /// sealing/shipping when a slab fills (or changes element type).
    fn push_value<T: Any + Send + Sync + Clone>(
        &mut self,
        ei: usize,
        value: T,
        event_ns: u64,
        key: u64,
    ) {
        let slot = {
            let e = &mut self.edges[ei];
            if e.broadcast {
                0 // the single shared builder
            } else {
                match e.partitioner.route(key) {
                    RouteTargets::One(t) => t,
                    // Non-broadcast strategies always route to one target.
                    RouteTargets::All(_) => unreachable!("broadcast handled above"),
                }
            }
        };
        if let Some(batch) = self.edges[ei].builders[slot].push(value, event_ns, key) {
            // Heterogeneous stream: the previous (differently typed) slab
            // sealed early. Ship it ahead to preserve order.
            self.enqueue_batch(ei, slot, batch);
        }
        // While non-blocking back-pressure is active, skip the per-send
        // flush attempt: the sealed backlog absorbs the rest of the task's
        // bounded slice and the task-level flush_all retries once the
        // queue drains.
        if self.edges[ei].builders[slot].len() >= self.jumbo_size && !self.backpressured {
            if let Some(batch) = self.edges[ei].builders[slot].seal() {
                self.enqueue_batch(ei, slot, batch);
            }
            self.flush_routed(ei, slot);
        }
    }

    /// Wrap a sealed batch into jumbo(s) on the sealed queue(s). On
    /// broadcast edges every consumer receives a handle to the *same* slab
    /// — the copy is a refcount bump — and shared-arrangement follower
    /// edges on the same stream receive handles to that slab too, each
    /// under its own logical-edge header.
    fn enqueue_batch(&mut self, ei: usize, slot: usize, batch: Batch) {
        let producer = self.producer_replica;
        for fidx in 0..self.shared_followers[ei].len() {
            let fi = self.shared_followers[ei][fidx];
            let e = &mut self.edges[fi];
            for t in 0..e.queues.len() {
                e.sealed[t].push_back(JumboTuple::new(producer, e.logical_edge, batch.clone()));
            }
        }
        let e = &mut self.edges[ei];
        if e.broadcast {
            let last = e.queues.len() - 1;
            for t in 0..last {
                e.sealed[t].push_back(JumboTuple::new(producer, e.logical_edge, batch.clone()));
            }
            e.sealed[last].push_back(JumboTuple::new(producer, e.logical_edge, batch));
        } else {
            e.sealed[slot].push_back(JumboTuple::new(producer, e.logical_edge, batch));
        }
    }

    /// Flush the consumer(s) a sealed batch from builder `slot` landed on.
    fn flush_routed(&mut self, ei: usize, slot: usize) {
        if self.edges[ei].broadcast {
            for t in 0..self.edges[ei].queues.len() {
                self.flush_one(ei, t);
            }
            for fidx in 0..self.shared_followers[ei].len() {
                let fi = self.shared_followers[ei][fidx];
                for t in 0..self.edges[fi].queues.len() {
                    self.flush_one(fi, t);
                }
            }
        } else {
            self.flush_one(ei, slot);
        }
    }

    /// Drain consumer `consumer`'s sealed backlog into its queue.
    fn flush_one(&mut self, edge: usize, consumer: usize) {
        while let Some(jumbo) = self.edges[edge].sealed[consumer].pop_front() {
            match self.mode {
                FlushMode::Blocking => {
                    match self.edges[edge].queues[consumer].push_tracked(jumbo) {
                        Ok(stalled) => {
                            self.flushes += 1;
                            if stalled {
                                self.stalled_flushes += 1;
                            }
                        }
                        Err(_) => self.output_closed = true,
                    }
                }
                FlushMode::NonBlocking => {
                    let e = &mut self.edges[edge];
                    match e.queues[consumer].try_push(jumbo) {
                        Ok(()) => {
                            self.flushes += 1;
                            if let Some(hub) = &self.wake_hub {
                                hub.wake(e.consumers[consumer]);
                            }
                        }
                        Err(PushError::Full(jumbo)) => {
                            // Park the jumbo back at the front (order is
                            // preserved) and report the stall once per
                            // back-pressure episode — the blocking path's
                            // analogue counts once per jumbo that had to
                            // wait.
                            e.sealed[consumer].push_front(jumbo);
                            if !self.in_stall {
                                self.stalled_flushes += 1;
                                self.in_stall = true;
                            }
                            self.backpressured = true;
                            return;
                        }
                        Err(PushError::Closed(_)) => self.output_closed = true,
                    }
                }
            }
        }
    }

    /// Flush every partially filled builder and sealed backlog (periodic
    /// timeout flush and final drain), recursing through fused chains so
    /// their queue-bound output buffers flush on the host's cadence too.
    /// In non-blocking mode this re-attempts stalled jumbos and recomputes
    /// the back-pressure flag: it clears only when everything ships.
    pub fn flush_all(&mut self) {
        self.backpressured = false;
        for ei in 0..self.edges.len() {
            for slot in 0..self.edges[ei].builders.len() {
                if let Some(batch) = self.edges[ei].builders[slot].seal() {
                    self.enqueue_batch(ei, slot, batch);
                }
            }
            for t in 0..self.edges[ei].queues.len() {
                self.flush_one(ei, t);
            }
        }
        if !self.backpressured {
            self.in_stall = false;
        }
        for target in &mut self.fused {
            target.collector.flush_all();
            if target.collector.output_closed {
                self.output_closed = true;
            }
        }
    }

    /// Call `finish` on every fused operator, depth-first down the chain,
    /// so stateful fused bolts can emit their final results at shutdown
    /// (their emissions land before the host's final [`Collector::flush_all`]).
    /// Panic-guarded per target: a faulty `finish` is recorded against the
    /// fused op and does not take the host's teardown down with it.
    pub(crate) fn finish_fused(&mut self) {
        for target in &mut self.fused {
            target.finish();
            target.collector.finish_fused();
        }
    }

    /// Logical operator indexes hosted inline by this collector's fused
    /// subtree (recursive) — the ops whose accounting an emergency teardown
    /// must force-retire alongside the host's own.
    pub(crate) fn hosted_ops(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for target in &self.fused {
            out.push(target.op_index);
            out.extend(target.collector.hosted_ops());
        }
        out
    }

    /// Every destination queue reachable from this collector, including
    /// queues owned by fused targets down the chain — the stall watchdog's
    /// back-pressure disambiguation set.
    pub(crate) fn queue_handles(&self) -> Vec<Arc<ReplicaQueue<JumboTuple>>> {
        let mut out = Vec::new();
        for e in &self.edges {
            for q in &e.queues {
                out.push(Arc::clone(q));
            }
        }
        for target in &self.fused {
            out.extend(target.collector.queue_handles());
        }
        out
    }

    /// Detach the whole fused-target tree (children before parents) so the
    /// engine can merge per-operator counters and sink metrics after the
    /// host thread finishes.
    pub(crate) fn take_fused(&mut self) -> Vec<FusedTarget> {
        let mut out = Vec::new();
        for mut target in std::mem::take(&mut self.fused) {
            out.extend(target.collector.take_fused());
            out.push(target);
        }
        out
    }
}

/// Capture taps returned by [`Collector::capture`]: one `(stream name,
/// queue)` pair per outgoing edge of the captured operator.
pub type CaptureTaps = Vec<(String, Arc<ReplicaQueue<JumboTuple>>)>;

impl Collector {
    /// A standalone collector that *captures* emissions instead of shipping
    /// them to executor queues: one single-consumer queue per outgoing edge
    /// of `op`, with jumbo size 1 so every tuple is immediately visible.
    ///
    /// This is the harness behind operator profiling (the paper prepares an
    /// operator's sample input "by pre-executing all upstream operators")
    /// and behind unit-testing bolts in isolation.
    pub fn capture(
        topology: &LogicalTopology,
        op: OperatorId,
        capacity: usize,
    ) -> (Collector, CaptureTaps) {
        let pool = SlabPool::standalone();
        let mut edges = Vec::new();
        let mut taps = Vec::new();
        for (lei, edge) in topology.edges().iter().enumerate() {
            if edge.from != op {
                continue;
            }
            let queue = Arc::new(ReplicaQueue::new(QueueKind::default(), capacity));
            taps.push((edge.stream.clone(), Arc::clone(&queue)));
            edges.push(OutputEdge::new(
                lei,
                edge.stream.clone(),
                Partitioner::new(edge.partitioning, 1),
                vec![queue],
                vec![0],
                &pool,
            ));
        }
        (
            Collector::new(0, 1, edges, Arc::new(EngineClock::new())),
            taps,
        )
    }
}

/// Monotonic engine clock shared by all tasks.
pub(crate) struct EngineClock {
    start: std::time::Instant,
}

impl EngineClock {
    pub fn new() -> EngineClock {
        EngineClock {
            start: std::time::Instant::now(),
        }
    }

    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_dag::{CostProfile, Partitioning, TopologyBuilder, DEFAULT_STREAM};

    struct NullSpout;
    impl DynSpout for NullSpout {
        fn next(&mut self, _c: &mut Collector) -> SpoutStatus {
            SpoutStatus::Exhausted
        }
    }
    struct NullBolt;
    impl DynBolt for NullBolt {
        fn execute(&mut self, _t: &TupleView<'_>, _c: &mut Collector) {}
    }

    fn topology() -> LogicalTopology {
        let mut b = TopologyBuilder::new("t");
        let s = b.add_spout("s", CostProfile::trivial());
        let k = b.add_sink("k", CostProfile::trivial());
        b.connect_shuffle(s, k);
        b.build().expect("valid")
    }

    #[test]
    fn validate_catches_missing_impl() {
        let t = topology();
        let app = AppRuntime::new(t);
        assert!(app.validate().is_err());
    }

    #[test]
    fn validate_catches_kind_mismatch() {
        let t = topology();
        let s = t.find("s").expect("exists");
        let k = t.find("k").expect("exists");
        let app = AppRuntime::new(t)
            .bolt(s, |_| NullBolt) // spout implemented as bolt: wrong
            .sink(k, |_| NullBolt);
        assert!(app.validate().is_err());
    }

    #[test]
    fn validate_accepts_complete_app() {
        let t = topology();
        let s = t.find("s").expect("exists");
        let k = t.find("k").expect("exists");
        let app = AppRuntime::new(t)
            .spout(s, |_| NullSpout)
            .sink(k, |_| NullBolt);
        assert!(app.validate().is_ok());
    }

    fn shuffle_edge(q: &Arc<ReplicaQueue<JumboTuple>>) -> OutputEdge {
        OutputEdge::new(
            0,
            DEFAULT_STREAM.to_string(),
            Partitioner::new(Partitioning::Shuffle, 1),
            vec![Arc::clone(q)],
            vec![0],
            &crate::batch::SlabPool::standalone(),
        )
    }

    #[test]
    fn collector_batches_into_jumbos() {
        let q = Arc::new(ReplicaQueue::new(QueueKind::default(), 16));
        let edge = shuffle_edge(&q);
        let mut c = Collector::new(0, 4, vec![edge], Arc::new(EngineClock::new()));
        for i in 0..10u32 {
            c.send_default(i, 0, 0);
        }
        // 10 tuples at jumbo size 4: two full jumbos shipped, 2 residual.
        assert_eq!(q.len(), 2);
        c.flush_all();
        assert_eq!(q.len(), 3);
        let j1 = q.try_pop().expect("jumbo");
        assert_eq!(j1.len(), 4);
        // The payloads are a contiguous typed slice: one downcast per batch.
        assert_eq!(j1.batch.payloads::<u32>().expect("typed"), &[0, 1, 2, 3]);
        let j3_len: usize = {
            q.try_pop();
            q.try_pop().expect("residual").len()
        };
        assert_eq!(j3_len, 2);
        assert_eq!(c.emitted, 10);
    }

    #[test]
    fn deprecated_emit_rides_the_batch_fabric() {
        let q = Arc::new(ReplicaQueue::new(QueueKind::default(), 16));
        let edge = shuffle_edge(&q);
        let mut c = Collector::new(0, 2, vec![edge], Arc::new(EngineClock::new()));
        #[allow(deprecated)]
        for i in 0..2u32 {
            c.emit(DEFAULT_STREAM, Tuple::keyed(i, 7, 3));
        }
        let j = q.try_pop().expect("jumbo");
        // Views reach through the legacy tuple's inner Arc payload.
        assert_eq!(j.batch.view(1).value::<u32>(), Some(&1));
        assert_eq!(j.batch.event_ns(0), 7);
        assert_eq!(j.batch.key(1), 3);
    }

    #[test]
    fn heterogeneous_stream_seals_per_type_in_order() {
        let q = Arc::new(ReplicaQueue::new(QueueKind::default(), 16));
        let edge = shuffle_edge(&q);
        let mut c = Collector::new(0, 64, vec![edge], Arc::new(EngineClock::new()));
        c.send_default(1u32, 0, 0);
        c.send_default(2u32, 0, 0);
        c.send_default(String::from("x"), 0, 0);
        c.send_default(3u32, 0, 0);
        c.flush_all();
        // Type switches seal early: three ordered, type-homogeneous batches.
        assert_eq!(
            q.try_pop().expect("u32s").batch.payloads::<u32>(),
            Some(&[1, 2][..])
        );
        assert!(q
            .try_pop()
            .expect("string")
            .batch
            .payloads::<String>()
            .is_some());
        assert_eq!(
            q.try_pop().expect("tail").batch.payloads::<u32>(),
            Some(&[3][..])
        );
    }

    #[test]
    fn broadcast_is_a_refcount_bump() {
        // One slab allocation feeds N destinations: the jumbos popped off
        // the three queues all view the same slab, per-copy accounting
        // (one queue push per destination) is unchanged, and the sealed
        // storage recycles once every handle drops.
        let pool = crate::batch::SlabPool::standalone();
        let queues: Vec<Arc<ReplicaQueue<JumboTuple>>> = (0..3)
            .map(|_| Arc::new(ReplicaQueue::new(QueueKind::default(), 16)))
            .collect();
        let edge = OutputEdge::new(
            0,
            DEFAULT_STREAM.to_string(),
            Partitioner::new(Partitioning::Broadcast, 3),
            queues.clone(),
            vec![0, 1, 2],
            &pool,
        );
        let mut c = Collector::new(0, 4, vec![edge], Arc::new(EngineClock::new()));
        for i in 0..4u64 {
            c.send_default(i, 0, i);
        }
        assert_eq!(c.emitted, 4, "emitted counts logical tuples, not copies");
        assert_eq!(c.flushes, 3, "one queue crossing per destination");
        assert_eq!(pool.stats().allocated(), 1, "one slab for all copies");
        let jumbos: Vec<JumboTuple> = queues
            .iter()
            .map(|q| q.try_pop().expect("jumbo delivered"))
            .collect();
        let slab = jumbos[0].batch.slab_id();
        for j in &jumbos {
            assert_eq!(j.batch.slab_id(), slab, "copies share one slab");
            assert_eq!(j.batch.payloads::<u64>().expect("typed"), &[0, 1, 2, 3]);
        }
        assert_eq!(pool.stats().outstanding(), 1);
        drop(jumbos);
        drop(c);
        assert_eq!(pool.stats().outstanding(), 0, "storage recycled");
    }

    #[test]
    fn shared_stream_broadcast_edges_seal_once() {
        // Two distinct downstream operators subscribe to one arranged
        // stream via Broadcast: the arrangement is built in ONE builder
        // and every consumer replica across both edges pops a handle to
        // the same slab — seals stay one maintainer's worth, however
        // many queries attach.
        let pool = crate::batch::SlabPool::standalone();
        let mk = || Arc::new(ReplicaQueue::new(QueueKind::default(), 16));
        let q_point: Vec<Arc<ReplicaQueue<JumboTuple>>> = (0..2).map(|_| mk()).collect();
        let q_agg: Vec<Arc<ReplicaQueue<JumboTuple>>> = (0..3).map(|_| mk()).collect();
        let point_edge = OutputEdge::new(
            0,
            "arranged".to_string(),
            Partitioner::new(Partitioning::Broadcast, 2),
            q_point.clone(),
            vec![0, 1],
            &pool,
        );
        let agg_edge = OutputEdge::new(
            1,
            "arranged".to_string(),
            Partitioner::new(Partitioning::Broadcast, 3),
            q_agg.clone(),
            vec![2, 3, 4],
            &pool,
        );
        let mut c = Collector::new(
            0,
            4,
            vec![point_edge, agg_edge],
            Arc::new(EngineClock::new()),
        );
        for i in 0..4u64 {
            c.send("arranged", i, 0, i);
        }
        assert_eq!(c.emitted, 4, "emitted counts logical tuples");
        assert_eq!(c.flushes, 5, "one queue crossing per consumer replica");
        assert_eq!(
            pool.stats().allocated() + pool.stats().recycled(),
            1,
            "two query edges share one maintainer's seal"
        );
        let jumbos: Vec<JumboTuple> = q_point
            .iter()
            .chain(q_agg.iter())
            .map(|q| q.try_pop().expect("jumbo delivered"))
            .collect();
        let slab = jumbos[0].batch.slab_id();
        for j in &jumbos {
            assert_eq!(j.batch.slab_id(), slab, "all five copies share one slab");
            assert_eq!(j.batch.payloads::<u64>().expect("typed"), &[0, 1, 2, 3]);
        }
        // Each consumer still sees its own logical edge on the header.
        assert_eq!(jumbos[0].logical_edge, 0);
        assert_eq!(jumbos[4].logical_edge, 1);
        drop(jumbos);
        drop(c);
        assert_eq!(pool.stats().outstanding(), 0, "storage recycled");
    }

    #[test]
    fn collector_ignores_unknown_stream() {
        let mut c = Collector::new(0, 4, Vec::new(), Arc::new(EngineClock::new()));
        c.send("nowhere", 1u8, 0, 0);
        assert_eq!(c.emitted, 1); // counted but dropped (no subscriber)
    }
}
