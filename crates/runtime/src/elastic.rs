//! The elastic controller: a continuous profile → recalibrate → re-plan →
//! migrate loop over a live engine.
//!
//! BriskStream's original life cycle is one-shot — profile operator costs,
//! run RLAS once, execute the plan forever. [`ElasticEngine`] closes the
//! loop: while an engine epoch runs, the controller samples each replica's
//! live tuple and busy-time counters ([`crate::EngineHandle::rates`]),
//! detects when the measured per-operator service times *drift* away from
//! what the cost model predicted for the running plan, re-calibrates the
//! cost model from the measurement
//! ([`brisk_model::recalibrate_from_measurement`]), re-runs RLAS
//! warm-started from the incumbent plan, and — only when the predicted
//! gain clears a migration-cost bar — migrates the running engine onto the
//! new plan without dropping or duplicating a single tuple:
//!
//! 1. **Pause** — [`crate::EngineHandle::request_migration`] flips the
//!    engine into harvest mode and stops the spouts at their next emission
//!    boundary.
//! 2. **Drain** — every bolt keeps consuming until all of its producers
//!    retired *and* its input queues are empty, so nothing in flight is
//!    lost.
//! 3. **Hand off state** — each drained replica surrenders its state
//!    through `extract_state` instead of running its `finish` hook.
//! 4. **Rewire** — a successor engine is built for the new plan over the
//!    *same* [`AppRuntime`]; harvested state is redistributed to the new
//!    replicas (keyed state follows the new KeyBy routing) and staged via
//!    [`Engine::preload_state`].
//! 5. **Resume** — the new epoch starts; preloaded state is installed into
//!    each operator before it consumes or produces anything.
//!
//! Skew-aware KeyBy re-weighting rides along: when the measured
//! per-replica load of a keyed consumer is visibly skewed, the successor
//! engine re-weights that operator's key-space shares
//! ([`Engine::set_keyby_weights`]) so hot replicas shed keys to cold ones.

use crate::engine::{plan_replica_sockets, NumaPenalty};
use crate::operator::StateEntry;
use crate::partition::keyby_slot_table;
use crate::partition::route_keyed;
use crate::{AppRuntime, Engine, EngineConfig, HarvestedState, RunLimit, RunReport};
use brisk_dag::{ExecutionGraph, ExecutionPlan, LogicalTopology, OperatorId, Partitioning};
use brisk_model::{recalibrate_from_measurement, Evaluator, MeasuredOperator};
use brisk_numa::Machine;
use brisk_rlas::{optimize, ScalingOptions};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for the elastic control loop.
#[derive(Debug, Clone)]
pub struct ElasticOptions {
    /// How often the controller samples live per-replica rates.
    pub sample_interval: Duration,
    /// Relative drift that arms a re-plan: the maximum over operators of
    /// `|measured service / (host factor × modelled service) − 1|`,
    /// host-factor-normalized so a uniform engine-vs-model bias (which a
    /// migration cannot fix) never fires the trigger.
    pub drift_threshold: f64,
    /// Consecutive drifted samples required before the controller actually
    /// re-plans (hysteresis against transient spikes).
    pub hysteresis: usize,
    /// Migration-cost bar: a freshly optimized plan is adopted only when
    /// its predicted throughput exceeds the incumbent's (re-scored under
    /// the recalibrated model) by this relative margin.
    pub min_gain: f64,
    /// Hard cap on migrations per run (safety valve against oscillation).
    pub max_migrations: usize,
    /// Skew-aware KeyBy re-weighting of the successor engine (see module
    /// docs); disable to keep uniform key-space shares across migrations.
    pub keyby_reweight: bool,
    /// Skew that arms re-weighting: max over replicas of
    /// `load / mean load` for a keyed consumer must exceed this.
    pub skew_trigger: f64,
    /// RLAS options for every re-search. The controller adds the warm
    /// start itself; leave [`ScalingOptions::warm_start`] unset.
    pub scaling: ScalingOptions,
    /// Deterministic override for tests and manual rescaling: after this
    /// many samples of the first epoch, re-plan and migrate once
    /// regardless of measured drift or predicted gain.
    pub force_replan_after: Option<usize>,
}

impl Default for ElasticOptions {
    fn default() -> Self {
        ElasticOptions {
            sample_interval: Duration::from_millis(100),
            drift_threshold: 0.5,
            hysteresis: 2,
            min_gain: 0.05,
            max_migrations: 4,
            keyby_reweight: true,
            skew_trigger: 1.25,
            scaling: ScalingOptions::default(),
            force_replan_after: None,
        }
    }
}

/// Everything one elastic run produced: per-epoch engine reports plus the
/// controller's own re-planning bookkeeping.
#[derive(Debug)]
pub struct ElasticReport {
    /// One engine report per epoch, in execution order.
    pub epochs: Vec<RunReport>,
    /// The plan each epoch executed (`plans.len() == epochs.len()`).
    pub plans: Vec<ExecutionPlan>,
    /// Migrations actually performed (plan adoptions).
    pub replans: usize,
    /// Re-searches triggered, including ones whose result did not clear
    /// the migration-cost bar.
    pub replan_attempts: usize,
    /// Wall-clock pause per migration: from the migration request to the
    /// successor engine's start (tuples flow on neither side during it).
    pub pauses: Vec<Duration>,
    /// Total wall-clock time across all epochs and pauses.
    pub elapsed: Duration,
}

impl ElasticReport {
    /// Tuples received by sink operators across all epochs.
    pub fn sink_events(&self) -> u64 {
        self.epochs.iter().map(|e| e.sink_events).sum()
    }

    /// End-to-end throughput across the whole run, pauses included.
    pub fn throughput(&self) -> f64 {
        self.sink_events() as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// The longest migration pause (zero when no migration happened).
    pub fn max_pause(&self) -> Duration {
        self.pauses.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// The last epoch's report — after a migration, the post-migration
    /// steady state.
    pub fn last_epoch(&self) -> &RunReport {
        self.epochs.last().expect("an elastic run has >= 1 epoch")
    }
}

/// An engine wrapped in the continuous re-planning controller. See the
/// module docs for the loop; [`ElasticEngine::run`] drives it to the run
/// limit and reports.
pub struct ElasticEngine {
    app: Arc<AppRuntime>,
    machine: Machine,
    config: EngineConfig,
    options: ElasticOptions,
    initial: ExecutionPlan,
}

impl ElasticEngine {
    /// Build the controller, choosing the initial plan by running RLAS on
    /// the app's profiled operator costs ([`ElasticEngine::with_plan`]
    /// skips that and starts from a caller-supplied plan).
    pub fn new(
        app: AppRuntime,
        machine: Machine,
        config: EngineConfig,
        options: ElasticOptions,
    ) -> Result<ElasticEngine, String> {
        let plan = optimize(&machine, &app.topology, &options.scaling)
            .ok_or("no feasible plan for the initial topology")?
            .plan;
        ElasticEngine::with_plan(app, machine, config, options, plan)
    }

    /// Build the controller around an externally optimized initial plan.
    pub fn with_plan(
        app: AppRuntime,
        machine: Machine,
        config: EngineConfig,
        options: ElasticOptions,
        initial: ExecutionPlan,
    ) -> Result<ElasticEngine, String> {
        app.validate()?;
        if initial.replication.len() != app.topology.operator_count() {
            return Err("initial plan does not cover every operator".into());
        }
        Ok(ElasticEngine {
            app: Arc::new(app),
            machine,
            config,
            options,
            initial,
        })
    }

    /// The plan the first epoch will execute.
    pub fn initial_plan(&self) -> &ExecutionPlan {
        &self.initial
    }

    /// Run to `limit` under continuous re-planning. The limit spans the
    /// whole run: a `Duration` counts wall-clock across epochs and pauses,
    /// an `Events` target counts sink tuples across epochs.
    pub fn run(&self, limit: RunLimit) -> ElasticReport {
        let n_ops = self.app.topology.operator_count();
        let started = Instant::now();
        let mut calibrated = self.app.topology.clone();
        let mut plan = self.initial.clone();
        let mut preload: Vec<(usize, usize, Vec<StateEntry>)> = Vec::new();
        let mut keyby_weights: HashMap<usize, Vec<f64>> = HashMap::new();
        let mut report = ElasticReport {
            epochs: Vec::new(),
            plans: Vec::new(),
            replans: 0,
            replan_attempts: 0,
            pauses: Vec::new(),
            elapsed: Duration::ZERO,
        };
        let mut events_done = 0u64;
        let mut forced_done = false;
        let mut pause_started: Option<Instant> = None;

        while let Some(epoch_limit) = remaining_limit(limit, started.elapsed(), events_done) {
            let engine = match self.build_engine(&plan, &mut preload, &keyby_weights) {
                Ok(e) => e,
                // A re-planned shape the engine rejects (e.g. over the
                // thread safety cap) should be impossible — RLAS respects
                // the machine budget — but never strand harvested state:
                // stop re-planning and surface what ran so far.
                Err(_) if !report.epochs.is_empty() => break,
                Err(e) => panic!("initial plan rejected by the engine: {e}"),
            };
            let handle = engine.start(epoch_limit);
            if let Some(t0) = pause_started.take() {
                report.pauses.push(t0.elapsed());
            }
            report.plans.push(plan.clone());

            // Sample live rates until the epoch finishes or a migration is
            // adopted. Drift is judged on per-sample *windows* (deltas of
            // the cumulative counters), so the pre-drift prefix of a long
            // epoch cannot dilute the signal.
            let mut last = vec![MeasuredOperator::default(); n_ops];
            let mut drifted_samples = 0usize;
            let mut samples = 0usize;
            let mut adopted: Option<(ExecutionPlan, LogicalTopology)> = None;
            'sampling: while !handle.is_finished() {
                let t0 = Instant::now();
                while t0.elapsed() < self.options.sample_interval {
                    if handle.is_finished() {
                        break 'sampling;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                samples += 1;
                let cumulative = pool_measurement(n_ops, &handle.rates());
                let window: Vec<MeasuredOperator> = cumulative
                    .iter()
                    .zip(&last)
                    .map(|(c, l)| MeasuredOperator {
                        tuples: c.tuples - l.tuples,
                        busy_ns: c.busy_ns - l.busy_ns,
                    })
                    .collect();
                last = cumulative;

                let recal =
                    recalibrate_from_measurement(&self.machine, &calibrated, &plan, &window);
                let forced = !forced_done
                    && self
                        .options
                        .force_replan_after
                        .is_some_and(|n| samples >= n);
                if recal.max_drift() > self.options.drift_threshold {
                    drifted_samples += 1;
                } else {
                    drifted_samples = 0;
                }
                if !forced
                    && (drifted_samples < self.options.hysteresis
                        || report.replans >= self.options.max_migrations)
                {
                    continue;
                }

                report.replan_attempts += 1;
                forced_done |= forced;
                let warm = ScalingOptions {
                    warm_start: Some(plan.clone()),
                    ..self.options.scaling.clone()
                };
                let Some(new_plan) = optimize(&self.machine, &recal.topology, &warm) else {
                    // No feasible plan under the recalibrated model: keep
                    // running the incumbent, re-baseline drift detection.
                    calibrated = recal.topology;
                    drifted_samples = 0;
                    continue;
                };
                // Migration-cost bar: the incumbent re-scored under the
                // recalibrated model is what "doing nothing" yields.
                let graph =
                    ExecutionGraph::new(&recal.topology, &plan.replication, plan.compress_ratio);
                let incumbent = Evaluator::saturated(&self.machine)
                    .fused_engine()
                    .evaluate(&graph, &plan.placement)
                    .throughput;
                if forced || new_plan.throughput > incumbent * (1.0 + self.options.min_gain) {
                    adopted = Some((new_plan.plan, recal.topology));
                    break 'sampling;
                }
                // Gain too small to pay for a pause: absorb the
                // recalibration so the model tracks reality and the drift
                // trigger re-arms from the new baseline.
                calibrated = recal.topology;
                drifted_samples = 0;
            }

            match adopted {
                None => {
                    let epoch = handle.join();
                    report.epochs.push(epoch);
                    break;
                }
                Some((new_plan, new_topology)) => {
                    pause_started = Some(Instant::now());
                    handle.request_migration();
                    let (epoch, state) = handle.join_with_state();
                    events_done += epoch.sink_events;
                    keyby_weights = self.skew_weights(&epoch, &plan, &new_plan);
                    preload = self.redistribute(state, &new_plan, &keyby_weights);
                    report.epochs.push(epoch);
                    report.replans += 1;
                    calibrated = new_topology;
                    plan = new_plan;
                }
            }
        }

        report.elapsed = started.elapsed();
        report
    }

    /// Wire one epoch's engine: plan-derived NUMA penalty, carried KeyBy
    /// weights, and the staged migration state (drained into the engine).
    fn build_engine(
        &self,
        plan: &ExecutionPlan,
        preload: &mut Vec<(usize, usize, Vec<StateEntry>)>,
        keyby_weights: &HashMap<usize, Vec<f64>>,
    ) -> Result<Engine, String> {
        let mut config = self.config.clone();
        let scale = config.numa_penalty.as_ref().map(|p| p.scale).unwrap_or(1.0);
        config.numa_penalty = Some(NumaPenalty {
            machine: self.machine.clone(),
            replica_socket: plan_replica_sockets(&self.app.topology, plan),
            scale,
        });
        let mut engine = Engine::from_shared(self.app.clone(), plan.replication.clone(), config)?;
        for (&op, weights) in keyby_weights {
            engine.set_keyby_weights(op, weights.clone())?;
        }
        for (op, replica, entries) in preload.drain(..) {
            engine.preload_state(op, replica, entries)?;
        }
        Ok(engine)
    }

    /// Skew-aware KeyBy re-weighting for the successor engine: keyed
    /// consumers whose replica count survives the migration and whose
    /// measured per-replica load is skewed beyond
    /// [`ElasticOptions::skew_trigger`] get inverse-load key-space weights.
    fn skew_weights(
        &self,
        epoch: &RunReport,
        old_plan: &ExecutionPlan,
        new_plan: &ExecutionPlan,
    ) -> HashMap<usize, Vec<f64>> {
        let mut weights = HashMap::new();
        if !self.options.keyby_reweight {
            return weights;
        }
        let rates = epoch.replica_rates();
        for (id, _) in self.app.topology.operators() {
            let op = id.0;
            if !self.is_keyed_consumer(id) || new_plan.replication[op] != old_plan.replication[op] {
                continue;
            }
            let loads: Vec<f64> = rates
                .iter()
                .filter(|r| r.op == op)
                .map(|r| r.tuples as f64)
                .collect();
            let mean = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
            if mean <= 0.0 {
                continue;
            }
            let max = loads.iter().copied().fold(0.0f64, f64::max);
            if max / mean <= self.options.skew_trigger {
                continue;
            }
            let w: Vec<f64> = loads
                .iter()
                .map(|&l| (mean / l.max(1.0)).clamp(0.25, 4.0))
                .collect();
            weights.insert(op, w);
        }
        weights
    }

    /// Spread harvested state over the successor plan's replicas. Keyed
    /// consumers route each entry by its key through the *new* engine's
    /// KeyBy routing (including any skew weights just computed), so keyed
    /// state lands where the successor will route that key's tuples.
    /// Everything else — spouts above all — spreads by `key % replicas`,
    /// which is the identity when the replica count is unchanged (spout
    /// entries are keyed by replica index).
    fn redistribute(
        &self,
        state: HarvestedState,
        new_plan: &ExecutionPlan,
        keyby_weights: &HashMap<usize, Vec<f64>>,
    ) -> Vec<(usize, usize, Vec<StateEntry>)> {
        let mut buckets: BTreeMap<(usize, usize), Vec<StateEntry>> = BTreeMap::new();
        for (op, _old_replica, entries) in state {
            let consumers = new_plan.replication[op];
            let keyed = self.is_keyed_consumer(OperatorId(op));
            let table = keyby_weights
                .get(&op)
                .map(|w| keyby_slot_table(consumers, w));
            for entry in entries {
                let replica = if keyed {
                    route_keyed(entry.0, consumers, table.as_deref())
                } else {
                    (entry.0 as usize) % consumers
                };
                buckets.entry((op, replica)).or_default().push(entry);
            }
        }
        buckets
            .into_iter()
            .map(|((op, replica), entries)| (op, replica, entries))
            .collect()
    }

    fn is_keyed_consumer(&self, op: OperatorId) -> bool {
        self.app
            .topology
            .incoming_edges(op)
            .any(|e| e.partitioning == Partitioning::KeyBy)
    }
}

/// Pool live per-replica rates into one [`MeasuredOperator`] per logical
/// operator (cumulative since engine start).
fn pool_measurement(n_ops: usize, rates: &[crate::ReplicaRate]) -> Vec<MeasuredOperator> {
    let mut pooled = vec![MeasuredOperator::default(); n_ops];
    for r in rates {
        pooled[r.op].tuples += r.tuples;
        pooled[r.op].busy_ns += r.busy_ns;
    }
    pooled
}

/// What is left of `limit` after `elapsed` wall-clock and `events_done`
/// sink tuples; `None` when the limit is spent.
fn remaining_limit(limit: RunLimit, elapsed: Duration, events_done: u64) -> Option<RunLimit> {
    match limit {
        RunLimit::Duration(d) => {
            let left = d.checked_sub(elapsed)?;
            (!left.is_zero()).then_some(RunLimit::Duration(left))
        }
        RunLimit::Events { events, timeout } => {
            let left = timeout.checked_sub(elapsed)?;
            if left.is_zero() || events_done >= events {
                return None;
            }
            Some(RunLimit::Events {
                events: events - events_done,
                timeout: left,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, DynBolt, DynSpout, SpoutStatus, TupleView};
    use brisk_dag::{CostProfile, TopologyBuilder};
    use brisk_numa::MachineBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn machine() -> Machine {
        MachineBuilder::new("elastic-test")
            .sockets(2)
            .tray_size(4)
            .cores_per_socket(4)
            .clock_ghz(1.0)
            .local_latency_ns(50.0)
            .one_hop_latency_ns(200.0)
            .max_hop_latency_ns(200.0)
            .local_bandwidth_gbps(50.0)
            .one_hop_bandwidth_gbps(10.0)
            .max_hop_bandwidth_gbps(5.0)
            .build()
    }

    /// Spout that emits a fixed budget and migrates its remaining budget.
    struct BudgetSpout {
        replica: u64,
        remaining: u64,
    }

    impl DynSpout for BudgetSpout {
        fn next(&mut self, c: &mut Collector) -> SpoutStatus {
            if self.remaining == 0 {
                return SpoutStatus::Exhausted;
            }
            self.remaining -= 1;
            let now = c.now_ns();
            c.send_default(self.remaining, now, self.remaining);
            SpoutStatus::Emitted(1)
        }

        fn extract_state(&mut self) -> Option<Vec<StateEntry>> {
            Some(vec![(self.replica, self.remaining.to_le_bytes().to_vec())])
        }

        fn install_state(&mut self, entries: Vec<StateEntry>) {
            self.remaining = entries
                .iter()
                .map(|(_, b)| u64::from_le_bytes(b.as_slice().try_into().expect("u64 state")))
                .sum();
        }
    }

    struct CountSink(Arc<AtomicU64>);

    impl DynBolt for CountSink {
        fn execute(&mut self, _t: &TupleView<'_>, _c: &mut Collector) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn budget_app(budget_per_replica: u64) -> (AppRuntime, Arc<AtomicU64>) {
        let mut b = TopologyBuilder::new("elastic");
        let s = b.add_spout("spout", CostProfile::new(300.0, 0.0, 16.0, 64.0));
        let x = b.add_bolt("bolt", CostProfile::new(600.0, 0.0, 16.0, 64.0));
        let k = b.add_sink("sink", CostProfile::new(50.0, 0.0, 16.0, 64.0));
        b.connect_shuffle(s, x);
        b.connect_shuffle(x, k);
        let t = b.build().expect("valid");
        let (s, x, k) = (
            t.find("spout").expect("spout"),
            t.find("bolt").expect("bolt"),
            t.find("sink").expect("sink"),
        );
        let seen = Arc::new(AtomicU64::new(0));
        let sink_seen = seen.clone();
        let app = AppRuntime::new(t)
            .spout(s, move |ctx| BudgetSpout {
                replica: ctx.replica as u64,
                remaining: budget_per_replica,
            })
            .bolt(x, |_| Relay)
            .sink(k, move |_| CountSink(sink_seen.clone()));
        (app, seen)
    }

    struct Relay;

    impl DynBolt for Relay {
        fn execute(&mut self, t: &TupleView<'_>, c: &mut Collector) {
            let v = *t.value::<u64>().expect("u64 payloads");
            c.send_default(v, t.event_ns, t.key);
        }
    }

    #[test]
    fn undrifted_run_stays_on_one_epoch() {
        // Drift detection is disarmed (infinite threshold) so the test pins
        // the no-migration path deterministically: these toy operators'
        // real (debug-build) costs need not match their cost profiles, and
        // an armed controller could legitimately decide to re-plan.
        let m = machine();
        let (app, seen) = budget_app(20_000);
        let elastic = ElasticEngine::new(
            app,
            m,
            EngineConfig::default(),
            ElasticOptions {
                sample_interval: Duration::from_millis(5),
                drift_threshold: f64::INFINITY,
                ..ElasticOptions::default()
            },
        )
        .expect("controller");
        let spouts = elastic.initial_plan().replication[0] as u64;
        let report = elastic.run(RunLimit::Duration(Duration::from_secs(30)));
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.replans, 0);
        assert_eq!(report.sink_events(), 20_000 * spouts);
        assert_eq!(seen.load(Ordering::Relaxed), 20_000 * spouts);
        assert!(report.pauses.is_empty());
    }

    #[test]
    fn forced_migration_conserves_every_tuple() {
        let m = machine();
        let (app, seen) = budget_app(150_000);
        let elastic = ElasticEngine::new(
            app,
            m,
            EngineConfig::default(),
            ElasticOptions {
                sample_interval: Duration::from_millis(5),
                force_replan_after: Some(1),
                max_migrations: 1,
                ..ElasticOptions::default()
            },
        )
        .expect("controller");
        let spouts = elastic.initial_plan().replication[0] as u64;
        let budget = 150_000 * spouts;
        let report = elastic.run(RunLimit::Duration(Duration::from_secs(60)));
        assert_eq!(report.replans, 1, "the forced re-plan must migrate");
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.pauses.len(), 1);
        assert_eq!(
            report.sink_events(),
            budget,
            "migration must neither drop nor duplicate tuples"
        );
        assert_eq!(seen.load(Ordering::Relaxed), budget);
        // The spouts' budget state actually moved: epoch 2 emitted the rest.
        assert!(report.epochs[1].sink_events > 0, "post-migration progress");
    }

    #[test]
    fn remaining_limit_arithmetic() {
        let d = RunLimit::Duration(Duration::from_secs(10));
        match remaining_limit(d, Duration::from_secs(4), 0) {
            Some(RunLimit::Duration(left)) => assert_eq!(left, Duration::from_secs(6)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(remaining_limit(d, Duration::from_secs(10), 0).is_none());
        let e = RunLimit::Events {
            events: 100,
            timeout: Duration::from_secs(10),
        };
        match remaining_limit(e, Duration::from_secs(1), 40) {
            Some(RunLimit::Events { events, timeout }) => {
                assert_eq!(events, 60);
                assert_eq!(timeout, Duration::from_secs(9));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(remaining_limit(e, Duration::from_secs(1), 100).is_none());
    }
}
