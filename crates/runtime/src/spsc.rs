//! Cache-conscious lock-free SPSC ring buffer — the fast queue fabric.
//!
//! The engine wires **exactly one** producer replica to **exactly one**
//! consumer replica per queue (see `Engine::run_inner`), so the general
//! MPSC mutex queue pays for synchronization nobody needs. This ring
//! exploits the 1:1 structure:
//!
//! * **Fixed power-of-two ring** of `UnsafeCell<MaybeUninit<T>>` slots;
//!   head/tail are monotonically increasing indices masked into the ring,
//!   so full/empty never need a separate flag.
//! * **Cache-line isolation**: the producer's index pair and the consumer's
//!   index pair live on separate 128-byte-aligned lines, so a push never
//!   invalidates the consumer's line and vice versa.
//! * **Cached counterpart indices** (the rigtorp/LMAX trick): the producer
//!   keeps a *stale copy* of the consumer's head and only re-reads the real
//!   atomic when the ring looks full; the consumer mirrors this with a
//!   cached tail. In steady state each side touches only its own line —
//!   cross-core cache-line bouncing drops to ~one transfer per
//!   `capacity` operations instead of one per operation.
//! * **Batch `push_n`/`pop_n`**: one index publish moves a whole group of
//!   jumbo tuples, amortizing even the single remaining release-store.
//! * **Hybrid wait strategy** ([`Backoff`]): a blocked producer walks a
//!   spin → yield → park ladder instead of taking a condvar, preserving
//!   blocking back-pressure without a lock on the hot path.
//!
//! # The SPSC contract
//!
//! At most one thread may push at a time and at most one thread may pop at
//! a time. Either role may migrate to a different thread only through an
//! external happens-before edge (thread spawn/join, channel handoff).
//! Violating this is a data race (undefined behaviour) — the engine's
//! per-pair wiring guarantees it by construction, and [`crate::queue::QueueKind`]
//! keeps the mutex queue available for genuinely multi-producer uses.
//! Debug builds carry a best-effort tripwire that panics when it observes
//! two threads inside the same role concurrently; release builds pay
//! nothing. `len`, `is_empty`, `close` and `is_closed` are safe from any
//! thread.
//!
//! Close/drain semantics match [`crate::queue::BoundedQueue`]: `close`
//! fails subsequent pushes and unblocks waiting producers (they observe the
//! flag within one park interval), while items already in the ring remain
//! poppable so shutdown drains every in-flight tuple.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Pad-and-align wrapper keeping a value on its own cache line (128 bytes
/// covers the spatial-prefetcher pair on x86 and big.LITTLE lines on arm).
/// Shared with the MPSC ring ([`crate::mpsc`]), which reuses this padded
/// ring skeleton with CAS-claimed slots.
#[repr(align(128))]
pub(crate) struct CachePadded<T>(pub(crate) T);

/// Producer-owned index line: the real tail plus a stale copy of head.
struct ProducerSide {
    /// Next slot to write; published with `Release` after the write.
    tail: AtomicUsize,
    /// Stale copy of the consumer's head, re-read only when the ring
    /// *looks* full. Only the producer thread touches this cell.
    cached_head: UnsafeCell<usize>,
}

/// Consumer-owned index line: the real head plus a stale copy of tail.
struct ConsumerSide {
    /// Next slot to read; published with `Release` after the read.
    head: AtomicUsize,
    /// Stale copy of the producer's tail, re-read only when the ring
    /// *looks* empty. Only the consumer thread touches this cell.
    cached_tail: UnsafeCell<usize>,
}

/// Why a non-blocking push did not enqueue.
#[derive(Debug)]
pub enum PushError<T> {
    /// The ring is at capacity; the item is handed back for retry.
    Full(T),
    /// The queue is closed; the item is handed back permanently.
    Closed(T),
}

/// A bounded lock-free single-producer single-consumer ring buffer.
///
/// See the [module docs](self) for the design and the SPSC contract.
pub struct SpscQueue<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `ring_size - 1`; ring size is `capacity.next_power_of_two()`.
    mask: usize,
    /// User-visible capacity (back-pressure bound, ≤ ring size).
    capacity: usize,
    /// Wait-ladder shape for blocking-push waits.
    profile: BackoffProfile,
    producer: CachePadded<ProducerSide>,
    consumer: CachePadded<ConsumerSide>,
    closed: AtomicBool,
    /// Debug-build tripwires catching *concurrent* producers/consumers —
    /// a best-effort detector for SPSC-contract violations, not a proof.
    #[cfg(debug_assertions)]
    push_active: AtomicBool,
    #[cfg(debug_assertions)]
    pop_active: AtomicBool,
}

/// Debug-build guard asserting a role (producer or consumer) is not
/// entered concurrently from two threads.
#[cfg(debug_assertions)]
struct RoleGuard<'a>(&'a AtomicBool);

#[cfg(debug_assertions)]
impl<'a> RoleGuard<'a> {
    fn enter(flag: &'a AtomicBool, role: &str) -> RoleGuard<'a> {
        assert!(
            !flag.swap(true, Ordering::Acquire),
            "concurrent {role}s detected: SpscQueue allows only one {role} at a time \
             (use QueueKind::Mutex for multi-{role} wiring)"
        );
        RoleGuard(flag)
    }
}

#[cfg(debug_assertions)]
impl Drop for RoleGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

// SAFETY: the SPSC contract (module docs) serializes all accesses to the
// slot array and to each side's cached index; the indices themselves are
// atomics. `T: Send` is required because items cross threads.
unsafe impl<T: Send> Send for SpscQueue<T> {}
unsafe impl<T: Send> Sync for SpscQueue<T> {}

impl<T> SpscQueue<T> {
    /// Ring holding at most `capacity` items (back-pressure bound), with
    /// the default blocking-push park interval.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> SpscQueue<T> {
        SpscQueue::with_park(capacity, DEFAULT_PARK)
    }

    /// Ring with an explicit park interval for blocking-push waits — the
    /// engine passes its `poll_backoff` here so producer wake latency
    /// under back-pressure is tunable alongside consumer idle latency.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_park(capacity: usize, park: Duration) -> SpscQueue<T> {
        SpscQueue::with_profile(capacity, BackoffProfile::dedicated(park))
    }

    /// Ring with an explicit wait-ladder shape ([`BackoffProfile`]) for
    /// blocking-push waits — the engine passes its oversubscription-aware
    /// profile here so blocked producers park promptly when replica
    /// threads outnumber cores.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_profile(capacity: usize, profile: BackoffProfile) -> SpscQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        let ring = capacity.next_power_of_two();
        let slots = (0..ring)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscQueue {
            slots,
            mask: ring - 1,
            capacity,
            profile,
            producer: CachePadded(ProducerSide {
                tail: AtomicUsize::new(0),
                cached_head: UnsafeCell::new(0),
            }),
            consumer: CachePadded(ConsumerSide {
                head: AtomicUsize::new(0),
                cached_tail: UnsafeCell::new(0),
            }),
            closed: AtomicBool::new(false),
            #[cfg(debug_assertions)]
            push_active: AtomicBool::new(false),
            #[cfg(debug_assertions)]
            pop_active: AtomicBool::new(false),
        }
    }

    /// Capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free slots as seen by the producer, refreshing the cached head from
    /// the real atomic only when the ring looks full. Producer-side only.
    #[inline]
    fn free_slots(&self, tail: usize) -> usize {
        // SAFETY: producer-side call per the SPSC contract.
        let cached_head = unsafe { &mut *self.producer.0.cached_head.get() };
        let mut free = self.capacity - tail.wrapping_sub(*cached_head);
        if free == 0 {
            *cached_head = self.consumer.0.head.load(Ordering::Acquire);
            free = self.capacity - tail.wrapping_sub(*cached_head);
        }
        free
    }

    /// Non-blocking push. Producer-side only.
    #[inline]
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        #[cfg(debug_assertions)]
        let _role = RoleGuard::enter(&self.push_active, "producer");
        if self.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed(item));
        }
        let tail = self.producer.0.tail.load(Ordering::Relaxed);
        if self.free_slots(tail) == 0 {
            return Err(PushError::Full(item));
        }
        // SAFETY: the slot at `tail` is outside [head, tail), so the
        // consumer will not touch it until the Release store below.
        unsafe { (*self.slots[tail & self.mask].get()).write(item) };
        self.producer
            .0
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Blocking push: walks the spin → yield → park ladder while the ring
    /// is full (back-pressure). Returns `Err(item)` if the queue is closed.
    /// Producer-side only.
    pub fn push(&self, item: T) -> Result<(), T> {
        self.push_tracked(item).map(|_| ())
    }

    /// Blocking push that additionally reports whether it found the ring
    /// full and had to wait (`Ok(true)`) — the engine's queue-pressure
    /// signal, measured inside the push path so the uncontended fast path
    /// costs nothing extra. Producer-side only.
    pub fn push_tracked(&self, item: T) -> Result<bool, T> {
        let mut item = match self.try_push(item) {
            Ok(()) => return Ok(false),
            Err(PushError::Closed(i)) => return Err(i),
            Err(PushError::Full(i)) => i,
        };
        let mut backoff = Backoff::with_profile(self.profile);
        loop {
            backoff.snooze();
            match self.try_push(item) {
                Ok(()) => return Ok(true),
                Err(PushError::Closed(i)) => return Err(i),
                Err(PushError::Full(i)) => item = i,
            }
        }
    }

    /// Push with a deadline. `Err(item)` on close *or* timeout. The
    /// deadline is computed **before** any waiting, so time spent blocked
    /// on a full ring counts against the caller's budget (mirrors the
    /// fixed [`crate::queue::BoundedQueue::push_timeout`] semantics).
    /// Producer-side only.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), T> {
        let deadline = Instant::now() + timeout;
        let mut item = item;
        let mut backoff = Backoff::with_profile(self.profile);
        loop {
            match self.try_push(item) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(i)) => return Err(i),
                Err(PushError::Full(i)) => {
                    if Instant::now() >= deadline {
                        return Err(i);
                    }
                    item = i;
                    backoff.snooze();
                }
            }
        }
    }

    /// Blocking batch push: enqueues every item, publishing the tail **once
    /// per free run** rather than once per item, so a whole jumbo group
    /// costs a single release store. `Err(remaining)` if the queue closes
    /// mid-batch. Producer-side only.
    pub fn push_n(&self, items: Vec<T>) -> Result<(), Vec<T>> {
        #[cfg(debug_assertions)]
        let _role = RoleGuard::enter(&self.push_active, "producer");
        let mut iter = items.into_iter();
        if iter.len() == 0 {
            return Ok(());
        }
        let mut backoff = Backoff::with_profile(self.profile);
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(iter.collect());
            }
            let tail = self.producer.0.tail.load(Ordering::Relaxed);
            let free = self.free_slots(tail);
            if free == 0 {
                backoff.snooze();
                continue;
            }
            let mut wrote = 0usize;
            while wrote < free {
                match iter.next() {
                    // SAFETY: slots [tail, tail+free) are unowned by the
                    // consumer until the single Release store below.
                    Some(x) => unsafe {
                        (*self.slots[tail.wrapping_add(wrote) & self.mask].get()).write(x);
                        wrote += 1;
                    },
                    None => break,
                }
            }
            self.producer
                .0
                .tail
                .store(tail.wrapping_add(wrote), Ordering::Release);
            if iter.len() == 0 {
                return Ok(());
            }
            backoff.reset();
        }
    }

    /// Items ready to pop as seen by the consumer, refreshing the cached
    /// tail only when the ring looks empty. Consumer-side only.
    #[inline]
    fn available(&self, head: usize) -> usize {
        // SAFETY: consumer-side call per the SPSC contract.
        let cached_tail = unsafe { &mut *self.consumer.0.cached_tail.get() };
        let mut avail = cached_tail.wrapping_sub(head);
        if avail == 0 {
            *cached_tail = self.producer.0.tail.load(Ordering::Acquire);
            avail = cached_tail.wrapping_sub(head);
        }
        avail
    }

    /// Non-blocking pop. Consumer-side only.
    #[inline]
    pub fn try_pop(&self) -> Option<T> {
        #[cfg(debug_assertions)]
        let _role = RoleGuard::enter(&self.pop_active, "consumer");
        let head = self.consumer.0.head.load(Ordering::Relaxed);
        if self.available(head) == 0 {
            return None;
        }
        // SAFETY: slot at `head` was published by the producer's Release
        // store (observed via the Acquire load in `available`).
        let item = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        self.consumer
            .0
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Batch pop: moves up to `max` items into `out` with a **single**
    /// head publish. Returns how many were popped. Consumer-side only.
    pub fn pop_n(&self, out: &mut Vec<T>, max: usize) -> usize {
        #[cfg(debug_assertions)]
        let _role = RoleGuard::enter(&self.pop_active, "consumer");
        let head = self.consumer.0.head.load(Ordering::Relaxed);
        let avail = self.available(head);
        if avail == 0 || max == 0 {
            return 0;
        }
        let n = avail.min(max);
        out.reserve(n);
        for i in 0..n {
            // SAFETY: slots [head, head+avail) were published by the
            // producer; we consume a prefix then publish once.
            let item =
                unsafe { (*self.slots[head.wrapping_add(i) & self.mask].get()).assume_init_read() };
            out.push(item);
        }
        self.consumer
            .0
            .head
            .store(head.wrapping_add(n), Ordering::Release);
        n
    }

    /// Number of queued items right now — a lock-free pair of atomic loads.
    /// Exact when the counterpart side is quiescent (the engine's drain
    /// check), approximate while both sides are in flight.
    pub fn len(&self) -> usize {
        let head = self.consumer.0.head.load(Ordering::Acquire);
        let tail = self.producer.0.tail.load(Ordering::Acquire);
        tail.wrapping_sub(head).min(self.capacity)
    }

    /// Whether the queue is currently empty (lock-free atomic reads).
    pub fn is_empty(&self) -> bool {
        let head = self.consumer.0.head.load(Ordering::Acquire);
        let tail = self.producer.0.tail.load(Ordering::Acquire);
        head == tail
    }

    /// Close the queue: subsequent pushes fail; producers blocked in the
    /// park rung observe the flag within one park interval. Items already
    /// queued remain poppable (drain-on-shutdown).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether [`SpscQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for SpscQueue<T> {
    fn drop(&mut self) {
        // Drop any items still in flight. `&mut self` proves exclusivity.
        let head = *self.consumer.0.head.get_mut();
        let tail = *self.producer.0.tail.get_mut();
        let mut i = head;
        while i != tail {
            // SAFETY: every slot in [head, tail) holds an initialized item.
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// Default park interval for waits internal to the queue (blocking push).
/// Matches the engine's default `poll_backoff` so close-latency stays in
/// the same ballpark as the old condvar wake.
const DEFAULT_PARK: Duration = Duration::from_micros(100);

/// Spin rungs of the dedicated-core ladder: 1, 2, 4, 8 `spin_loop` hints.
const SPIN_STEPS: u32 = 4;
/// Cumulative boundary step of the dedicated-core ladder: steps
/// `SPIN_STEPS..YIELD_STEPS` yield (4 rungs), then the ladder parks.
const YIELD_STEPS: u32 = 8;

/// Shape of the spin → yield → park ladder: how many rungs are spent
/// spinning and yielding before a waiter parks.
///
/// On a machine with a core per replica, spinning briefly is the
/// lowest-latency way to ride out a momentary stall. When the engine runs
/// **oversubscribed** — more replica threads than hardware cores (the
/// documented 1-vCPU fabric inversion in the ROADMAP) — every spin burns a
/// timeslice the *counterpart* thread needs to make progress, so the
/// oversubscribed profile skips straight past the spin rungs and parks
/// after a single yield: parked waits donate the CPU instead of fighting
/// for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffProfile {
    /// Rungs spent issuing `spin_loop` hints (1 << step hints per rung).
    pub spin_steps: u32,
    /// Cumulative rung index after which the ladder parks; rungs in
    /// `spin_steps..yield_steps` call `yield_now`.
    pub yield_steps: u32,
    /// Park interval of the deepest rung.
    pub park: Duration,
}

impl BackoffProfile {
    /// The dedicated-core ladder: 4 spin rungs, 4 yield rungs, then park.
    pub fn dedicated(park: Duration) -> BackoffProfile {
        BackoffProfile {
            spin_steps: SPIN_STEPS,
            yield_steps: YIELD_STEPS,
            park,
        }
    }

    /// The oversubscribed ladder: no spinning, one yield, then park — a
    /// waiting thread gets out of the runnable set as fast as possible so
    /// shared timeslices go to whoever has actual work.
    pub fn oversubscribed(park: Duration) -> BackoffProfile {
        BackoffProfile {
            spin_steps: 0,
            yield_steps: 1,
            park,
        }
    }

    /// Pick the profile for running `threads` busy threads on this host:
    /// oversubscribed when they exceed `std::thread::available_parallelism`.
    pub fn detect(threads: usize, park: Duration) -> BackoffProfile {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if threads > cores {
            BackoffProfile::oversubscribed(park)
        } else {
            BackoffProfile::dedicated(park)
        }
    }
}

/// Adaptive spin → yield → park wait ladder.
///
/// Shared by the queue fabrics' blocking pushes and the engine's idle
/// executors: short waits burn a few pipeline hints (latency ≈ ns), medium
/// waits donate the timeslice (`yield_now`), and sustained waits park the
/// thread for a bounded interval so an idle system costs ~0 CPU while still
/// observing `close`/new-work promptly. Call [`Backoff::reset`] after
/// useful work to drop back to the cheap rungs. The rung layout comes from
/// a [`BackoffProfile`]; oversubscribed hosts should use
/// [`BackoffProfile::oversubscribed`] so parked waits dominate.
pub struct Backoff {
    step: u32,
    profile: BackoffProfile,
}

impl Backoff {
    /// Dedicated-core ladder whose park rung sleeps `park` per step.
    pub fn new(park: Duration) -> Backoff {
        Backoff::with_profile(BackoffProfile::dedicated(park))
    }

    /// Ladder with an explicit rung layout.
    pub fn with_profile(profile: BackoffProfile) -> Backoff {
        Backoff { step: 0, profile }
    }

    /// Back to the cheapest rungs (call after making progress).
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Wait one rung and advance the ladder.
    pub fn snooze(&mut self) {
        if self.step < self.profile.spin_steps {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step < self.profile.yield_steps {
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(self.profile.park);
        }
        self.step = self.step.saturating_add(1);
    }

    /// Whether the ladder has escalated to the parking rung.
    pub fn is_parking(&self) -> bool {
        self.step > self.profile.yield_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SpscQueue::new(8);
        for i in 0..5 {
            q.push(i).expect("open");
        }
        for i in 0..5 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn capacity_is_respected_even_when_rounded_up() {
        // 6 rounds to an 8-slot ring but back-pressure binds at 6.
        let q = SpscQueue::new(6);
        for i in 0..6 {
            assert!(q.try_push(i).is_ok());
        }
        assert!(matches!(q.try_push(99), Err(PushError::Full(99))));
        assert_eq!(q.len(), 6);
        assert_eq!(q.try_pop(), Some(0));
        assert!(q.try_push(99).is_ok());
    }

    #[test]
    fn push_blocks_until_pop() {
        let q = Arc::new(SpscQueue::new(1));
        q.push(0u32).expect("open");
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            q2.push(1).expect("open");
            t0.elapsed()
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(q.try_pop(), Some(0));
        let blocked_for = handle.join().expect("no panic");
        assert!(
            blocked_for >= Duration::from_millis(30),
            "producer should have blocked, waited only {blocked_for:?}"
        );
        assert_eq!(q.try_pop(), Some(1));
    }

    #[test]
    fn push_timeout_expires() {
        let q = SpscQueue::new(1);
        q.push(1u8).expect("open");
        let t0 = Instant::now();
        assert!(q.push_timeout(2, Duration::from_millis(20)).is_err());
        assert!(t0.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn close_wakes_blocked_producer_and_preserves_drain() {
        let q = Arc::new(SpscQueue::new(1));
        q.push(0u8).expect("open");
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert!(handle.join().expect("no panic").is_err());
        // Existing items still drain.
        assert_eq!(q.try_pop(), Some(0));
        assert!(q.push(2).is_err());
    }

    #[test]
    fn batch_ops_roundtrip() {
        let q = SpscQueue::new(16);
        q.push_n((0..10).collect()).expect("open");
        assert_eq!(q.len(), 10);
        let mut out = Vec::new();
        assert_eq!(q.pop_n(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.pop_n(&mut out, 100), 6);
        assert_eq!(out[4..], [4, 5, 6, 7, 8, 9]);
        assert_eq!(q.pop_n(&mut out, 1), 0);
    }

    #[test]
    fn push_n_larger_than_capacity_blocks_through() {
        // Batch bigger than the ring: producer publishes in free runs while
        // a consumer drains concurrently.
        let q = Arc::new(SpscQueue::new(4));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push_n((0..64u32).collect()));
        let mut got = Vec::new();
        while got.len() < 64 {
            if q.pop_n(&mut got, 8) == 0 {
                std::thread::yield_now();
            }
        }
        assert!(producer.join().expect("no panic").is_ok());
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn drop_releases_in_flight_items() {
        let q = SpscQueue::new(8);
        let marker = Arc::new(());
        for _ in 0..5 {
            q.push(Arc::clone(&marker)).expect("open");
        }
        q.try_pop();
        drop(q);
        assert_eq!(Arc::strong_count(&marker), 1, "all queued clones dropped");
    }

    #[test]
    fn wraparound_many_times() {
        let q = SpscQueue::new(4);
        for round in 0..1000u64 {
            q.push(round).expect("open");
            assert_eq!(q.try_pop(), Some(round));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn backoff_ladder_escalates_and_resets() {
        let mut b = Backoff::new(Duration::from_micros(1));
        assert!(!b.is_parking());
        for _ in 0..=YIELD_STEPS {
            b.snooze();
        }
        assert!(b.is_parking());
        b.reset();
        assert!(!b.is_parking());
    }

    #[test]
    fn oversubscribed_profile_parks_almost_immediately() {
        let park = Duration::from_micros(1);
        let mut b = Backoff::with_profile(BackoffProfile::oversubscribed(park));
        // One yield rung, then straight to parking — no spin phase at all.
        b.snooze();
        b.snooze();
        assert!(
            b.is_parking(),
            "second rung of the oversubscribed ladder must park"
        );
        let dedicated = BackoffProfile::dedicated(park);
        assert!(dedicated.spin_steps > 0 && dedicated.yield_steps > dedicated.spin_steps);
        // Detection: a single thread never oversubscribes; more threads
        // than any real host has cores always does.
        assert_eq!(BackoffProfile::detect(1, park), dedicated);
        assert_eq!(
            BackoffProfile::detect(usize::MAX, park),
            BackoffProfile::oversubscribed(park)
        );
    }
}
