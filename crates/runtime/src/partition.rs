//! Partition controllers: route emitted tuples to consumer replicas.
//!
//! Mirrors the paper's task anatomy (Figure 17): after an executor runs the
//! operator's core logic, the partition controller decides which consumer
//! replica's queue every output tuple lands in, per the edge's partitioning
//! strategy.

use crate::tuple::Tuple;
use brisk_dag::Partitioning;

/// Hash-slot granularity of skew-aware KeyBy routing: each consumer
/// replica owns a multiple of this many slots in the weighted table, so
/// re-weighting can shift load in 1/([`KEYBY_SLOTS_PER_CONSUMER`] × n)
/// increments of the key space.
pub const KEYBY_SLOTS_PER_CONSUMER: usize = 8;

/// Build the skew-aware KeyBy slot table: `consumers × KEYBY_SLOTS_PER_CONSUMER`
/// hash slots apportioned to replicas by `weights` (largest remainder), with
/// every replica guaranteed at least one slot so no consumer is starved of
/// input outright. Non-finite or non-positive weights count as zero; an
/// all-zero weight vector degrades to uniform.
pub fn keyby_slot_table(consumers: usize, weights: &[f64]) -> Vec<usize> {
    assert_eq!(weights.len(), consumers, "one weight per consumer replica");
    let slots = consumers * KEYBY_SLOTS_PER_CONSUMER;
    let sanitized: Vec<f64> = weights
        .iter()
        .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
        .collect();
    let total: f64 = sanitized.iter().sum();
    let share = |w: f64| {
        if total > 0.0 {
            w / total
        } else {
            1.0 / consumers as f64
        }
    };
    // Floor of each exact share (but at least 1 slot), then hand the
    // leftover slots to the largest fractional remainders.
    let mut counts: Vec<usize> = sanitized
        .iter()
        .map(|&w| ((share(w) * slots as f64).floor() as usize).max(1))
        .collect();
    while counts.iter().sum::<usize>() > slots {
        // Over-full only via the ≥1 floor: take back from the largest.
        let i = (0..consumers)
            .max_by(|&a, &b| counts[a].cmp(&counts[b]))
            .expect("nonempty");
        counts[i] -= 1;
    }
    while counts.iter().sum::<usize>() < slots {
        let i = (0..consumers)
            .max_by(|&a, &b| {
                let ra = share(sanitized[a]) * slots as f64 - counts[a] as f64;
                let rb = share(sanitized[b]) * slots as f64 - counts[b] as f64;
                ra.partial_cmp(&rb).expect("finite remainders")
            })
            .expect("nonempty");
        counts[i] += 1;
    }
    let mut table = Vec::with_capacity(slots);
    for (replica, &c) in counts.iter().enumerate() {
        table.extend(std::iter::repeat(replica).take(c));
    }
    table
}

/// The KeyBy replica for `key` over `consumers` replicas — the single
/// routing function shared by the live [`Partitioner`] and by migration's
/// state redistribution, so a harvested entry always lands on the replica
/// that will receive its key's tuples. `table`, when present, is a
/// [`keyby_slot_table`] for the same consumer count.
pub fn route_keyed(key: u64, consumers: usize, table: Option<&[usize]>) -> usize {
    match table {
        Some(t) => t[(Tuple::mix_key(key) % t.len() as u64) as usize],
        None => (Tuple::mix_key(key) % consumers as u64) as usize,
    }
}

/// Stateful router for one (producer replica, logical edge) pair.
#[derive(Debug, Clone)]
pub struct Partitioner {
    strategy: Partitioning,
    consumers: usize,
    rr_cursor: usize,
    /// Skew-aware KeyBy slot table ([`keyby_slot_table`]); `None` routes
    /// uniformly (`mix_key % consumers`), byte-identical to the historical
    /// path.
    slot_table: Option<Vec<usize>>,
}

impl Partitioner {
    /// Router over `consumers` replicas using `strategy`.
    ///
    /// # Panics
    /// Panics if `consumers` is zero.
    pub fn new(strategy: Partitioning, consumers: usize) -> Partitioner {
        assert!(consumers > 0, "need at least one consumer replica");
        Partitioner {
            strategy,
            consumers,
            rr_cursor: 0,
            slot_table: None,
        }
    }

    /// Attach skew-aware routing weights (KeyBy edges only; other
    /// strategies ignore them). `weights[r]` is the share of the key space
    /// replica `r` should receive — the elastic controller passes the
    /// *inverse* of each replica's measured load so hot replicas shed
    /// slots.
    pub fn with_weights(mut self, weights: &[f64]) -> Partitioner {
        if matches!(self.strategy, Partitioning::KeyBy) {
            self.slot_table = Some(keyby_slot_table(self.consumers, weights));
        }
        self
    }

    /// Number of consumer replicas routed over.
    pub fn consumers(&self) -> usize {
        self.consumers
    }

    /// Whether this edge broadcasts (the collector shares one batch
    /// builder — and one slab — across every consumer on broadcast edges).
    pub fn is_broadcast(&self) -> bool {
        matches!(self.strategy, Partitioning::Broadcast)
    }

    /// Consumer replica indices for a tuple with partitioning key `key`
    /// (batches carry keys in a dedicated lane, so routing needs only the
    /// key, not a whole tuple). At most one target except for broadcast,
    /// which returns all of them.
    pub fn route(&mut self, key: u64) -> RouteTargets {
        match self.strategy {
            // Forward at equal replica counts is wired as one pinned queue
            // per producer (`consumers == 1`, routed here trivially); at
            // unequal counts the pairing is meaningless and the edge
            // degrades to Shuffle's even round-robin spread, matching the
            // model's work-conserving treatment exactly.
            Partitioning::Shuffle | Partitioning::Forward => {
                let t = self.rr_cursor;
                self.rr_cursor = (self.rr_cursor + 1) % self.consumers;
                RouteTargets::One(t)
            }
            // Mix the key through FNV before the modulo: raw `key % n`
            // aliases with strided key spaces (e.g. all-even keys on two
            // consumers idle one replica entirely). See `Tuple::mix_key`.
            Partitioning::KeyBy => {
                RouteTargets::One(route_keyed(key, self.consumers, self.slot_table.as_deref()))
            }
            Partitioning::Broadcast => RouteTargets::All(self.consumers),
            Partitioning::Global => RouteTargets::One(0),
        }
    }
}

/// Targets chosen by [`Partitioner::route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTargets {
    /// Exactly one consumer replica.
    One(usize),
    /// Every consumer replica `0..n`.
    All(usize),
}

impl RouteTargets {
    /// Iterate over the chosen replica indices.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let (start, end) = match self {
            RouteTargets::One(i) => (i, i + 1),
            RouteTargets::All(n) => (0, n),
        };
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_round_robins_evenly() {
        let mut p = Partitioner::new(Partitioning::Shuffle, 3);
        let mut counts = [0usize; 3];
        for _ in 0..99 {
            match p.route(0) {
                RouteTargets::One(i) => counts[i] += 1,
                RouteTargets::All(_) => panic!("shuffle routes to one"),
            }
        }
        assert_eq!(counts, [33, 33, 33]);
    }

    #[test]
    fn keyby_is_sticky() {
        let mut p = Partitioner::new(Partitioning::KeyBy, 4);
        let a1 = p.route(42);
        let _ = p.route(7);
        let a2 = p.route(42);
        assert_eq!(a1, a2, "same key must hit the same replica");
    }

    #[test]
    fn keyby_spreads_strided_key_spaces() {
        // Regression: raw `key % consumers` sent every all-even key to
        // replica 0, idling half the operator. The FNV mix must spread
        // strided spaces across all replicas.
        for consumers in [2usize, 3, 4] {
            for stride in [2u64, 4, 10] {
                let mut p = Partitioner::new(Partitioning::KeyBy, consumers);
                let mut counts = vec![0usize; consumers];
                for i in 0..600 {
                    match p.route(i * stride) {
                        RouteTargets::One(t) => counts[t] += 1,
                        RouteTargets::All(_) => panic!("keyby routes to one"),
                    }
                }
                for (replica, &c) in counts.iter().enumerate() {
                    assert!(
                        c > 0,
                        "stride {stride} x {consumers} consumers idles replica \
                         {replica}: {counts:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn broadcast_hits_everyone() {
        let mut p = Partitioner::new(Partitioning::Broadcast, 5);
        let targets: Vec<usize> = p.route(1).iter().collect();
        assert_eq!(targets, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn global_always_zero() {
        let mut p = Partitioner::new(Partitioning::Global, 7);
        for k in 0..20 {
            assert_eq!(p.route(k), RouteTargets::One(0));
        }
    }

    #[test]
    fn forward_routes_like_its_wiring() {
        // The pinned (equal-count) wiring hands the router exactly one
        // consumer: every tuple goes there.
        let mut pinned = Partitioner::new(Partitioning::Forward, 1);
        for k in 0..10 {
            assert_eq!(pinned.route(k), RouteTargets::One(0));
        }
        // Degraded (unequal-count) wiring spreads evenly, like Shuffle.
        let mut degraded = Partitioner::new(Partitioning::Forward, 3);
        let mut counts = [0usize; 3];
        for k in 0..99 {
            match degraded.route(k) {
                RouteTargets::One(i) => counts[i] += 1,
                RouteTargets::All(_) => panic!("forward routes to one"),
            }
        }
        assert_eq!(counts, [33, 33, 33]);
    }

    #[test]
    #[should_panic]
    fn zero_consumers_rejected() {
        Partitioner::new(Partitioning::Shuffle, 0);
    }

    #[test]
    fn default_routing_is_the_historical_mix_modulo() {
        // No weights attached: the partitioner must stay byte-identical to
        // the pre-skew-aware path (`mix_key % consumers`) — conformance
        // cross-config determinism depends on it.
        let mut plain = Partitioner::new(Partitioning::KeyBy, 3);
        for k in 0..500u64 {
            assert_eq!(
                plain.route(k),
                RouteTargets::One((Tuple::mix_key(k) % 3) as usize)
            );
            assert_eq!(
                plain.route(k),
                RouteTargets::One(route_keyed(k, 3, None)),
                "redistribution helper agrees with the default path"
            );
        }
    }

    #[test]
    fn weighted_routing_shifts_load_toward_heavy_weights() {
        let weights = [3.0, 1.0];
        let table = keyby_slot_table(2, &weights);
        assert_eq!(table.len(), 2 * KEYBY_SLOTS_PER_CONSUMER);
        let slots0 = table.iter().filter(|&&r| r == 0).count();
        assert_eq!(slots0, 12, "3:1 weights over 16 slots: 12 vs 4");
        let mut p = Partitioner::new(Partitioning::KeyBy, 2).with_weights(&weights);
        let mut counts = [0usize; 2];
        for k in 0..4000u64 {
            match p.route(k) {
                RouteTargets::One(t) => counts[t] += 1,
                RouteTargets::All(_) => panic!("keyby routes to one"),
            }
        }
        assert!(
            counts[0] > counts[1] * 2,
            "replica 0 should carry ~3x the keys: {counts:?}"
        );
    }

    #[test]
    fn weighted_routing_is_sticky_and_total() {
        let mut p = Partitioner::new(Partitioning::KeyBy, 4).with_weights(&[1.0, 2.0, 0.5, 1.5]);
        for k in 0..200u64 {
            let a = p.route(k);
            let b = p.route(k);
            assert_eq!(a, b, "same key, same replica");
            match a {
                RouteTargets::One(t) => assert!(t < 4),
                RouteTargets::All(_) => panic!("keyby routes to one"),
            }
        }
    }

    #[test]
    fn every_replica_keeps_at_least_one_slot() {
        // Extreme skew must not starve a replica completely: routing a
        // replica zero slots would strand any state redistributed to it.
        let table = keyby_slot_table(4, &[1000.0, 0.0, 0.0, 0.0]);
        for r in 0..4 {
            assert!(
                table.contains(&r),
                "replica {r} starved by extreme weights: {table:?}"
            );
        }
        // Degenerate inputs degrade to uniform.
        let t2 = keyby_slot_table(2, &[f64::NAN, -3.0]);
        assert_eq!(t2.iter().filter(|&&r| r == 0).count(), 8);
    }

    #[test]
    fn state_redistribution_routes_like_the_partitioner() {
        let weights = [1.0, 4.0, 2.0];
        let table = keyby_slot_table(3, &weights);
        let mut p = Partitioner::new(Partitioning::KeyBy, 3).with_weights(&weights);
        for k in 0..300u64 {
            assert_eq!(
                p.route(k),
                RouteTargets::One(route_keyed(k, 3, Some(&table))),
                "migration redistribution must agree with live routing"
            );
        }
    }
}
