//! Partition controllers: route emitted tuples to consumer replicas.
//!
//! Mirrors the paper's task anatomy (Figure 17): after an executor runs the
//! operator's core logic, the partition controller decides which consumer
//! replica's queue every output tuple lands in, per the edge's partitioning
//! strategy.

use crate::tuple::Tuple;
use brisk_dag::Partitioning;

/// Stateful router for one (producer replica, logical edge) pair.
#[derive(Debug, Clone)]
pub struct Partitioner {
    strategy: Partitioning,
    consumers: usize,
    rr_cursor: usize,
}

impl Partitioner {
    /// Router over `consumers` replicas using `strategy`.
    ///
    /// # Panics
    /// Panics if `consumers` is zero.
    pub fn new(strategy: Partitioning, consumers: usize) -> Partitioner {
        assert!(consumers > 0, "need at least one consumer replica");
        Partitioner {
            strategy,
            consumers,
            rr_cursor: 0,
        }
    }

    /// Number of consumer replicas routed over.
    pub fn consumers(&self) -> usize {
        self.consumers
    }

    /// Whether this edge broadcasts (the collector shares one batch
    /// builder — and one slab — across every consumer on broadcast edges).
    pub fn is_broadcast(&self) -> bool {
        matches!(self.strategy, Partitioning::Broadcast)
    }

    /// Consumer replica indices for a tuple with partitioning key `key`
    /// (batches carry keys in a dedicated lane, so routing needs only the
    /// key, not a whole tuple). At most one target except for broadcast,
    /// which returns all of them.
    pub fn route(&mut self, key: u64) -> RouteTargets {
        match self.strategy {
            // Forward at equal replica counts is wired as one pinned queue
            // per producer (`consumers == 1`, routed here trivially); at
            // unequal counts the pairing is meaningless and the edge
            // degrades to Shuffle's even round-robin spread, matching the
            // model's work-conserving treatment exactly.
            Partitioning::Shuffle | Partitioning::Forward => {
                let t = self.rr_cursor;
                self.rr_cursor = (self.rr_cursor + 1) % self.consumers;
                RouteTargets::One(t)
            }
            // Mix the key through FNV before the modulo: raw `key % n`
            // aliases with strided key spaces (e.g. all-even keys on two
            // consumers idle one replica entirely). See `Tuple::mix_key`.
            Partitioning::KeyBy => {
                RouteTargets::One((Tuple::mix_key(key) % self.consumers as u64) as usize)
            }
            Partitioning::Broadcast => RouteTargets::All(self.consumers),
            Partitioning::Global => RouteTargets::One(0),
        }
    }
}

/// Targets chosen by [`Partitioner::route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTargets {
    /// Exactly one consumer replica.
    One(usize),
    /// Every consumer replica `0..n`.
    All(usize),
}

impl RouteTargets {
    /// Iterate over the chosen replica indices.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let (start, end) = match self {
            RouteTargets::One(i) => (i, i + 1),
            RouteTargets::All(n) => (0, n),
        };
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_round_robins_evenly() {
        let mut p = Partitioner::new(Partitioning::Shuffle, 3);
        let mut counts = [0usize; 3];
        for _ in 0..99 {
            match p.route(0) {
                RouteTargets::One(i) => counts[i] += 1,
                RouteTargets::All(_) => panic!("shuffle routes to one"),
            }
        }
        assert_eq!(counts, [33, 33, 33]);
    }

    #[test]
    fn keyby_is_sticky() {
        let mut p = Partitioner::new(Partitioning::KeyBy, 4);
        let a1 = p.route(42);
        let _ = p.route(7);
        let a2 = p.route(42);
        assert_eq!(a1, a2, "same key must hit the same replica");
    }

    #[test]
    fn keyby_spreads_strided_key_spaces() {
        // Regression: raw `key % consumers` sent every all-even key to
        // replica 0, idling half the operator. The FNV mix must spread
        // strided spaces across all replicas.
        for consumers in [2usize, 3, 4] {
            for stride in [2u64, 4, 10] {
                let mut p = Partitioner::new(Partitioning::KeyBy, consumers);
                let mut counts = vec![0usize; consumers];
                for i in 0..600 {
                    match p.route(i * stride) {
                        RouteTargets::One(t) => counts[t] += 1,
                        RouteTargets::All(_) => panic!("keyby routes to one"),
                    }
                }
                for (replica, &c) in counts.iter().enumerate() {
                    assert!(
                        c > 0,
                        "stride {stride} x {consumers} consumers idles replica \
                         {replica}: {counts:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn broadcast_hits_everyone() {
        let mut p = Partitioner::new(Partitioning::Broadcast, 5);
        let targets: Vec<usize> = p.route(1).iter().collect();
        assert_eq!(targets, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn global_always_zero() {
        let mut p = Partitioner::new(Partitioning::Global, 7);
        for k in 0..20 {
            assert_eq!(p.route(k), RouteTargets::One(0));
        }
    }

    #[test]
    fn forward_routes_like_its_wiring() {
        // The pinned (equal-count) wiring hands the router exactly one
        // consumer: every tuple goes there.
        let mut pinned = Partitioner::new(Partitioning::Forward, 1);
        for k in 0..10 {
            assert_eq!(pinned.route(k), RouteTargets::One(0));
        }
        // Degraded (unequal-count) wiring spreads evenly, like Shuffle.
        let mut degraded = Partitioner::new(Partitioning::Forward, 3);
        let mut counts = [0usize; 3];
        for k in 0..99 {
            match degraded.route(k) {
                RouteTargets::One(i) => counts[i] += 1,
                RouteTargets::All(_) => panic!("forward routes to one"),
            }
        }
        assert_eq!(counts, [33, 33, 33]);
    }

    #[test]
    #[should_panic]
    fn zero_consumers_rejected() {
        Partitioner::new(Partitioning::Shuffle, 0);
    }
}
