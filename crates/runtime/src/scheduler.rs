//! Execution schedulers: thread-per-replica and the work-stealing core pool.
//!
//! BriskStream's RLAS optimizer places *replicas* on cores, but mapping one
//! OS thread per replica couples the two decisions: a fused chain
//! serializes onto a single host thread even when neighbouring cores idle,
//! and oversubscribed plans lean on the detect-and-park ladder. The
//! [`Scheduler::CorePool`] mode decouples them, in the spirit of
//! timely-dataflow's worker model: a fixed set of workers multiplexes
//! per-replica operator *tasks* through work-stealing run queues.
//!
//! # Task lifecycle
//!
//! Every spawned replica (fused-away operators ride their chain host)
//! becomes one task, identified by its global replica index. A task holds
//! the replica's operator instance, collector (with its fused subtree) and
//! input ports, and moves through an atomic state machine:
//!
//! ```text
//!            pop by worker              slice ran dry
//! READY ───────────────────▶ RUNNING ───────────────▶ IDLE
//!   ▲                          │  │                     │
//!   │      yield (requeue)     │  │    exhausted        │ wake-on-push /
//!   └──────────────────────────┘  └──▶ DONE             │ producers done
//!   └───────────────────────────────────────────────────┘
//! ```
//!
//! A *slice* drains up to a bounded number of jumbos from the task's input
//! ports (or invokes a spout a bounded number of times), runs the operator
//! — including its whole fused subtree, inline, exactly as under
//! thread-per-replica execution — and flushes. Bounding the slice keeps one
//! hot replica from starving the rest of a worker's run queue.
//!
//! Queue pushes wake the consumer's task through the [`WakeHub`]: a
//! compare-and-swap from `IDLE` to `READY` enqueues the task on the shared
//! injector, so only genuinely sleeping tasks pay the wake cost. The
//! classic lost-wakeup race (producer pushes while the consumer's slice is
//! deciding to sleep) is closed on the sleep path: the worker publishes
//! `IDLE` *first*, then re-checks the task's input queues and producer
//! latches, and re-wakes the task itself if work slipped in.
//!
//! # Stealing policy
//!
//! Each worker owns a run queue and serves it round-robin (pop front, run
//! a slice, requeue at the back). Freshly woken tasks on the shared
//! injector take priority over the worker's own queue — a yielding task
//! requeues itself every slice, so the reverse order would let one
//! back-pressured producer starve its just-woken consumers on a small
//! pool. A dry worker then steals from the *back* of sibling queues —
//! the slot its owner would reach last. A worker with
//! no task anywhere falls back to the same adaptive spin → yield → park
//! ladder ([`Backoff`]) that idle executors use under thread-per-replica
//! execution, so an idle pool costs what an idle executor pool costs.
//!
//! Back-pressure cannot block a worker: pool collectors run in
//! non-blocking flush mode, so a full destination queue hands the jumbo
//! back, the task reports itself back-pressured and *yields* its worker
//! instead of parking it — the single-worker pool therefore cannot
//! deadlock on a producer→consumer cycle through a bounded queue.

use crate::engine::{
    consume_batch, emergency_retire, merge_and_retire, replay_pending, BoltState, EngineShared,
    InputPort, TaskSeed, POP_BATCH,
};
use crate::fusion::SinkLocal;
use crate::operator::{BoltContext, Collector, DynSpout, OperatorRuntime, SpoutStatus};
use crate::queue::ReplicaQueue;
use crate::spsc::Backoff;
use crate::supervise::{panic_message, FaultKind};
use crate::tuple::JumboTuple;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle, Thread};
use std::time::Instant;

/// How the engine maps operator replicas onto OS threads
/// ([`crate::EngineConfig::scheduler`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// One OS thread per spawned replica — the paper's executor model.
    /// Replica counts and thread counts are coupled; oversubscribed plans
    /// rely on the adaptive park ladder.
    #[default]
    ThreadPerReplica,
    /// A fixed pool of workers drives per-replica tasks through
    /// work-stealing run queues (see the [module docs](self)). Replica
    /// counts no longer dictate thread counts, so a plan with hundreds of
    /// replicas runs on as many workers as the host has cores.
    CorePool {
        /// Worker-thread count; `0` sizes the pool to the host's available
        /// parallelism. Always clamped to the number of spawned tasks.
        workers: usize,
    },
}

impl fmt::Display for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheduler::ThreadPerReplica => write!(f, "thread_per_replica"),
            Scheduler::CorePool { workers: 0 } => write!(f, "core_pool(auto)"),
            Scheduler::CorePool { workers } => write!(f, "core_pool({workers})"),
        }
    }
}

impl Scheduler {
    /// Resolved pool width for `tasks` spawned replicas: `None` under
    /// thread-per-replica execution, otherwise at least one worker and at
    /// most one per task.
    pub(crate) fn pool_workers(&self, tasks: usize) -> Option<usize> {
        match *self {
            Scheduler::ThreadPerReplica => None,
            Scheduler::CorePool { workers } => {
                let w = if workers == 0 {
                    thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                } else {
                    workers
                };
                Some(w.clamp(1, tasks.max(1)))
            }
        }
    }
}

/// Task states (one `AtomicU8` per global replica index).
const IDLE: u8 = 0;
const READY: u8 = 1;
const RUNNING: u8 = 2;
const DONE: u8 = 3;

/// Wake-on-push hub shared by the pool's workers and every pool-mode
/// [`Collector`]: task states plus the injector queue freshly woken tasks
/// land on. Fused-away replicas keep the `DONE` state they are born with,
/// so waking them is a no-op.
pub(crate) struct WakeHub {
    states: Vec<AtomicU8>,
    injector: Mutex<VecDeque<usize>>,
    /// Workers currently inside the idle back-off ladder; wakes unpark
    /// them so a freshly readied task is picked up within one rung.
    idle_workers: AtomicUsize,
    /// Every worker's thread handle, registered at worker startup.
    sleepers: Mutex<Vec<Thread>>,
}

impl WakeHub {
    pub(crate) fn new(total_replicas: usize) -> WakeHub {
        WakeHub {
            states: (0..total_replicas).map(|_| AtomicU8::new(DONE)).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle_workers: AtomicUsize::new(0),
            sleepers: Mutex::new(Vec::new()),
        }
    }

    /// Mark `task` ready if it is sleeping. Exactly one waker wins the
    /// `IDLE → READY` transition, so a task is never enqueued twice.
    pub(crate) fn wake(&self, task: usize) {
        if self.states[task]
            .compare_exchange(IDLE, READY, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.injector.lock().push_back(task);
            self.unpark_idle();
        }
    }

    /// Wake every sleeping task — used when an operator retires, which may
    /// release consumers parked on its `op_done` latch.
    fn wake_all(&self) {
        for t in 0..self.states.len() {
            self.wake(t);
        }
    }

    fn unpark_idle(&self) {
        if self.idle_workers.load(Ordering::Acquire) > 0 {
            for t in self.sleepers.lock().iter() {
                t.unpark();
            }
        }
    }
}

/// Sleep-path recheck data, kept outside the task slot so the lost-wakeup
/// guard can inspect a task's inputs *after* returning it to its slot.
struct TaskMeta {
    queues: Vec<Arc<ReplicaQueue<JumboTuple>>>,
    producer_ops: Vec<usize>,
}

/// One schedulable replica: the operator instance plus everything its
/// thread owned under thread-per-replica execution.
struct Task {
    op_index: usize,
    body: TaskBody,
    collector: Collector,
    ports: Vec<InputPort>,
    producer_ops: Vec<usize>,
    /// Operator `finish` hooks already ran; the task only drains
    /// back-pressured output buffers before retiring.
    finished: bool,
    /// Construction context — the restart path re-instances the operator
    /// through its factory with it.
    ctx: BoltContext,
    /// Contained panics so far, checked against the restart policy.
    attempts: u32,
    /// Restart backoff in pool clothing: instead of sleeping a worker, the
    /// task yields unproductively until this instant passes.
    resume_at: Option<Instant>,
    /// Restart budget exhausted: skip the operator's `finish`, drain
    /// buffers, retire.
    dead: bool,
}

enum TaskBody {
    Spout {
        spout: Box<dyn DynSpout>,
        since_flush: u32,
    },
    Bolt(BoltState),
}

/// Spout invocations per slice. Sized to keep the spout's working set hot
/// for several flush batches before the worker switches tasks (a switch
/// costs cache and branch locality, not just the queue hops); back-pressure
/// still ends a slice immediately, so consumers on the same worker are
/// never starved — a saturating spout runs out of queue space long before
/// it runs out of slice.
const SPOUT_SLICE: u32 = 1024;

/// Port polls per bolt slice (each poll drains up to [`POP_BATCH`] jumbos).
/// Like [`SPOUT_SLICE`], deliberately generous: an empty poll or
/// back-pressure ends the slice early, so the budget only bounds how long a
/// saturated bolt keeps its state hot before yielding the worker.
const BOLT_SLICE_POLLS: usize = 64;

enum SliceOutcome {
    /// The task stays runnable: requeue it. `progressed` is false when the
    /// slice did no useful work (back-pressured or an idle spout), which
    /// feeds the worker's whole-pool-idle detector.
    Yield { progressed: bool },
    /// A bolt with live producers and empty inputs: park until a push (or
    /// a producer retiring) wakes it.
    Sleep,
    /// The task retired; counters are merged, sink metrics returned.
    Finished(Option<SinkLocal>),
}

enum Step {
    Yield(bool),
    Sleep,
    Finish,
    /// A contained operator panic (rendered payload); the supervisor
    /// decides restart vs. death.
    Fault(String),
}

fn run_slice(task: &mut Task, shared: &EngineShared) -> SliceOutcome {
    if task.finished {
        return finish_task(task, shared);
    }
    // Restart backoff, pool style: the task stays runnable but does no
    // work until its resume instant passes — a sleeping worker would
    // starve every other task on its deque.
    if let Some(at) = task.resume_at {
        if Instant::now() < at {
            // Backing off is liveness, not a stall.
            shared.progress[task.collector.replica()].fetch_add(1, Ordering::Relaxed);
            return SliceOutcome::Yield { progressed: false };
        }
        task.resume_at = None;
    }
    // Ship stalled output before consuming any more input.
    if task.collector.is_backpressured() {
        task.collector.flush_all();
        if task.collector.is_backpressured() {
            return SliceOutcome::Yield { progressed: false };
        }
    }
    let step = match &mut task.body {
        TaskBody::Spout { spout, since_flush } => {
            run_spout_slice(spout.as_mut(), since_flush, &mut task.collector, shared)
        }
        TaskBody::Bolt(state) => run_bolt_slice(
            state,
            &task.ports,
            &mut task.collector,
            &task.producer_ops,
            task.op_index,
            shared,
        ),
    };
    let step = match step {
        Step::Fault(message) => handle_fault(task, message, shared),
        other => other,
    };
    match step {
        Step::Finish => finish_task(task, shared),
        Step::Sleep => SliceOutcome::Sleep,
        Step::Yield(progressed) => SliceOutcome::Yield { progressed },
        Step::Fault(_) => unreachable!("handle_fault resolves faults"),
    }
}

/// One spout slice: bounded `next` calls, each under a panic guard.
fn run_spout_slice(
    spout: &mut dyn DynSpout,
    since_flush: &mut u32,
    collector: &mut Collector,
    shared: &EngineShared,
) -> Step {
    let mut step = Step::Yield(false);
    for _ in 0..SPOUT_SLICE {
        if shared.stop.load(Ordering::Relaxed) || collector.output_closed {
            return Step::Finish;
        }
        let status = match catch_unwind(AssertUnwindSafe(|| spout.next(collector))) {
            Ok(status) => status,
            Err(payload) => return Step::Fault(panic_message(payload.as_ref())),
        };
        match status {
            SpoutStatus::Emitted(n) => {
                shared.replica_tuples[collector.replica()].fetch_add(n as u64, Ordering::Relaxed);
                step = Step::Yield(true);
                *since_flush += 1;
                if *since_flush >= shared.config.flush_every {
                    collector.flush_all();
                    *since_flush = 0;
                }
                if collector.is_backpressured() {
                    break;
                }
            }
            SpoutStatus::Idle => {
                // Nothing to emit right now. Spouts have no input
                // queues, so no push will ever wake them: they stay
                // runnable and the worker's idle detector paces the
                // polling.
                collector.flush_all();
                *since_flush = 0;
                break;
            }
            SpoutStatus::Exhausted => return Step::Finish,
        }
    }
    step
}

/// One bolt slice: restart housekeeping (replay the interrupted jumbo's
/// tail, finish leftover batched jumbos), then bounded input polls.
fn run_bolt_slice(
    state: &mut BoltState,
    ports: &[InputPort],
    collector: &mut Collector,
    producer_ops: &[usize],
    op_index: usize,
    shared: &EngineShared,
) -> Step {
    if let Err(m) = replay_pending(state, collector, op_index, shared) {
        return Step::Fault(m);
    }
    let mut progressed = false;
    if !state.batch.is_empty() {
        progressed = true;
        if let Err(m) = consume_batch(state, ports, collector, op_index, shared) {
            return Step::Fault(m);
        }
        if collector.is_backpressured() {
            return Step::Yield(true);
        }
    }
    for _ in 0..BOLT_SLICE_POLLS {
        match state.cursor.poll(ports, &mut state.batch, POP_BATCH) {
            Some(port_idx) => {
                progressed = true;
                state.batch_port = port_idx;
                if let Err(m) = consume_batch(state, ports, collector, op_index, shared) {
                    return Step::Fault(m);
                }
                if collector.is_backpressured() {
                    break;
                }
            }
            None => {
                collector.flush_all();
                state.since_flush = 0;
                if collector.is_backpressured() {
                    // Consumers never signal "space freed", so a
                    // stalled task must poll-retry, not sleep.
                    break;
                }
                let producers_done = producer_ops
                    .iter()
                    .all(|&p| shared.op_done[p].load(Ordering::Acquire));
                if producers_done {
                    if state.cursor.drained(ports) {
                        return Step::Finish;
                    }
                    // A straggler jumbo is still in flight: stay
                    // runnable and drain it next slice.
                } else if !progressed {
                    return Step::Sleep;
                }
                break;
            }
        }
    }
    Step::Yield(progressed)
}

/// Pool-side restart supervisor: on a granted restart, re-instance the
/// operator (unless `recover()` keeps it) and schedule the backoff as a
/// yield-until instant; on a denied one, close the task's *input* queues
/// (producers fail fast; outputs stay open for live consumers) and retire
/// it through [`finish_task`]'s normal accounting.
fn handle_fault(task: &mut Task, message: String, shared: &EngineShared) -> Step {
    task.attempts += 1;
    match shared.config.restart.delay_for(task.attempts) {
        Some(delay) => {
            shared.record_fault(
                task.op_index,
                task.ctx.replica,
                FaultKind::OperatorPanic,
                message,
                true,
            );
            shared.restarts[task.op_index].fetch_add(1, Ordering::Relaxed);
            task.resume_at = Some(Instant::now() + delay);
            match &mut task.body {
                TaskBody::Spout { spout, .. } => {
                    if !spout.recover() {
                        *spout = shared.new_spout_instance(task.op_index, task.ctx);
                    }
                }
                TaskBody::Bolt(state) => {
                    if !state.bolt.recover() {
                        state.bolt = shared.new_bolt_instance(task.op_index, task.ctx);
                    }
                }
            }
            Step::Yield(true)
        }
        None => {
            shared.record_fault(
                task.op_index,
                task.ctx.replica,
                FaultKind::OperatorPanic,
                message,
                false,
            );
            for p in &task.ports {
                p.queue.close();
            }
            task.dead = true;
            Step::Finish
        }
    }
}

/// Run the operator's `finish` hooks (once), then drain every output
/// buffer; with back-pressure the task yields and keeps draining on later
/// slices until all residue ships, and only then merges its counters.
fn finish_task(task: &mut Task, shared: &EngineShared) -> SliceOutcome {
    if !task.finished {
        if !task.dead && shared.harvesting() {
            // Migration pause: hand state out instead of finishing —
            // `finish` finals belong to the true end of stream, which only
            // the last (non-harvesting) epoch reaches.
            let extracted = match &mut task.body {
                TaskBody::Spout { spout, .. } => {
                    catch_unwind(AssertUnwindSafe(|| spout.extract_state()))
                }
                TaskBody::Bolt(state) => {
                    let bolt = &mut state.bolt;
                    catch_unwind(AssertUnwindSafe(|| bolt.extract_state()))
                }
            };
            match extracted {
                Ok(entries) => shared.harvest_state(task.op_index, task.ctx.replica, entries),
                Err(payload) => shared.record_fault(
                    task.op_index,
                    task.ctx.replica,
                    FaultKind::OperatorPanic,
                    panic_message(payload.as_ref()),
                    false,
                ),
            }
        } else if !task.dead {
            match &mut task.body {
                TaskBody::Spout { spout, .. } => {
                    // Exhausted before any harvest was requested: park the
                    // final source position so a migration pause that races
                    // this retirement still hands the spent budget over
                    // (join folds parked state into the harvest).
                    match catch_unwind(AssertUnwindSafe(|| spout.extract_state())) {
                        Ok(entries) => {
                            shared.park_retired(task.op_index, task.ctx.replica, entries)
                        }
                        Err(payload) => shared.record_fault(
                            task.op_index,
                            task.ctx.replica,
                            FaultKind::OperatorPanic,
                            panic_message(payload.as_ref()),
                            false,
                        ),
                    }
                }
                TaskBody::Bolt(state) => {
                    // Panic-guarded: a faulty `finish` is recorded, never
                    // restarted (the operator is retiring anyway), and never
                    // poisons teardown.
                    let bolt = &mut state.bolt;
                    let collector = &mut task.collector;
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| bolt.finish(collector)))
                    {
                        shared.record_fault(
                            task.op_index,
                            task.ctx.replica,
                            FaultKind::OperatorPanic,
                            panic_message(payload.as_ref()),
                            false,
                        );
                    }
                }
            }
        }
        task.collector.finish_fused();
        task.finished = true;
    }
    task.collector.flush_all();
    if task.collector.is_backpressured() && !task.collector.output_closed {
        return SliceOutcome::Yield { progressed: true };
    }
    let sink_local = match &mut task.body {
        TaskBody::Bolt(state) => state.sink_local.take(),
        TaskBody::Spout { .. } => None,
    };
    SliceOutcome::Finished(merge_and_retire(
        &mut task.collector,
        task.op_index,
        sink_local,
        shared,
    ))
}

/// The pool's shared spine: per-worker run queues, task slots, and the
/// run's merged sink metrics.
struct PoolShared {
    hub: Arc<WakeHub>,
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Task storage by global replica index; `None` while a worker runs
    /// the task (and forever once it retires or for fused-away replicas).
    slots: Vec<Mutex<Option<Task>>>,
    /// Sleep-path recheck data (input queues + producer latches).
    meta: Vec<Option<TaskMeta>>,
    sink: Mutex<SinkLocal>,
}

/// A running worker pool; [`PoolRun::join`] blocks until every task
/// retired and returns the merged sink metrics.
pub(crate) struct PoolRun {
    workers: Vec<JoinHandle<()>>,
    pool: Arc<PoolShared>,
}

impl PoolRun {
    pub(crate) fn join(self, shared: &EngineShared) -> SinkLocal {
        for h in self.workers {
            // Worker bodies are backstopped, so a join error means even
            // the backstop unwound: record the executor loss (it is not
            // attributable to an operator) instead of double-panicking
            // during teardown.
            if let Err(payload) = h.join() {
                shared.record_fault(
                    usize::MAX,
                    0,
                    FaultKind::ExecutorLoss,
                    panic_message(payload.as_ref()),
                    false,
                );
            }
        }
        std::mem::take(&mut self.pool.sink.lock())
    }
}

/// Instantiate every seed as a task, seed the run queues round-robin (in
/// the given order — the engine passes reverse-topological, so consumers
/// land early), and spawn `workers` pool workers.
pub(crate) fn spawn_pool(
    seeds: Vec<TaskSeed>,
    hub: Arc<WakeHub>,
    shared: Arc<EngineShared>,
    workers: usize,
) -> PoolRun {
    let total = hub.states.len();
    let slots: Vec<Mutex<Option<Task>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let mut meta: Vec<Option<TaskMeta>> = (0..total).map(|_| None).collect();
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, seed) in seeds.into_iter().enumerate() {
        let t = seed.global;
        meta[t] = Some(TaskMeta {
            queues: seed.ports.iter().map(|p| Arc::clone(&p.queue)).collect(),
            producer_ops: seed.producer_ops.clone(),
        });
        let op = brisk_dag::OperatorId(seed.op_index);
        let body = match shared.app.runtime(op) {
            OperatorRuntime::Spout(f) => {
                let mut spout = f(seed.ctx);
                if let Some(entries) = shared.take_preload(t) {
                    spout.install_state(entries);
                }
                TaskBody::Spout {
                    spout,
                    since_flush: 0,
                }
            }
            OperatorRuntime::Bolt(f) | OperatorRuntime::Sink(f) => {
                let mut bolt = f(seed.ctx);
                if let Some(entries) = shared.take_preload(t) {
                    bolt.install_state(entries);
                }
                TaskBody::Bolt(BoltState::new(bolt, seed.kind, seed.ports.len()))
            }
        };
        *slots[t].lock() = Some(Task {
            op_index: seed.op_index,
            body,
            collector: seed.collector,
            ports: seed.ports,
            producer_ops: seed.producer_ops,
            finished: false,
            ctx: seed.ctx,
            attempts: 0,
            resume_at: None,
            dead: false,
        });
        hub.states[t].store(READY, Ordering::Release);
        deques[i % workers].lock().push_back(t);
    }
    let pool = Arc::new(PoolShared {
        hub,
        deques,
        slots,
        meta,
        sink: Mutex::new(SinkLocal::default()),
    });
    let handles = (0..workers)
        .map(|w| {
            let pool = Arc::clone(&pool);
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("brisk-worker#{w}"))
                .spawn(move || worker_loop(w, &pool, &shared))
                .expect("worker spawn")
        })
        .collect();
    PoolRun {
        workers: handles,
        pool,
    }
}

/// Next task for worker `w`: the injector first (freshly woken tasks —
/// and a yielding task requeues onto its worker's own deque every slice,
/// so own-deque-first would let one back-pressured producer starve woken
/// consumers forever on a small pool), then the own queue front, then
/// steal from the back of sibling queues.
fn next_task(w: usize, pool: &PoolShared) -> Option<usize> {
    if let Some(t) = pool.hub.injector.lock().pop_front() {
        return Some(t);
    }
    if let Some(t) = pool.deques[w].lock().pop_front() {
        return Some(t);
    }
    let n = pool.deques.len();
    for off in 1..n {
        if let Some(t) = pool.deques[(w + off) % n].lock().pop_back() {
            return Some(t);
        }
    }
    None
}

fn worker_loop(w: usize, pool: &PoolShared, shared: &EngineShared) {
    pool.hub.sleepers.lock().push(thread::current());
    let mut backoff = Backoff::with_profile(shared.backoff_profile);
    // Consecutive slices (across any tasks) that did no useful work; once
    // the streak covers every live task the whole pool looks idle and the
    // worker drops onto the back-off ladder.
    let mut unproductive = 0usize;
    loop {
        match next_task(w, pool) {
            Some(t) => {
                if pool.hub.states[t]
                    .compare_exchange(READY, RUNNING, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    continue; // stale id; the state machine owns the truth
                }
                let mut task = pool.slots[t].lock().take().expect("claimed task present");
                // Backstop: a panic that escapes every operator guard (a
                // runtime bug, not an operator fault) must not kill the
                // worker — force-retire the task's accounting so the rest
                // of the run winds down, and keep serving other tasks.
                let outcome = match catch_unwind(AssertUnwindSafe(|| run_slice(&mut task, shared)))
                {
                    Ok(outcome) => outcome,
                    Err(payload) => {
                        let hosted = task.collector.hosted_ops();
                        let input_queues: Vec<Arc<ReplicaQueue<JumboTuple>>> =
                            task.ports.iter().map(|p| Arc::clone(&p.queue)).collect();
                        emergency_retire(
                            shared,
                            task.op_index,
                            task.ctx.replica,
                            t,
                            &hosted,
                            &input_queues,
                            panic_message(payload.as_ref()),
                        );
                        pool.hub.states[t].store(DONE, Ordering::Release);
                        pool.hub.wake_all();
                        unproductive = 0;
                        backoff.reset();
                        continue;
                    }
                };
                match outcome {
                    SliceOutcome::Yield { progressed } => {
                        // Slot first, then state, then queue: a task id in
                        // a run queue always has its task in its slot.
                        *pool.slots[t].lock() = Some(task);
                        pool.hub.states[t].store(READY, Ordering::Release);
                        pool.deques[w].lock().push_back(t);
                        if progressed {
                            unproductive = 0;
                            backoff.reset();
                        } else {
                            unproductive += 1;
                            if unproductive >= shared.live_replicas.load(Ordering::Relaxed).max(1) {
                                snooze_idle(pool, &mut backoff);
                                unproductive = 0;
                            }
                        }
                    }
                    SliceOutcome::Sleep => {
                        let meta = pool.meta[t].as_ref().expect("meta for live task");
                        *pool.slots[t].lock() = Some(task);
                        // Publish IDLE *before* rechecking: a producer that
                        // pushed after our slice saw empty queues either
                        // wins the wake CAS itself or its push is visible
                        // to the recheck below — never neither.
                        pool.hub.states[t].store(IDLE, Ordering::SeqCst);
                        let work_appeared = meta.queues.iter().any(|q| !q.is_empty())
                            || meta
                                .producer_ops
                                .iter()
                                .all(|&p| shared.op_done[p].load(Ordering::Acquire));
                        if work_appeared {
                            pool.hub.wake(t);
                        }
                        unproductive += 1;
                    }
                    SliceOutcome::Finished(sink) => {
                        if let Some(s) = sink {
                            let mut agg = pool.sink.lock();
                            agg.events += s.events;
                            agg.latency.merge(&s.latency);
                        }
                        pool.hub.states[t].store(DONE, Ordering::Release);
                        // Retiring may have released an `op_done` latch
                        // consumers sleep on; let them re-evaluate.
                        pool.hub.wake_all();
                        unproductive = 0;
                        backoff.reset();
                    }
                }
            }
            None => {
                if shared.live_replicas.load(Ordering::Acquire) == 0 {
                    break;
                }
                snooze_idle(pool, &mut backoff);
            }
        }
    }
}

/// One rung of the idle ladder, with the worker registered as idle so
/// wakes unpark it instead of waiting out the park interval.
fn snooze_idle(pool: &PoolShared, backoff: &mut Backoff) {
    pool.hub.idle_workers.fetch_add(1, Ordering::AcqRel);
    backoff.snooze();
    pool.hub.idle_workers.fetch_sub(1, Ordering::AcqRel);
}
