//! Supervised execution: restart policies, structured replica faults,
//! poison-tuple quarantine accounting, and the stall watchdog.
//!
//! The engine's executors wrap every user-operator call (`DynSpout::next`,
//! `DynBolt::execute`, `DynBolt::finish`, and inline fused deliveries) in
//! `catch_unwind`, so a panicking operator becomes a structured
//! [`ReplicaFault`] instead of a poisoned `join` that takes the whole run
//! down. What happens next is governed by [`RestartPolicy`]:
//!
//! * **Restart** ([`RestartPolicy::Bounded`]): the replica's operator
//!   instance is re-created through its registered factory (or kept, when
//!   [`crate::DynBolt::recover`] / [`crate::DynSpout::recover`] opts in to
//!   explicit state handoff) after an exponential backoff, while the
//!   replica's queues, collector, fused subtree and `op_live` latch stay
//!   exactly as they were — drain and termination accounting is unchanged
//!   by a restart.
//! * **Quarantine**: a panic attributed to a specific input tuple sends
//!   that tuple to the operator's dead-letter counter
//!   ([`crate::OpStats::quarantined`]) instead of retrying it forever. The
//!   engine guarantees *at-most-once* for a quarantined tuple and
//!   exactly-once for everything else.
//! * **Death** ([`RestartPolicy::Never`], or a bounded budget exhausted):
//!   the replica retires through the normal accounting path and closes its
//!   *input* queues so blocked producers fail fast instead of parking
//!   forever. Its output queues are **not** closed — still-live consumers
//!   drain them and exit through the ordinary `op_done` cascade.
//!
//! The optional **stall watchdog**
//! ([`crate::EngineConfig::stall_deadline`]) samples per-replica progress
//! counters from a supervisor thread and records a [`StallEvent`] for any
//! bolt/sink replica that makes no progress within the deadline while
//! input is pending — unless one of its output queues is full, which means
//! the replica is back-pressured, not stuck, and is never flagged. The
//! watchdog only ever observes and reports; it never kills a replica.

use crate::engine::EngineShared;
use crate::queue::ReplicaQueue;
use crate::tuple::JumboTuple;
use brisk_dag::OperatorId;
use std::any::Any;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Backoff ceiling for [`RestartPolicy::Bounded`]: exponential growth is
/// capped here so a replica with a large restart budget never sleeps
/// unboundedly between attempts.
pub const MAX_RESTART_BACKOFF: Duration = Duration::from_secs(5);

/// What the engine does when a replica's operator panics
/// ([`crate::EngineConfig::restart`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// No restarts: the first fault retires the replica (its input queues
    /// close so producers fail fast; the run terminates cleanly and the
    /// fault is reported).
    #[default]
    Never,
    /// Restart the replica up to `max_restarts` times, sleeping
    /// `backoff * 2^(attempt-1)` (capped at [`MAX_RESTART_BACKOFF`])
    /// before each attempt. The faulting input tuple, if one is
    /// attributable, is quarantined — never retried.
    Bounded {
        /// Restart budget per replica (per fused instance for fused-away
        /// operators). The `max_restarts + 1`-th fault kills the replica.
        max_restarts: u32,
        /// Base backoff before the first restart; doubles per attempt.
        backoff: Duration,
    },
}

impl RestartPolicy {
    /// Backoff before restart attempt `attempt` (1-based), or `None` when
    /// the policy denies the restart and the replica must die.
    pub fn delay_for(&self, attempt: u32) -> Option<Duration> {
        match *self {
            RestartPolicy::Never => None,
            RestartPolicy::Bounded {
                max_restarts,
                backoff,
            } => {
                if attempt == 0 || attempt > max_restarts {
                    return None;
                }
                let doublings = (attempt - 1).min(16);
                Some(
                    backoff
                        .saturating_mul(1u32 << doublings)
                        .min(MAX_RESTART_BACKOFF),
                )
            }
        }
    }
}

/// How a fault surfaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// A panic escaped the operator's own `next`/`execute`/`finish` call
    /// on a spawned replica.
    OperatorPanic,
    /// A panic inside an inline fused delivery — attributed to the fused
    /// operator, not to the executor hosting it.
    FusedPanic {
        /// Logical operator index of the chain host whose thread/task the
        /// panic happened on.
        host_op: usize,
    },
    /// The executor itself was lost (a panic outside any guarded operator
    /// call, or a join error): the supervisor force-retired the replica's
    /// accounting so the rest of the run can wind down.
    ExecutorLoss,
}

/// One structured fault record (see [`crate::RunReport::faults`]).
#[derive(Debug, Clone)]
pub struct ReplicaFault {
    /// Logical operator index the fault is attributed to
    /// (`usize::MAX` for faults not attributable to an operator, e.g. the
    /// loss of a pool worker).
    pub op_index: usize,
    /// Operator name at fault time (`"<executor>"` when not attributable).
    pub op_name: String,
    /// Replica index within the operator.
    pub replica: usize,
    /// How the fault surfaced.
    pub kind: FaultKind,
    /// The panic payload, rendered.
    pub message: String,
    /// Whether the restart policy granted a restart (false: the replica
    /// died).
    pub restarted: bool,
}

impl fmt::Display for ReplicaFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{}: {:?} \"{}\" ({})",
            self.op_name,
            self.replica,
            self.kind,
            self.message,
            if self.restarted { "restarted" } else { "died" }
        )
    }
}

/// A watchdog observation: a replica made no progress within the stall
/// deadline while input was pending and none of its output queues was full
/// (i.e. it was not merely back-pressured).
#[derive(Debug, Clone)]
pub struct StallEvent {
    /// Logical operator index of the stalled replica.
    pub op_index: usize,
    /// Operator name.
    pub op_name: String,
    /// Replica index within the operator.
    pub replica: usize,
    /// How long the replica had made no progress when flagged.
    pub stalled_for: Duration,
}

impl fmt::Display for StallEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{} stalled for {:?}",
            self.op_name, self.replica, self.stalled_for
        )
    }
}

/// Aggregated fault view of one run ([`crate::RunReport::fault_summary`]).
#[derive(Debug, Clone, Default)]
pub struct FaultSummary {
    /// Every recorded fault, in occurrence order.
    pub faults: Vec<ReplicaFault>,
    /// Every watchdog stall observation.
    pub stalls: Vec<StallEvent>,
    /// Total replica restarts across all operators.
    pub restarts: u64,
    /// Total quarantined (dead-lettered) tuples across all operators.
    pub quarantined: u64,
}

impl FaultSummary {
    /// True when the run saw no faults and no stalls.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.stalls.is_empty()
    }
}

impl fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} fault(s), {} restart(s), {} quarantined tuple(s), {} stall(s)",
            self.faults.len(),
            self.restarts,
            self.quarantined,
            self.stalls.len()
        )?;
        for fault in &self.faults {
            writeln!(f, "  - {fault}")?;
        }
        for stall in &self.stalls {
            writeln!(f, "  - {stall}")?;
        }
        Ok(())
    }
}

/// Render a panic payload (the `Box<dyn Any>` from `catch_unwind`).
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Everything the watchdog needs to observe one spawned bolt/sink replica.
pub(crate) struct WatchEntry {
    pub(crate) global: usize,
    pub(crate) op_index: usize,
    pub(crate) replica: usize,
    /// The replica's input queues: a stall requires pending input.
    pub(crate) inputs: Vec<Arc<ReplicaQueue<JumboTuple>>>,
    /// The replica's output queues (including its fused subtree's): a full
    /// output queue means back-pressure, which is never flagged.
    pub(crate) outputs: Vec<Arc<ReplicaQueue<JumboTuple>>>,
}

/// Spawn the supervisor thread sampling per-replica progress counters.
/// Exits when the run stops or every replica retires.
pub(crate) fn spawn_watchdog(
    entries: Vec<WatchEntry>,
    shared: Arc<EngineShared>,
    deadline: Duration,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("brisk-watchdog".into())
        .spawn(move || {
            let tick = (deadline / 4).max(Duration::from_millis(1));
            let mut last: Vec<u64> = entries
                .iter()
                .map(|e| shared.progress[e.global].load(Ordering::Relaxed))
                .collect();
            let mut changed: Vec<Instant> = vec![Instant::now(); entries.len()];
            let mut flagged: Vec<bool> = vec![false; entries.len()];
            loop {
                if shared.stop.load(Ordering::Relaxed)
                    || shared.live_replicas.load(Ordering::Relaxed) == 0
                {
                    break;
                }
                std::thread::sleep(tick);
                for (i, e) in entries.iter().enumerate() {
                    if shared.replica_done[e.global].load(Ordering::Relaxed) {
                        continue;
                    }
                    let cur = shared.progress[e.global].load(Ordering::Relaxed);
                    if cur != last[i] {
                        last[i] = cur;
                        changed[i] = Instant::now();
                        flagged[i] = false;
                        continue;
                    }
                    if flagged[i] {
                        continue;
                    }
                    let stalled_for = changed[i].elapsed();
                    if stalled_for < deadline {
                        continue;
                    }
                    // No progress past the deadline. Flag only a replica
                    // that *could* have progressed: input pending, and no
                    // output queue full (a full output queue means the
                    // replica is blocked by back-pressure downstream —
                    // slow, not stuck, and never the watchdog's business).
                    let has_input = e.inputs.iter().any(|q| !q.is_empty());
                    let backpressured = e.outputs.iter().any(|q| q.len() >= q.capacity());
                    if has_input && !backpressured {
                        flagged[i] = true;
                        let op_name = shared
                            .app
                            .topology
                            .operator(OperatorId(e.op_index))
                            .name
                            .clone();
                        shared.stalls.lock().push(StallEvent {
                            op_index: e.op_index,
                            op_name,
                            replica: e.replica,
                            stalled_for,
                        });
                    }
                }
            }
        })
        .expect("watchdog spawn")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_denies_every_attempt() {
        assert_eq!(RestartPolicy::Never.delay_for(1), None);
        assert_eq!(RestartPolicy::default().delay_for(1), None);
    }

    #[test]
    fn bounded_backoff_doubles_and_caps() {
        let p = RestartPolicy::Bounded {
            max_restarts: 3,
            backoff: Duration::from_millis(100),
        };
        assert_eq!(p.delay_for(1), Some(Duration::from_millis(100)));
        assert_eq!(p.delay_for(2), Some(Duration::from_millis(200)));
        assert_eq!(p.delay_for(3), Some(Duration::from_millis(400)));
        assert_eq!(p.delay_for(4), None, "budget exhausted");
        let wide = RestartPolicy::Bounded {
            max_restarts: 100,
            backoff: Duration::from_secs(1),
        };
        assert_eq!(wide.delay_for(60), Some(MAX_RESTART_BACKOFF), "capped");
    }

    #[test]
    fn summary_formats_and_empties() {
        let mut s = FaultSummary::default();
        assert!(s.is_empty());
        s.faults.push(ReplicaFault {
            op_index: 1,
            op_name: "relay".into(),
            replica: 0,
            kind: FaultKind::OperatorPanic,
            message: "boom".into(),
            restarted: true,
        });
        s.restarts = 1;
        assert!(!s.is_empty());
        let text = format!("{s}");
        assert!(text.contains("relay#0"), "{text}");
        assert!(text.contains("restarted"), "{text}");
    }
}
